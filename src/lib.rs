//! # GraphHD reproduction suite
//!
//! An end-to-end, from-scratch Rust reproduction of *GraphHD: Efficient
//! graph classification using hyperdimensional computing* (Nunes, Heddes,
//! Givargis, Nicolau, Veidenbaum — DATE 2022), including every substrate
//! the paper's evaluation depends on.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! - [`parallel`] — the persistent work-stealing pool every hot path
//!   (batch encoding, Gram matrices, training, prediction, CV) runs on;
//! - [`prng`] — deterministic randomness (SplitMix64, xoshiro256++);
//! - [`hdvec`] — bit-packed bipolar hypervectors and the HDC operations;
//! - [`graphcore`] — CSR graphs, random generators, PageRank, TUDataset
//!   I/O;
//! - [`datasets`] — benchmark surrogates, cross-validation, metrics and
//!   the shared classifier harness;
//! - [`wlkernels`] — 1-WL and WL-OA graph kernels;
//! - [`kernelsvm`] — SMO-trained C-SVMs on precomputed kernels;
//! - [`tinynn`] — tape autograd and the GIN-ε / GIN-ε-JK networks;
//! - [`graphhd`] — the paper's contribution plus its future-work
//!   extensions, the unified error surface and model snapshots;
//! - [`baselines`] — the four baselines under the shared harness;
//! - [`engine`] — the serving front door: a long-lived, queue-backed
//!   [`Engine`](engine::Engine) answering classify/score requests;
//! - [`telemetry`] — zero-dependency observability: lock-free counters
//!   and gauges, log-linear histograms, span timers and a
//!   Prometheus/JSON registry, threaded through the engine, the pool
//!   and the model crate;
//! - [`netserve`] — the network serving tier: a length-prefixed binary
//!   wire protocol over std TCP, a thread-per-connection server, a
//!   multi-model fleet registry with zero-downtime hot-swap, and a
//!   small blocking client.
//!
//! See `README.md` for a tour of the workspace, build/test/bench
//! instructions and the crate dependency map.
//!
//! # Examples
//!
//! ```
//! use graphhd_suite::graphhd::{GraphHdConfig, GraphHdModel};
//! use graphhd_suite::graphcore::generate;
//!
//! let graphs = vec![generate::complete(8), generate::path(8)];
//! let model = GraphHdModel::fit(GraphHdConfig::default(), &graphs, &[0, 1], 2)?;
//! assert_eq!(model.predict(&generate::complete(10)), 0);
//! # Ok::<(), graphhd_suite::graphhd::Error>(())
//! ```

pub use baselines;
pub use datasets;
pub use engine;
pub use graphcore;
pub use graphhd;
pub use hdvec;
pub use kernelsvm;
pub use netserve;
pub use parallel;
pub use prng;
pub use telemetry;
pub use tinynn;
pub use wlkernels;
