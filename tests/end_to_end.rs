//! Cross-crate integration: all five methods of the paper run under the
//! shared harness on the same surrogate benchmark, and the qualitative
//! claims of the evaluation hold.

use baselines::{GinBaseline, WlSvmClassifier, WlSvmConfig};
use datasets::harness::{evaluate_cv, CvProtocol, GraphClassifier};
use datasets::surrogate;
use graphhd::{GraphHdClassifier, GraphHdConfig};

fn protocol() -> CvProtocol {
    CvProtocol {
        folds: 3,
        repetitions: 1,
        seed: 17,
    }
}

#[test]
fn all_five_methods_beat_chance_on_a_two_class_surrogate() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("MUTAG").expect("known dataset"),
        5,
        90,
    );
    let mut methods: Vec<Box<dyn GraphClassifier>> = vec![
        Box::new(GraphHdClassifier::default()),
        Box::new(WlSvmClassifier::new(WlSvmConfig::fast_subtree())),
        Box::new(WlSvmClassifier::new(WlSvmConfig::fast_assignment())),
        Box::new(GinBaseline::quick(false)),
        Box::new(GinBaseline::quick(true)),
    ];
    for method in methods.iter_mut() {
        let report = evaluate_cv(method.as_mut(), &dataset, &protocol()).expect("splits");
        let accuracy = report.accuracy().mean;
        assert!(
            accuracy > 0.6,
            "{} accuracy {accuracy} not above chance",
            report.method
        );
    }
}

#[test]
fn graphhd_trains_faster_than_the_gnns() {
    // One half of the paper's efficiency headline: HDC training (one
    // encode + bundle pass) is much cheaper than epochs of gradient
    // descent, at any dataset size.
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("PTC_FM").expect("known dataset"),
        6,
        150,
    );
    let run = |method: &mut dyn GraphClassifier| -> f64 {
        evaluate_cv(method, &dataset, &protocol())
            .expect("splits")
            .train_seconds()
            .mean
    };
    let hd_time = run(&mut GraphHdClassifier::default());
    for (name, time) in [
        ("GIN-e", run(&mut GinBaseline::quick(false))),
        ("GIN-e-JK", run(&mut GinBaseline::quick(true))),
    ] {
        assert!(
            hd_time < time,
            "GraphHD ({hd_time:.4}s) should train faster than {name} ({time:.4}s)"
        );
    }
}

#[test]
fn kernel_training_scales_worse_than_graphhd_in_dataset_size() {
    // The other half (Section VI: "with respect to the dataset size the
    // kernel methods have inferior scaling"): kernel training carries an
    // O(N²) Gram matrix + model selection, GraphHD is linear in N. At
    // small N our Rust kernels are actually *faster* than GraphHD —
    // an honest divergence from the paper's Python baselines — but their growth rate must be visibly worse.
    // Measured in release mode, the paper-grid 1-WL pipeline takes 1.6x
    // GraphHD's training time at N = 80 and 4.2x at N = 1280 — a
    // monotonically widening gap. The assertion uses a wide size contrast
    // so the trend is robust to timing noise and build profiles.
    let spec = surrogate::spec_by_name("NCI1").expect("known dataset");
    let small = surrogate::generate_surrogate_sized(spec, 6, 100);
    let large = surrogate::generate_surrogate_sized(spec, 6, 500);
    let run = |method: &mut dyn GraphClassifier, ds: &datasets::GraphDataset| -> f64 {
        evaluate_cv(method, ds, &protocol())
            .expect("splits")
            .train_seconds()
            .mean
    };
    let paper_wl = || WlSvmClassifier::new(WlSvmConfig::paper(wlkernels::KernelKind::Subtree));
    let hd_ratio = run(&mut GraphHdClassifier::default(), &large)
        / run(&mut GraphHdClassifier::default(), &small).max(1e-9);
    let wl_ratio = run(&mut paper_wl(), &large) / run(&mut paper_wl(), &small).max(1e-9);
    assert!(
        wl_ratio > hd_ratio * 1.1,
        "kernel growth {wl_ratio:.1}x should exceed GraphHD growth {hd_ratio:.1}x"
    );
}

#[test]
fn graphhd_pipeline_is_deterministic_end_to_end() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("NCI1").expect("known dataset"),
        9,
        60,
    );
    let run = || {
        let mut clf = GraphHdClassifier::new(
            GraphHdConfig::builder()
                .seed(123)
                .build()
                .expect("valid config"),
        );
        let train: Vec<&graphcore::Graph> = dataset.graphs()[..40].iter().collect();
        let train_labels = &dataset.labels()[..40];
        let test: Vec<&graphcore::Graph> = dataset.graphs()[40..60].iter().collect();
        clf.fit(&train, train_labels, dataset.num_classes())
            .expect("consistent dataset");
        clf.predict(&test)
    };
    assert_eq!(run(), run());
}

#[test]
fn surrogates_are_reproducible_across_processes() {
    // Same (spec, seed) must yield identical datasets: the whole
    // experiment pipeline depends on it.
    let a = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("ENZYMES").expect("known dataset"),
        31,
        30,
    );
    let b = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("ENZYMES").expect("known dataset"),
        31,
        30,
    );
    assert_eq!(a, b);
}
