//! Crash-safety suite for snapshot I/O: a save killed at **any**
//! injection point (`snapshot.write`, `snapshot.rename`) must leave the
//! directory loadable, and [`GraphHdModel::load_latest`] must always
//! recover exactly the last *successful* save. The byte-level half
//! proves the loader rejects every possible truncation with
//! [`SnapshotError::Truncated`] and every extension with
//! [`SnapshotError::TrailingBytes`] — no length is trusted before it is
//! bounds-checked.
//!
//! Fault plans are seeded and deterministic: each kill-loop scenario
//! sweeps seeds {1..5} (or the single seed CI's chaos matrix pins via
//! `GRAPHHD_FAULTS`).

use graphcore::Graph;
use graphhd::{Error, GraphHdConfig, GraphHdModel, SnapshotError};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "graphhd-crash-{tag}-{}-{unique}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

/// Two small models with provably different class vectors, so a load
/// can be attributed to exactly one save.
fn two_models() -> (GraphHdModel, GraphHdModel) {
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(9);
    for i in 0..10 {
        let base = graphcore::generate::erdos_renyi(12, 0.25, &mut rng).expect("valid p");
        labels.push(u32::from(i % 2 == 0));
        graphs.push(if i % 2 == 0 {
            base
        } else {
            graphcore::generate::with_planted_triangles(&base, 3, &mut rng).expect("n >= 3")
        });
    }
    let refs: Vec<&Graph> = graphs.iter().collect();
    let fit = |seed: u64| {
        let config = GraphHdConfig::builder()
            .dim(256)
            .seed(seed)
            .build()
            .expect("valid dimension");
        GraphHdModel::fit(config, &refs, &labels, 2).expect("consistent inputs")
    };
    let (a, b) = (fit(1), fit(2));
    assert_ne!(
        a.class_vectors(),
        b.class_vectors(),
        "different seeds must produce distinguishable models"
    );
    (a, b)
}

fn seeds() -> Vec<u64> {
    match faultpoint::env_seed() {
        Some(seed) => vec![seed],
        None => (1..=5).collect(),
    }
}

fn leftover_temps(dir: &PathBuf) -> Vec<String> {
    std::fs::read_dir(dir)
        .expect("dir readable")
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp-"))
        .collect()
}

#[test]
fn a_save_killed_before_rename_preserves_the_previous_model() {
    let (model_a, model_b) = two_models();
    for point in ["snapshot.write", "snapshot.rename"] {
        let dir = temp_dir("kill-error");
        let v1 = model_a.save_version(&dir, 0).expect("clean save");
        assert_eq!(v1, 1);

        let guard = faultpoint::configure(&format!("seed=1;{point}=error")).expect("valid spec");
        let err = model_b.save_version(&dir, 0).expect_err("fault must fire");
        assert!(
            matches!(err, Error::Io { .. }),
            "injected error at {point}: {err:?}"
        );
        drop(guard);

        // The failed save changed nothing visible and cleaned its temp.
        let (loaded, version) = GraphHdModel::load_latest(&dir).expect("old model intact");
        assert_eq!(version, 1, "kill at {point}");
        assert_eq!(
            loaded.class_vectors(),
            model_a.class_vectors(),
            "kill at {point}"
        );
        assert_eq!(
            leftover_temps(&dir),
            Vec::<String>::new(),
            "kill at {point}"
        );

        // With faults gone the next save lands as v2 and wins.
        assert_eq!(model_b.save_version(&dir, 0).expect("clean save"), 2);
        let (loaded, version) = GraphHdModel::load_latest(&dir).expect("new model visible");
        assert_eq!(version, 2);
        assert_eq!(loaded.class_vectors(), model_b.class_vectors());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn a_save_killed_by_panic_preserves_the_previous_model() {
    let (model_a, model_b) = two_models();
    for point in ["snapshot.write", "snapshot.rename"] {
        let dir = temp_dir("kill-panic");
        model_a.save_version(&dir, 0).expect("clean save");

        let guard = faultpoint::configure(&format!("seed=1;{point}=panic")).expect("valid spec");
        let outcome = catch_unwind(AssertUnwindSafe(|| model_b.save_version(&dir, 0)));
        assert!(outcome.is_err(), "panic must escape the save at {point}");
        drop(guard);

        // A panic skips the error-path cleanup (a real crash would too);
        // recovery must succeed regardless of stray temp files.
        let (loaded, version) = GraphHdModel::load_latest(&dir).expect("old model intact");
        assert_eq!(version, 1, "kill at {point}");
        assert_eq!(
            loaded.class_vectors(),
            model_a.class_vectors(),
            "kill at {point}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn a_kill_loop_always_recovers_the_last_successful_save() {
    let (model_a, model_b) = two_models();
    for seed in seeds() {
        let dir = temp_dir("kill-loop");
        // Seed the directory before arming faults so there is always a
        // recoverable version.
        model_a.save_version(&dir, 3).expect("clean save");
        let mut latest = model_a.class_vectors().to_vec();

        let spec = format!("seed={seed};snapshot.write=40%error;snapshot.rename=30%panic");
        let guard = faultpoint::configure(&spec).expect("valid spec");
        for attempt in 0..12 {
            let model = if attempt % 2 == 0 { &model_b } else { &model_a };
            let outcome = catch_unwind(AssertUnwindSafe(|| model.save_version(&dir, 3)));
            if matches!(outcome, Ok(Ok(_))) {
                latest = model.class_vectors().to_vec();
            }
            // The invariant under fire: whatever just happened, the
            // directory loads, and it loads the last completed save.
            let (loaded, _) = GraphHdModel::load_latest(&dir)
                .expect("directory must stay loadable mid-crash-loop");
            assert_eq!(
                loaded.class_vectors(),
                &latest[..],
                "seed {seed}, attempt {attempt}"
            );
        }
        drop(guard);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Canonical snapshot bytes shared by the byte-surgery tests below.
fn canonical_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (model, _) = two_models();
        let mut bytes = Vec::new();
        model.save_to(&mut bytes).expect("vec write");
        bytes
    })
}

#[test]
fn truncation_at_every_byte_offset_reports_truncated() {
    let bytes = canonical_bytes();
    assert!(bytes.len() > 100, "snapshot large enough to be interesting");
    for cut in 0..bytes.len() {
        let err = GraphHdModel::load_from(&mut &bytes[..cut])
            .expect_err("a strict prefix can never be a whole snapshot");
        assert_eq!(
            err,
            Error::Snapshot(SnapshotError::Truncated),
            "cut at byte {cut} of {}",
            bytes.len()
        );
    }
}

#[test]
fn extension_by_any_suffix_reports_trailing_bytes() {
    let bytes = canonical_bytes();
    for extra in 1..=8usize {
        let mut extended = bytes.to_vec();
        extended.extend(std::iter::repeat_n(0xAB, extra));
        let err = GraphHdModel::load_from(&mut &extended[..])
            .expect_err("trailing bytes must be rejected");
        assert_eq!(
            err,
            Error::Snapshot(SnapshotError::TrailingBytes),
            "{extra} trailing bytes"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Random re-checks of the exhaustive loops above, with arbitrary
    // junk contents rather than a fixed fill: the loader's verdict must
    // depend only on length, never on what the junk decodes as.
    #[test]
    fn random_truncations_and_junk_extensions_never_load(
        offset in any::<u16>(),
        junk in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let bytes = canonical_bytes();
        let cut = offset as usize % bytes.len();
        let err = GraphHdModel::load_from(&mut &bytes[..cut]).expect_err("prefix");
        prop_assert_eq!(err, Error::Snapshot(SnapshotError::Truncated));

        let mut extended = bytes.to_vec();
        extended.extend_from_slice(&junk);
        let err = GraphHdModel::load_from(&mut &extended[..]).expect_err("suffix");
        prop_assert_eq!(err, Error::Snapshot(SnapshotError::TrailingBytes));
    }
}
