//! End-to-end determinism under concurrency: the pooled cross-validation
//! evaluator must reproduce the serial report for GraphHD on a surrogate
//! MUTAG — same accuracies, same fold count, same order.

use datasets::harness::{evaluate_cv, evaluate_cv_parallel, CvProtocol};
use datasets::surrogate;
use graphhd::{GraphHdClassifier, GraphHdConfig};
use parallel::Pool;
use std::sync::Arc;

#[test]
fn parallel_cv_reproduces_the_serial_report_for_graphhd_on_surrogate_mutag() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("MUTAG").expect("known dataset"),
        17,
        48,
    );
    let protocol = CvProtocol {
        folds: 4,
        repetitions: 2,
        seed: 5,
    };
    let config = GraphHdConfig::builder()
        .dim(2048)
        .build()
        .expect("valid dimension");

    let serial = evaluate_cv(&mut GraphHdClassifier::new(config), &dataset, &protocol)
        .expect("dataset splits under the protocol");
    assert_eq!(serial.folds.len(), protocol.folds * protocol.repetitions);

    for threads in [1usize, 3, 8] {
        // Pin fold-level AND batch-level (encoder) parallelism to the same
        // pool, exercising nested regions from worker threads.
        let pool = Arc::new(Pool::with_threads(threads));
        let classifier = GraphHdClassifier::new(config).with_pool(Arc::clone(&pool));
        let parallel = evaluate_cv_parallel(&classifier, &dataset, &protocol, &pool)
            .expect("dataset splits under the protocol");

        assert_eq!(parallel.method, serial.method);
        assert_eq!(parallel.dataset, serial.dataset);
        assert_eq!(
            parallel.folds.len(),
            serial.folds.len(),
            "threads {threads}"
        );
        for (index, (p, s)) in parallel.folds.iter().zip(&serial.folds).enumerate() {
            assert_eq!(
                p.accuracy, s.accuracy,
                "fold {index} accuracy diverged at {threads} threads"
            );
            assert_eq!(p.test_size, s.test_size, "fold {index} size");
        }
        assert_eq!(parallel.accuracy().mean, serial.accuracy().mean);
    }
}

#[test]
fn retraining_classifier_is_also_reproduced_in_parallel() {
    // Retraining makes fit order-sensitive *within* a fold; the
    // speculative parallel retraining must keep that sequence exact.
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("MUTAG").expect("known dataset"),
        23,
        36,
    );
    let protocol = CvProtocol {
        folds: 3,
        repetitions: 1,
        seed: 2,
    };
    let config = GraphHdConfig::builder()
        .dim(1024)
        .build()
        .expect("valid dimension");
    let serial = evaluate_cv(
        &mut GraphHdClassifier::new(config).with_retraining(4),
        &dataset,
        &protocol,
    )
    .expect("splittable");
    let pool = Arc::new(Pool::with_threads(4));
    let classifier = GraphHdClassifier::new(config)
        .with_retraining(4)
        .with_pool(Arc::clone(&pool));
    let parallel =
        evaluate_cv_parallel(&classifier, &dataset, &protocol, &pool).expect("splittable");
    let serial_acc: Vec<f64> = serial.folds.iter().map(|f| f.accuracy).collect();
    let parallel_acc: Vec<f64> = parallel.folds.iter().map(|f| f.accuracy).collect();
    assert_eq!(parallel_acc, serial_acc);
}
