//! Integration: the paper's future-work extensions (Section VII) work
//! end-to-end on benchmark surrogates.

use datasets::harness::{evaluate_cv, CvProtocol};
use datasets::{surrogate, StratifiedKFold};
use graphcore::Graph;
use graphhd::labeled::LabeledGraphEncoder;
use graphhd::prototypes::{MultiPrototypeModel, PrototypeConfig};
use graphhd::{EncoderKind, GraphEncoder, GraphHdClassifier, GraphHdConfig, GraphHdModel};
use hdvec::BitSliceAccumulator;

fn split(dataset: &datasets::GraphDataset) -> (Vec<usize>, Vec<usize>) {
    let folds = StratifiedKFold::new(4, 3)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    (folds[0].train.clone(), folds[0].test.clone())
}

#[test]
fn retraining_never_hurts_training_accuracy() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("PROTEINS").expect("known dataset"),
        21,
        80,
    );
    let (train, _) = split(&dataset);
    let graphs: Vec<&Graph> = train.iter().map(|&i| dataset.graph(i)).collect();
    let labels: Vec<u32> = train.iter().map(|&i| dataset.label(i)).collect();

    let config = GraphHdConfig::builder()
        .dim(4096)
        .build()
        .expect("valid dimension");
    let encoder = GraphEncoder::new(config).expect("valid config");
    let encodings = encoder.encode_all(&graphs);
    let mut model = GraphHdModel::fit_encoded(encoder, &encodings, &labels, 2);

    let errors_before: usize = encodings
        .iter()
        .zip(&labels)
        .filter(|(hv, &l)| model.predict_encoded(hv) != l)
        .count();
    let report = model.retrain(&encodings, &labels, 15);
    let errors_after: usize = encodings
        .iter()
        .zip(&labels)
        .filter(|(hv, &l)| model.predict_encoded(hv) != l)
        .count();
    assert!(
        errors_after <= errors_before,
        "retraining increased training errors: {errors_before} -> {errors_after}"
    );
    assert!(report.epoch_errors[0] >= *report.epoch_errors.last().expect("non-empty"));
}

#[test]
fn multi_prototype_model_runs_on_surrogates() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("ENZYMES").expect("known dataset"),
        22,
        72,
    );
    let (train, test) = split(&dataset);
    let graphs: Vec<&Graph> = train.iter().map(|&i| dataset.graph(i)).collect();
    let labels: Vec<u32> = train.iter().map(|&i| dataset.label(i)).collect();
    let config = PrototypeConfig {
        base: GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension"),
        ..PrototypeConfig::default()
    };
    let model = MultiPrototypeModel::fit(config, &graphs, &labels, dataset.num_classes())
        .expect("valid dataset");
    assert_eq!(model.prototype_counts().len(), 6);
    let test_graphs: Vec<&Graph> = test.iter().map(|&i| dataset.graph(i)).collect();
    let predictions = model.predict_all(&test_graphs);
    assert_eq!(predictions.len(), test.len());
    assert!(predictions.iter().all(|&p| p < 6));
}

/// The pluggable-encoder acceptance test: the extracted centrality
/// strategy must reproduce the pre-refactor encoder **bit-for-bit** on
/// surrogate-MUTAG. The reference below is the paper recipe restated
/// from public primitives only (ranks → basis vectors → edge binds →
/// bit-sliced bundling), exactly as `GraphEncoder` implemented it before
/// the strategy layer existed.
#[test]
fn centrality_strategy_is_bit_identical_to_the_paper_recipe_on_mutag() {
    let dataset = surrogate::by_name("MUTAG", 29).expect("known dataset");
    let config = GraphHdConfig::builder()
        .dim(2048)
        .seed(0xFEED)
        .build()
        .expect("valid dimension");
    assert_eq!(config.encoder, EncoderKind::Centrality, "paper default");
    let encoder = GraphEncoder::new(config).expect("valid config");

    for graph in dataset.graphs() {
        let ranks = encoder.vertex_ranks(graph);
        let mut reference = BitSliceAccumulator::new(2048).expect("valid dimension");
        for (u, v) in graph.edges() {
            let hu = encoder.memory().hypervector(u64::from(ranks[u as usize]));
            let hv = encoder.memory().hypervector(u64::from(ranks[v as usize]));
            reference.add(&hu.bind(&hv));
        }
        assert_eq!(
            encoder.encode_to_accumulator(graph),
            reference.to_accumulator()
        );
        assert_eq!(
            encoder.encode(graph),
            reference.to_accumulator().to_hypervector(config.tie_break)
        );
    }
}

/// Three-way encoder ablation under the paper's CV protocol on
/// surrogate-MUTAG. Measured means (dim 4096, seeds 9/123): centrality
/// ≈ 0.64–0.69, edge-weighted ≈ 0.60–0.63, vertex-similarity ≈
/// 0.54–0.58; the floors below leave noise margin while still requiring
/// every strategy to beat chance and the paper recipe to stay on top of
/// this roster.
#[test]
fn encoder_strategy_ablation_on_surrogate_mutag() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("MUTAG").expect("known dataset"),
        17,
        90,
    );
    let protocol = CvProtocol {
        folds: 3,
        repetitions: 1,
        seed: 5,
    };
    let base = GraphHdConfig::builder().dim(4096).seed(9);
    let mut means = Vec::new();
    for (kind, floor) in [
        (EncoderKind::Centrality, 0.60),
        (EncoderKind::VertexSimilarity { levels: 16 }, 0.50),
        (EncoderKind::EdgeWeighted { weight_cap: 4 }, 0.55),
    ] {
        let config = base.with_encoder(kind).build().expect("valid config");
        let mut classifier = GraphHdClassifier::new(config);
        let report = evaluate_cv(&mut classifier, &dataset, &protocol).expect("splittable");
        let accuracy = report.accuracy().mean;
        assert!(
            accuracy >= floor,
            "{} accuracy {accuracy} below floor {floor}",
            kind.name()
        );
        means.push(accuracy);
    }
    assert!(
        means[0] >= means[1] && means[0] >= means[2],
        "the paper recipe should lead this roster: {means:?}"
    );
}

#[test]
fn label_aware_encoding_separates_label_patterns_topology_cannot() {
    // Two "datasets" share identical topology; only vertex labels differ.
    // The structural encoder is blind to this; the labeled one is not.
    let structural = GraphEncoder::new(
        GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension"),
    )
    .expect("valid");
    let labeled = LabeledGraphEncoder::new(
        GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension"),
    )
    .expect("valid");
    let graph = graphcore::generate::cycle(12);
    let pattern_a: Vec<u32> = (0..12).map(|v| v % 2).collect(); // alternating
    let pattern_b: Vec<u32> = (0..12).map(|v| u32::from(v >= 6)).collect(); // halves

    let s = structural.encode(&graph);
    assert_eq!(s, structural.encode(&graph), "structure alone is fixed");

    let a = labeled.encode(&graph, &pattern_a).expect("matching labels");
    let b = labeled.encode(&graph, &pattern_b).expect("matching labels");
    assert!(
        a.cosine(&b) < 0.8,
        "label patterns should separate: cosine {}",
        a.cosine(&b)
    );
    // And each pattern is self-consistent.
    assert_eq!(a, labeled.encode(&graph, &pattern_a).expect("matching"));
}
