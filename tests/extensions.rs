//! Integration: the paper's future-work extensions (Section VII) work
//! end-to-end on benchmark surrogates.

use datasets::{surrogate, StratifiedKFold};
use graphcore::Graph;
use graphhd::labeled::LabeledGraphEncoder;
use graphhd::prototypes::{MultiPrototypeModel, PrototypeConfig};
use graphhd::{GraphEncoder, GraphHdConfig, GraphHdModel};

fn split(dataset: &datasets::GraphDataset) -> (Vec<usize>, Vec<usize>) {
    let folds = StratifiedKFold::new(4, 3)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    (folds[0].train.clone(), folds[0].test.clone())
}

#[test]
fn retraining_never_hurts_training_accuracy() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("PROTEINS").expect("known dataset"),
        21,
        80,
    );
    let (train, _) = split(&dataset);
    let graphs: Vec<&Graph> = train.iter().map(|&i| dataset.graph(i)).collect();
    let labels: Vec<u32> = train.iter().map(|&i| dataset.label(i)).collect();

    let config = GraphHdConfig::builder()
        .dim(4096)
        .build()
        .expect("valid dimension");
    let encoder = GraphEncoder::new(config).expect("valid config");
    let encodings = encoder.encode_all(&graphs);
    let mut model = GraphHdModel::fit_encoded(encoder, &encodings, &labels, 2);

    let errors_before: usize = encodings
        .iter()
        .zip(&labels)
        .filter(|(hv, &l)| model.predict_encoded(hv) != l)
        .count();
    let report = model.retrain(&encodings, &labels, 15);
    let errors_after: usize = encodings
        .iter()
        .zip(&labels)
        .filter(|(hv, &l)| model.predict_encoded(hv) != l)
        .count();
    assert!(
        errors_after <= errors_before,
        "retraining increased training errors: {errors_before} -> {errors_after}"
    );
    assert!(report.epoch_errors[0] >= *report.epoch_errors.last().expect("non-empty"));
}

#[test]
fn multi_prototype_model_runs_on_surrogates() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("ENZYMES").expect("known dataset"),
        22,
        72,
    );
    let (train, test) = split(&dataset);
    let graphs: Vec<&Graph> = train.iter().map(|&i| dataset.graph(i)).collect();
    let labels: Vec<u32> = train.iter().map(|&i| dataset.label(i)).collect();
    let config = PrototypeConfig {
        base: GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension"),
        ..PrototypeConfig::default()
    };
    let model = MultiPrototypeModel::fit(config, &graphs, &labels, dataset.num_classes())
        .expect("valid dataset");
    assert_eq!(model.prototype_counts().len(), 6);
    let test_graphs: Vec<&Graph> = test.iter().map(|&i| dataset.graph(i)).collect();
    let predictions = model.predict_all(&test_graphs);
    assert_eq!(predictions.len(), test.len());
    assert!(predictions.iter().all(|&p| p < 6));
}

#[test]
fn label_aware_encoding_separates_label_patterns_topology_cannot() {
    // Two "datasets" share identical topology; only vertex labels differ.
    // The structural encoder is blind to this; the labeled one is not.
    let structural = GraphEncoder::new(
        GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension"),
    )
    .expect("valid");
    let labeled = LabeledGraphEncoder::new(
        GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension"),
    )
    .expect("valid");
    let graph = graphcore::generate::cycle(12);
    let pattern_a: Vec<u32> = (0..12).map(|v| v % 2).collect(); // alternating
    let pattern_b: Vec<u32> = (0..12).map(|v| u32::from(v >= 6)).collect(); // halves

    let s = structural.encode(&graph);
    assert_eq!(s, structural.encode(&graph), "structure alone is fixed");

    let a = labeled.encode(&graph, &pattern_a).expect("matching labels");
    let b = labeled.encode(&graph, &pattern_b).expect("matching labels");
    assert!(
        a.cosine(&b) < 0.8,
        "label patterns should separate: cosine {}",
        a.cosine(&b)
    );
    // And each pattern is self-consistent.
    assert_eq!(a, labeled.encode(&graph, &pattern_a).expect("matching"));
}
