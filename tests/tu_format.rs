//! Integration: surrogate datasets round-trip through the TUDataset text
//! format and feed back into the full GraphHD pipeline — the path real
//! downloaded benchmark files would take.

use datasets::{surrogate, GraphDataset};
use graphhd::{GraphHdConfig, GraphHdModel};

#[test]
fn surrogate_roundtrips_through_tudataset_files_and_trains() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("MUTAG").expect("known dataset"),
        13,
        40,
    );

    // Write in TUDataset layout.
    let dir = std::env::temp_dir().join("graphhd_suite_tu_test");
    let labels: Vec<i64> = dataset.labels().iter().map(|&l| i64::from(l)).collect();
    graphcore::io::save_tudataset(&dir, "SURROGATE", dataset.graphs(), &labels)
        .expect("writable temp dir");

    // Load back and compare.
    let loaded = graphcore::io::load_tudataset(&dir, "SURROGATE").expect("files just written");
    let roundtripped = GraphDataset::from_tu("SURROGATE", loaded).expect("consistent files");
    assert_eq!(roundtripped.graphs(), dataset.graphs());
    assert_eq!(roundtripped.labels(), dataset.labels());

    // The loaded dataset drives the pipeline exactly like the original.
    let model = GraphHdModel::fit(
        GraphHdConfig::builder()
            .dim(2048)
            .build()
            .expect("valid dimension"),
        roundtripped.graphs(),
        roundtripped.labels(),
        roundtripped.num_classes(),
    )
    .expect("valid dataset");
    assert_eq!(model.num_classes(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_world_format_quirks_are_tolerated() {
    // Real TUDataset files sometimes carry blank trailing lines and
    // spaces after commas; the parser must shrug them off.
    let adjacency = "1, 2\n2, 1\n\n3, 4\n4, 3\n\n";
    let indicator = "1\n1\n2\n2\n\n";
    let labels = "1\n2\n\n";
    let data =
        graphcore::io::parse_tudataset(adjacency, indicator, labels).expect("tolerant parsing");
    assert_eq!(data.graphs.len(), 2);
    assert_eq!(data.labels, vec![0, 1]);
}
