//! The deployable-artifact contract, end to end: a model trained in one
//! "process", snapshotted to a real file, and loaded back (directly or
//! into a serving [`Engine`]) predicts **bit-identically** on the full
//! surrogate-MUTAG test split.
//!
//! Backend coverage: CI runs this suite under the default runtime
//! dispatch *and* with `GRAPHHD_FORCE_SCALAR=1`, so the round-trip
//! equality below is asserted on both the AVX2 and the scalar scoring
//! paths (snapshots are backend-independent by construction — they store
//! packed words, not scores).

use datasets::{surrogate, StratifiedKFold};
use engine::Engine;
use graphcore::Graph;
use graphhd::{EncoderKind, GraphHdConfig, GraphHdModel};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique throwaway path per call: tests run concurrently in one
/// process, and dims differ per proptest case, so names must not
/// collide.
fn temp_snapshot_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "graphhd-roundtrip-{tag}-{}-{unique}.ghd",
        std::process::id()
    ))
}

fn save_load_through_file(model: &GraphHdModel, tag: &str) -> GraphHdModel {
    let path = temp_snapshot_path(tag);
    model.save(&path).expect("temp dir is writable");
    let restored = GraphHdModel::load(&path).expect("just-written snapshot decodes");
    std::fs::remove_file(&path).expect("cleanup");
    restored
}

/// The acceptance scenario: full surrogate-MUTAG, a real train/test
/// split, a real file between "processes".
#[test]
fn mutag_model_round_trips_bit_identically_through_disk() {
    let dataset = surrogate::by_name("MUTAG", 77).expect("known dataset");
    let folds = StratifiedKFold::new(5, 3)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    let fold = &folds[0];
    let train_graphs: Vec<&Graph> = fold.train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = fold.train.iter().map(|&i| dataset.label(i)).collect();
    let test_graphs: Vec<&Graph> = fold.test.iter().map(|&i| dataset.graph(i)).collect();
    assert!(!test_graphs.is_empty());

    // Paper-default configuration (dim 10,000), non-default seed.
    let config = GraphHdConfig::builder()
        .seed(0xC0FFEE)
        .build()
        .expect("valid dimension");
    let model = GraphHdModel::fit(config, &train_graphs, &train_labels, dataset.num_classes())
        .expect("consistent dataset");
    let expected = model.predict_all(&test_graphs);

    // Process 2a: plain model load.
    let restored = save_load_through_file(&model, "mutag");
    assert_eq!(restored.encoder().config(), model.encoder().config());
    assert_eq!(restored.class_vectors(), model.class_vectors());
    assert_eq!(restored.predict_all(&test_graphs), expected);

    // Process 2b: serving engine load, full test split through the
    // request queue.
    let path = temp_snapshot_path("mutag-engine");
    model.save(&path).expect("temp dir is writable");
    let served = Engine::from_snapshot(&path).expect("just-written snapshot decodes");
    std::fs::remove_file(&path).expect("cleanup");
    assert_eq!(
        served.classify_batch(&test_graphs).expect("engine alive"),
        expected
    );
    for graph in test_graphs.iter().take(5) {
        assert_eq!(
            served.scores(graph).expect("engine alive"),
            model.scores(graph),
            "scores must be bit-identical, not just argmax-equal"
        );
    }
    served.shutdown();
}

/// A retrained (perceptron-refined) model snapshots its *current* class
/// vectors — the artifact reflects the refinement.
#[test]
fn retrained_model_round_trips_current_state() {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("MUTAG").expect("known"),
        13,
        60,
    );
    let graphs: Vec<&Graph> = dataset.graphs().iter().collect();
    let config = GraphHdConfig::builder()
        .dim(2048)
        .build()
        .expect("valid dimension");
    let encoder = graphhd::GraphEncoder::new(config).expect("valid config");
    let encodings = encoder.encode_all(&graphs);
    let mut model =
        GraphHdModel::fit_encoded(encoder, &encodings, dataset.labels(), dataset.num_classes());
    let _ = model.retrain(&encodings, dataset.labels(), 5);

    let restored = save_load_through_file(&model, "retrained");
    assert_eq!(restored.class_vectors(), model.class_vectors());
    assert_eq!(restored.predict_all(&graphs), model.predict_all(&graphs));
}

/// Dimension grid for the round-trip property: one word minus a bit, an
/// exact word, a word plus a bit, and the paper dimension.
const DIMS: [usize; 4] = [63, 64, 65, 10_000];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (dim, seed, tie-seed, class count, encoder strategy) → fit
    /// on synthetic families → save → load through a real temp file →
    /// identical config (including encoder identity), class vectors and
    /// predictions.
    #[test]
    fn snapshot_round_trip_is_bit_identical(
        dim_idx in 0usize..DIMS.len(),
        model_seed in any::<u64>(),
        tie_seed in any::<u64>(),
        classes in 2usize..5,
        kind_idx in 0usize..3,
    ) {
        let dim = DIMS[dim_idx];
        let kind = [
            EncoderKind::Centrality,
            EncoderKind::VertexSimilarity { levels: 16 },
            EncoderKind::EdgeWeighted { weight_cap: 4 },
        ][kind_idx];
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..(6 + 3 * classes) {
            // Distinct structural families per class.
            let graph = match n % classes {
                0 => graphcore::generate::complete(n),
                1 => graphcore::generate::path(n),
                2 => graphcore::generate::star(n),
                _ => graphcore::generate::cycle(n),
            };
            graphs.push(graph);
            labels.push((n % classes) as u32);
        }
        let config = GraphHdConfig::builder()
            .dim(dim)
            .seed(model_seed)
            .tie_break(hdvec::TieBreak::Seeded(tie_seed))
            .with_encoder(kind)
            .build()
            .expect("valid dimension");
        let model = GraphHdModel::fit(config, &graphs, &labels, classes)
            .expect("consistent inputs");

        let restored = save_load_through_file(&model, "prop");
        prop_assert_eq!(restored.encoder().config(), model.encoder().config());
        prop_assert_eq!(restored.encoder().config().encoder, kind);
        prop_assert_eq!(restored.class_vectors(), model.class_vectors());
        let probes: Vec<Graph> = (4..14).map(graphcore::generate::cycle).collect();
        prop_assert_eq!(
            restored.predict_batch(&probes),
            model.predict_batch(&probes),
            "dim {}", dim
        );
    }
}
