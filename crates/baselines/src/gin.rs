//! GIN baselines (GIN-ε, GIN-ε-JK) under the shared harness.

use graphcore::Graph;
use graphhd::{Error, GraphClassifier};
use tinynn::gin::{GinClassifier, GinConfig};

/// The paper's GNN baselines wrapped as a [`GraphClassifier`].
///
/// See [`tinynn::gin`] for the architecture; this wrapper only adapts the
/// dataset-and-indices calling convention of the harness.
pub struct GinBaseline {
    inner: GinClassifier,
}

impl core::fmt::Debug for GinBaseline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GinBaseline")
            .field("inner", &self.inner)
            .finish()
    }
}

impl GinBaseline {
    /// Creates a baseline with an explicit configuration.
    #[must_use]
    pub fn new(config: GinConfig) -> Self {
        Self {
            inner: GinClassifier::new(config),
        }
    }

    /// The paper's configuration for GIN-ε (`jumping = false`) or
    /// GIN-ε-JK (`jumping = true`).
    #[must_use]
    pub fn paper(jumping: bool) -> Self {
        let config = if jumping {
            GinConfig::jumping()
        } else {
            GinConfig::default()
        };
        Self::new(config)
    }

    /// A reduced configuration for quick runs and tests: fewer epochs and
    /// small batches so tiny training folds still get enough Adam steps.
    #[must_use]
    pub fn quick(jumping: bool) -> Self {
        let config = GinConfig {
            epochs: 30,
            batch_size: 16,
            jumping_knowledge: jumping,
            ..GinConfig::default()
        };
        Self::new(config)
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &GinConfig {
        self.inner.config()
    }
}

impl GraphClassifier for GinBaseline {
    fn name(&self) -> &str {
        self.inner.method_name()
    }

    fn fit(&mut self, graphs: &[&Graph], labels: &[u32], num_classes: usize) -> Result<(), Error> {
        graphhd::validate_fit_inputs(graphs.len(), labels, num_classes)?;
        let _ = self.inner.fit(graphs, labels, num_classes);
        Ok(())
    }

    fn predict(&self, graphs: &[&Graph]) -> Vec<u32> {
        self.inner.predict(graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::harness::{evaluate_cv, CvProtocol};
    use datasets::surrogate;

    #[test]
    fn gin_beats_chance_on_surrogate() {
        let spec = surrogate::spec_by_name("MUTAG").expect("known dataset");
        let dataset = surrogate::generate_surrogate_sized(spec, 5, 90);
        let mut clf = GinBaseline::quick(false);
        let protocol = CvProtocol {
            folds: 3,
            repetitions: 1,
            seed: 3,
        };
        let report = evaluate_cv(&mut clf, &dataset, &protocol).expect("splittable");
        let accuracy = report.accuracy().mean;
        assert!(accuracy > 0.6, "GIN accuracy {accuracy}");
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(GinBaseline::paper(false).name(), "GIN-e");
        assert_eq!(GinBaseline::paper(true).name(), "GIN-e-JK");
    }

    #[test]
    fn paper_preset_uses_paper_hyperparameters() {
        let clf = GinBaseline::paper(true);
        assert_eq!(clf.config().hidden, 32);
        assert!(clf.config().jumping_knowledge);
    }
}
