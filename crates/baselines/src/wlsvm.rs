//! WL-kernel + SVM pipelines (the paper's 1-WL and WL-OA baselines).

use datasets::StratifiedKFold;
use graphcore::Graph;
use graphhd::{Error, GraphClassifier};
use kernelsvm::{MulticlassSvm, SvmConfig};
use wlkernels::{
    compute_gram, wl_feature_series, GramMatrix, KernelKind, SparseCounts, WlRefinery,
};

/// Configuration of a WL-kernel SVM baseline.
///
/// The defaults reproduce the paper's model selection: C from
/// {10⁻³, …, 10³} and the WL iteration count from {0, …, 5}, chosen by
/// inner cross-validation on the training fold.
#[derive(Debug, Clone, PartialEq)]
pub struct WlSvmConfig {
    /// Which WL kernel to use.
    pub kernel: KernelKind,
    /// Candidate WL iteration counts (paper: 0..=5).
    pub iteration_grid: Vec<usize>,
    /// Candidate soft-margin penalties (paper: 1e-3..=1e3, decades).
    pub c_grid: Vec<f64>,
    /// Folds of the inner model-selection CV.
    pub inner_folds: usize,
    /// Seed for inner splits and SMO tie-breaking.
    pub seed: u64,
}

impl WlSvmConfig {
    /// The paper's full protocol for the given kernel.
    #[must_use]
    pub fn paper(kernel: KernelKind) -> Self {
        Self {
            kernel,
            iteration_grid: (0..=5).collect(),
            c_grid: vec![1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3],
            inner_folds: 3,
            seed: 0x51_3D,
        }
    }

    /// A reduced grid for quick runs and tests: h ∈ {1, 3}, C ∈ {0.1, 10}.
    #[must_use]
    pub fn fast(kernel: KernelKind) -> Self {
        Self {
            kernel,
            iteration_grid: vec![1, 3],
            c_grid: vec![0.1, 10.0],
            inner_folds: 2,
            seed: 0x51_3D,
        }
    }

    /// Shorthand: fast 1-WL subtree configuration.
    #[must_use]
    pub fn fast_subtree() -> Self {
        Self::fast(KernelKind::Subtree)
    }

    /// Shorthand: fast WL-OA configuration.
    #[must_use]
    pub fn fast_assignment() -> Self {
        Self::fast(KernelKind::OptimalAssignment)
    }
}

/// A WL-kernel SVM under the shared harness.
///
/// Fully inductive: `fit` learns the WL dictionary, the feature maps, the
/// normalization and the SVM from the training fold only; `predict`
/// refines each test graph against the fitted dictionary and evaluates
/// the kernel against the support vectors — so inference timings include
/// the real per-graph cost, as in the paper's Fig. 3 (right).
#[derive(Debug, Clone)]
pub struct WlSvmClassifier {
    config: WlSvmConfig,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    refinery: WlRefinery,
    train_maps: Vec<SparseCounts>,
    train_diag: Vec<f64>,
    svm: MulticlassSvm,
    kernel: KernelKind,
    chosen_iterations: usize,
    chosen_c: f64,
}

impl WlSvmClassifier {
    /// Creates a classifier with the given configuration.
    #[must_use]
    pub fn new(config: WlSvmConfig) -> Self {
        Self {
            config,
            state: None,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &WlSvmConfig {
        &self.config
    }

    /// The `(iterations, C)` pair chosen by the last `fit`, if any.
    #[must_use]
    pub fn chosen_hyperparameters(&self) -> Option<(usize, f64)> {
        self.state
            .as_ref()
            .map(|s| (s.chosen_iterations, s.chosen_c))
    }

    /// Accuracy of an SVM trained on the `fit_idx` rows of `gram` and
    /// evaluated on `eval_idx` (indices into `gram`'s local space).
    fn split_accuracy(
        gram: &GramMatrix,
        labels: &[u32],
        num_classes: usize,
        fit_idx: &[usize],
        eval_idx: &[usize],
        c: f64,
        seed: u64,
    ) -> f64 {
        let fit_labels: Vec<u32> = fit_idx.iter().map(|&i| labels[i]).collect();
        let kernel = |a: usize, b: usize| gram.get(fit_idx[a], fit_idx[b]);
        let svm_config = SvmConfig {
            c,
            seed,
            ..SvmConfig::default()
        };
        let Ok(svm) = MulticlassSvm::train(&fit_labels, num_classes, kernel, &svm_config) else {
            return 0.0;
        };
        let mut hits = 0usize;
        for &e in eval_idx {
            let predicted = svm.predict(|t| gram.get(e, fit_idx[t]));
            if predicted == labels[e] {
                hits += 1;
            }
        }
        hits as f64 / eval_idx.len().max(1) as f64
    }
}

impl GraphClassifier for WlSvmClassifier {
    fn name(&self) -> &str {
        match self.config.kernel {
            KernelKind::Subtree => "1-WL",
            KernelKind::OptimalAssignment => "WL-OA",
        }
    }

    fn fit(
        &mut self,
        train_graphs: &[&Graph],
        train_labels: &[u32],
        num_classes: usize,
    ) -> Result<(), Error> {
        graphhd::validate_fit_inputs(train_graphs.len(), train_labels, num_classes)?;
        let max_h = self
            .config
            .iteration_grid
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        // One refinement pass yields the feature maps of every candidate h.
        let series = wl_feature_series(train_graphs, max_h);

        // Inner model selection over (h, C) on the training fold only.
        let inner = StratifiedKFold::new(self.config.inner_folds, self.config.seed)
            .ok()
            .and_then(|splitter| splitter.split(train_labels).ok());

        let mut best: Option<(f64, usize, f64)> = None;
        for &h in &self.config.iteration_grid {
            let gram = compute_gram(&series[h], self.config.kernel).normalized();
            for &c in &self.config.c_grid {
                let accuracy = match &inner {
                    Some(folds) => {
                        let mut total = 0.0;
                        for fold in folds {
                            total += Self::split_accuracy(
                                &gram,
                                train_labels,
                                num_classes,
                                &fold.train,
                                &fold.test,
                                c,
                                self.config.seed,
                            );
                        }
                        total / folds.len() as f64
                    }
                    // Too few samples for inner CV: score on the training
                    // data itself.
                    None => {
                        let all: Vec<usize> = (0..train_graphs.len()).collect();
                        Self::split_accuracy(
                            &gram,
                            train_labels,
                            num_classes,
                            &all,
                            &all,
                            c,
                            self.config.seed,
                        )
                    }
                };
                let better = match &best {
                    None => true,
                    Some((best_acc, ..)) => accuracy > *best_acc,
                };
                if better {
                    best = Some((accuracy, h, c));
                }
            }
        }
        let (_, h, c) = best.expect("grids are non-empty");

        // Refit the dictionary at the chosen h (ids differ from the series
        // run, but kernel values are invariant under dictionary
        // relabeling) and train the final machine on the full fold.
        let (refinery, train_maps) = WlRefinery::fit(train_graphs, h);
        let kind = self.config.kernel;
        let train_diag: Vec<f64> = train_maps.iter().map(|m| kind.eval(m, m)).collect();
        let normalized = |a: usize, b: usize| -> f64 {
            let denom = (train_diag[a] * train_diag[b]).sqrt();
            if denom > 0.0 {
                kind.eval(&train_maps[a], &train_maps[b]) / denom
            } else {
                0.0
            }
        };
        let svm_config = SvmConfig {
            c,
            seed: self.config.seed,
            ..SvmConfig::default()
        };
        let svm = MulticlassSvm::train(train_labels, num_classes, normalized, &svm_config)
            .expect("training fold is non-empty and validated above");
        self.state = Some(Fitted {
            refinery,
            train_maps,
            train_diag,
            svm,
            kernel: kind,
            chosen_iterations: h,
            chosen_c: c,
        });
        Ok(())
    }

    fn predict(&self, graphs: &[&Graph]) -> Vec<u32> {
        let state = self
            .state
            .as_ref()
            .expect("fit must be called before predict");
        graphs
            .iter()
            .map(|&graph| {
                // The real inference path: refine the test graph against
                // the fitted dictionary, then kernel it against support
                // vectors with cosine normalization.
                let map = state.refinery.transform(graph);
                let self_k = state.kernel.eval(&map, &map);
                state.svm.predict(|t| {
                    let denom = (self_k * state.train_diag[t]).sqrt();
                    if denom > 0.0 {
                        state.kernel.eval(&map, &state.train_maps[t]) / denom
                    } else {
                        0.0
                    }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::harness::{evaluate_cv, CvProtocol};
    use datasets::surrogate;

    fn protocol() -> CvProtocol {
        CvProtocol {
            folds: 3,
            repetitions: 1,
            seed: 2,
        }
    }

    #[test]
    fn subtree_beats_chance_on_surrogate() {
        let spec = surrogate::spec_by_name("MUTAG").expect("known dataset");
        let dataset = surrogate::generate_surrogate_sized(spec, 5, 90);
        let mut clf = WlSvmClassifier::new(WlSvmConfig::fast_subtree());
        let report = evaluate_cv(&mut clf, &dataset, &protocol()).expect("splittable");
        let accuracy = report.accuracy().mean;
        assert!(accuracy > 0.6, "1-WL accuracy {accuracy}");
        assert!(clf.chosen_hyperparameters().is_some());
    }

    #[test]
    fn assignment_kernel_beats_chance_on_surrogate() {
        let spec = surrogate::spec_by_name("MUTAG").expect("known dataset");
        let dataset = surrogate::generate_surrogate_sized(spec, 5, 90);
        let mut clf = WlSvmClassifier::new(WlSvmConfig::fast_assignment());
        let report = evaluate_cv(&mut clf, &dataset, &protocol()).expect("splittable");
        let accuracy = report.accuracy().mean;
        assert!(accuracy > 0.6, "WL-OA accuracy {accuracy}");
        assert_eq!(report.method, "WL-OA");
    }

    #[test]
    fn prediction_is_inductive() {
        // Predicting graphs never seen at fit time (not even
        // transductively) works: build a second dataset with the same
        // generator family and classify its graphs by index into it.
        let spec = surrogate::spec_by_name("PTC_FM").expect("known dataset");
        let train_ds = surrogate::generate_surrogate_sized(spec, 5, 60);
        let fresh_ds = surrogate::generate_surrogate_sized(spec, 99, 40);
        let mut clf = WlSvmClassifier::new(WlSvmConfig::fast_subtree());
        let all_train: Vec<&Graph> = train_ds.graphs().iter().collect();
        clf.fit(&all_train, train_ds.labels(), train_ds.num_classes())
            .expect("consistent dataset");
        let fresh_graphs: Vec<&Graph> = fresh_ds.graphs().iter().collect();
        let predictions = clf.predict(&fresh_graphs);
        let hits = predictions
            .iter()
            .zip(fresh_ds.labels())
            .filter(|(p, l)| p == l)
            .count();
        let accuracy = hits as f64 / fresh_ds.len() as f64;
        assert!(accuracy > 0.55, "inductive accuracy {accuracy}");
    }

    #[test]
    fn paper_config_matches_section_v() {
        let c = WlSvmConfig::paper(KernelKind::Subtree);
        assert_eq!(c.iteration_grid, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.c_grid.len(), 7);
        assert_eq!(c.c_grid[0], 1e-3);
        assert_eq!(c.c_grid[6], 1e3);
    }

    #[test]
    #[should_panic(expected = "fit must be called")]
    fn predict_before_fit_panics() {
        let clf = WlSvmClassifier::new(WlSvmConfig::fast_subtree());
        let _ = clf.predict(&[]);
    }

    #[test]
    fn fit_rejects_empty_training_fold() {
        let mut clf = WlSvmClassifier::new(WlSvmConfig::fast_subtree());
        assert_eq!(
            clf.fit(&[], &[], 2).unwrap_err(),
            graphhd::Error::EmptyTrainingSet
        );
    }
}
