//! The paper's four baselines under the shared evaluation harness.
//!
//! Section V-A2 of the paper compares GraphHD against:
//!
//! - two graph kernels — **1-WL** (Weisfeiler–Lehman subtree) and
//!   **WL-OA** (optimal assignment) — trained with C-SVMs whose penalty is
//!   selected from {10⁻³, …, 10³} and whose WL iteration count is selected
//!   from {0, …, 5} "as part of the training process";
//! - two graph neural networks — **GIN-ε** and **GIN-ε-JK** — fixed at one
//!   layer with 32 units, Adam (lr 0.01) and a plateau schedule.
//!
//! [`WlSvmClassifier`] and [`GinBaseline`] wrap those pipelines in the
//! [`GraphClassifier`](datasets::harness::GraphClassifier) trait so that
//! the CV driver measures all five methods under identical splits and
//! timing points.
//!
//! # Examples
//!
//! ```
//! use baselines::{GinBaseline, WlSvmClassifier, WlSvmConfig};
//! use datasets::harness::{evaluate_cv, CvProtocol};
//! use datasets::surrogate;
//!
//! let dataset = surrogate::generate_surrogate_sized(
//!     surrogate::spec_by_name("MUTAG").expect("known"),
//!     7,
//!     40,
//! );
//! let protocol = CvProtocol { folds: 4, repetitions: 1, seed: 5 };
//! let mut wl = WlSvmClassifier::new(WlSvmConfig::fast_subtree());
//! let report = evaluate_cv(&mut wl, &dataset, &protocol)?;
//! assert_eq!(report.method, "1-WL");
//! let mut gin = GinBaseline::quick(false);
//! let report = evaluate_cv(&mut gin, &dataset, &protocol)?;
//! assert_eq!(report.method, "GIN-e");
//! # Ok::<(), datasets::SplitError>(())
//! ```

mod gin;
mod wlsvm;

pub use gin::GinBaseline;
pub use wlsvm::{WlSvmClassifier, WlSvmConfig};
