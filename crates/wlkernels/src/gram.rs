//! Gram (kernel) matrix computation, parallelised across rows on the
//! shared work-stealing pool.

use crate::SparseCounts;
use parallel::Pool;

/// Which WL kernel to evaluate on a pair of feature maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// 1-WL subtree kernel: dot product of label histograms.
    Subtree,
    /// WL optimal assignment kernel: histogram intersection (sum of
    /// minima) over the WL label hierarchy.
    OptimalAssignment,
}

impl KernelKind {
    /// Evaluates the kernel on two feature maps.
    #[must_use]
    pub fn eval(&self, a: &SparseCounts, b: &SparseCounts) -> f64 {
        match self {
            KernelKind::Subtree => a.dot(b) as f64,
            KernelKind::OptimalAssignment => a.min_intersection(b) as f64,
        }
    }

    /// Evaluates one feature map against a block of candidates, writing
    /// `k(a, others[j])` into `out[j]` — the row-major analogue of
    /// hdvec's blocked `ClassMemory` scoring: the kernel variant is
    /// resolved once per row instead of once per cell, and the row map
    /// `a` stays hot in cache while the candidates stream past. This is
    /// the single inner loop the Gram computation runs on.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != others.len()`.
    pub fn eval_row(&self, a: &SparseCounts, others: &[SparseCounts], out: &mut [f64]) {
        assert_eq!(
            others.len(),
            out.len(),
            "gram row needs one output cell per candidate"
        );
        match self {
            KernelKind::Subtree => {
                for (cell, b) in out.iter_mut().zip(others) {
                    *cell = a.dot(b) as f64;
                }
            }
            KernelKind::OptimalAssignment => {
                for (cell, b) in out.iter_mut().zip(others) {
                    *cell = a.min_intersection(b) as f64;
                }
            }
        }
    }
}

/// A dense symmetric kernel matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct GramMatrix {
    n: usize,
    values: Vec<f64>,
}

impl GramMatrix {
    /// Matrix order (number of graphs).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The kernel value k(i, j).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "gram index out of bounds");
        self.values[i * self.n + j]
    }

    /// Cosine normalization: k'(i, j) = k(i, j) / √(k(i,i)·k(j,j)).
    /// Entries with a zero diagonal are mapped to 0.
    #[must_use]
    pub fn normalized(&self) -> GramMatrix {
        let diag: Vec<f64> = (0..self.n).map(|i| self.get(i, i)).collect();
        let mut values = vec![0.0f64; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                let denom = (diag[i] * diag[j]).sqrt();
                values[i * self.n + j] = if denom > 0.0 {
                    self.values[i * self.n + j] / denom
                } else {
                    0.0
                };
            }
        }
        GramMatrix { n: self.n, values }
    }

    /// Builds a matrix directly from row-major values (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n * n`.
    #[must_use]
    pub fn from_values(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n * n, "gram matrix needs n*n values");
        Self { n, values }
    }
}

/// Computes the full Gram matrix of `features` under `kind` on the
/// process-wide [`Pool::global`] (sized by `GRAPHHD_THREADS` or the
/// machine).
#[must_use]
pub fn compute_gram(features: &[SparseCounts], kind: KernelKind) -> GramMatrix {
    compute_gram_with_pool(features, kind, Pool::global())
}

/// Computes the Gram matrix on an explicit pool.
///
/// Each row is one stealable unit of work: row `i` costs O(n − i), and
/// work stealing rebalances that skew regardless of how rows were dealt
/// out initially (the previous round-robin static dealing systematically
/// overloaded the first worker). Only the upper triangle is computed and
/// then mirrored, and the result is bit-identical for every thread count
/// because every cell is an independent pure function of `features`.
#[must_use]
pub fn compute_gram_with_pool(
    features: &[SparseCounts],
    kind: KernelKind,
    pool: &Pool,
) -> GramMatrix {
    let n = features.len();
    let mut values = vec![0.0f64; n * n];
    if n == 0 {
        return GramMatrix { n, values };
    }
    pool.par_chunks_mut(&mut values, n, |i, row| {
        // One blocked row evaluation per stealable unit: parallel over
        // rows on the pool, streaming multi-candidate evaluation within.
        kind.eval_row(&features[i], &features[i..], &mut row[i..]);
    });
    // Mirror the upper triangle.
    for i in 0..n {
        for j in (i + 1)..n {
            values[j * n + i] = values[i * n + j];
        }
    }
    GramMatrix { n, values }
}

/// Computes the Gram matrix with an explicit thread count, on a transient
/// pool of exactly that parallelism — the deterministic-benchmarking and
/// regression-test entry point. Production paths should prefer
/// [`compute_gram`] (shared global pool) or
/// [`compute_gram_with_pool`].
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn compute_gram_with_threads(
    features: &[SparseCounts],
    kind: KernelKind,
    threads: usize,
) -> GramMatrix {
    assert!(threads > 0, "need at least one thread");
    compute_gram_with_pool(features, kind, &Pool::with_threads(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wl_features;
    use graphcore::generate;

    fn toy_features() -> Vec<SparseCounts> {
        let graphs = vec![
            generate::path(5),
            generate::cycle(5),
            generate::star(5),
            generate::complete(5),
            generate::path(7),
        ];
        wl_features(&graphs, 2).maps
    }

    #[test]
    fn gram_is_symmetric_with_positive_diagonal() {
        for kind in [KernelKind::Subtree, KernelKind::OptimalAssignment] {
            let features = toy_features();
            let gram = compute_gram(&features, kind);
            assert_eq!(gram.n(), 5);
            for i in 0..5 {
                assert!(gram.get(i, i) > 0.0);
                for j in 0..5 {
                    assert_eq!(gram.get(i, j), gram.get(j, i));
                }
            }
        }
    }

    #[test]
    fn eval_row_matches_per_cell_eval() {
        let features = toy_features();
        for kind in [KernelKind::Subtree, KernelKind::OptimalAssignment] {
            for i in 0..features.len() {
                let mut row = vec![0.0f64; features.len()];
                kind.eval_row(&features[i], &features, &mut row);
                for (j, &cell) in row.iter().enumerate() {
                    assert_eq!(cell, kind.eval(&features[i], &features[j]), "({i}, {j})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one output cell per candidate")]
    fn eval_row_length_mismatch_panics() {
        let features = toy_features();
        let mut row = vec![0.0f64; 2];
        KernelKind::Subtree.eval_row(&features[0], &features, &mut row);
    }

    #[test]
    fn thread_counts_agree() {
        let features = toy_features();
        let serial = compute_gram_with_threads(&features, KernelKind::Subtree, 1);
        let parallel = compute_gram_with_threads(&features, KernelKind::Subtree, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn normalization_puts_ones_on_diagonal() {
        let features = toy_features();
        let gram = compute_gram(&features, KernelKind::OptimalAssignment).normalized();
        for i in 0..gram.n() {
            assert!((gram.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..gram.n() {
                assert!(gram.get(i, j) <= 1.0 + 1e-12);
                assert!(gram.get(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn identical_graphs_have_maximal_normalized_similarity() {
        let graphs = vec![generate::path(6), generate::path(6), generate::star(6)];
        let features = wl_features(&graphs, 3);
        let gram = compute_gram(&features.maps, KernelKind::Subtree).normalized();
        assert!((gram.get(0, 1) - 1.0).abs() < 1e-12);
        assert!(gram.get(0, 2) < 1.0);
    }

    #[test]
    fn subtree_known_answer() {
        // P3 vs K3, h = 1 (see refine.rs known-answer test for the math).
        let graphs = vec![generate::path(3), generate::cycle(3)];
        let features = wl_features(&graphs, 1);
        let gram = compute_gram(&features.maps, KernelKind::Subtree);
        assert_eq!(gram.get(0, 1), 12.0);
        assert_eq!(gram.get(0, 0), 14.0);
        assert_eq!(gram.get(1, 1), 18.0);
        let oa = compute_gram(&features.maps, KernelKind::OptimalAssignment);
        assert_eq!(oa.get(0, 1), 4.0);
    }

    #[test]
    fn empty_input_yields_empty_gram() {
        let gram = compute_gram(&[], KernelKind::Subtree);
        assert_eq!(gram.n(), 0);
    }

    #[test]
    fn subtree_gram_is_positive_semidefinite_by_construction() {
        // The subtree kernel is an explicit dot product, so x^T K x >= 0
        // for a few random x.
        let features = toy_features();
        let gram = compute_gram(&features, KernelKind::Subtree);
        let n = gram.n();
        let xs = [
            vec![1.0, -1.0, 0.5, -0.5, 0.25],
            vec![0.0, 1.0, -2.0, 1.0, 0.0],
        ];
        for x in xs {
            let mut quad = 0.0;
            for i in 0..n {
                for j in 0..n {
                    quad += x[i] * x[j] * gram.get(i, j);
                }
            }
            assert!(quad >= -1e-9, "quadratic form {quad} negative");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let gram = GramMatrix::from_values(1, vec![1.0]);
        let _ = gram.get(0, 1);
    }
}
