//! Weisfeiler–Leman graph kernels — the paper's kernel baselines.
//!
//! The paper compares GraphHD against two state-of-the-art graph kernels
//! (Section V-A2):
//!
//! - **1-WL** — the Weisfeiler–Lehman subtree kernel (Shervashidze et al.,
//!   JMLR 2011): graphs are compared by the dot product of their label
//!   histograms across `h` rounds of WL color refinement.
//! - **WL-OA** — the Weisfeiler–Lehman optimal assignment kernel (Kriege
//!   et al., NIPS 2016): the optimal vertex assignment under the WL label
//!   hierarchy, which for uniform level weights reduces to the histogram
//!   *intersection* (sum of minima) over the same label counts.
//!
//! Both kernels share one [`wl_features`] computation: a single label
//! dictionary spans all graphs and all iterations, so label ids are
//! globally comparable, and each graph's feature map is a sparse count
//! vector over that global label space.
//!
//! Following the paper's protocol, vertices start **unlabeled** (uniform
//! initial color): dataset vertex labels are deliberately not used.
//!
//! # Examples
//!
//! ```
//! use graphcore::generate;
//! use wlkernels::{compute_gram, wl_features, KernelKind};
//!
//! let graphs = vec![generate::path(4), generate::cycle(4), generate::star(4)];
//! let features = wl_features(&graphs, 3);
//! let gram = compute_gram(&features.maps, KernelKind::Subtree).normalized();
//! assert!((gram.get(0, 0) - 1.0).abs() < 1e-12);
//! assert!(gram.get(0, 1) <= 1.0);
//! ```

mod gram;
mod refine;
mod sparse;

pub use gram::{
    compute_gram, compute_gram_with_pool, compute_gram_with_threads, GramMatrix, KernelKind,
};
pub use refine::{wl_feature_series, wl_features, WlFeatures, WlRefinery};
pub use sparse::SparseCounts;
