//! Weisfeiler–Leman color refinement over a graph collection.

use crate::SparseCounts;
use graphcore::Graph;
use std::borrow::Borrow;
use std::collections::HashMap;

/// The WL feature maps of a graph collection.
///
/// One label dictionary spans all graphs and iterations, so label ids are
/// globally comparable; `maps[g]` counts every label vertex `v` of graph
/// `g` carried at any iteration `0..=iterations`. Because refinement
/// assigns fresh ids each round, per-iteration label spaces are disjoint
/// and a single count vector encodes the full iteration-stratified
/// histogram (dot products and intersections decompose per iteration
/// automatically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WlFeatures {
    /// One sparse count vector per graph, aligned with the input order.
    pub maps: Vec<SparseCounts>,
    /// Number of refinement iterations performed (h).
    pub iterations: usize,
    /// Total number of distinct labels over all iterations.
    pub num_labels: u32,
    /// Final-iteration labels per graph per vertex (useful for tests and
    /// for inspecting refinement stability).
    pub final_labels: Vec<Vec<u32>>,
}

/// A fitted WL label dictionary: refinement signatures observed on the
/// training collection, reusable to [`transform`](WlRefinery::transform)
/// unseen graphs at inference time.
///
/// Signatures a new graph exhibits that the training collection never did
/// are assigned *local* fresh ids — they can never match a training
/// label, so they contribute nothing to a kernel value against training
/// graphs, which is exactly the inductive WL-kernel semantics.
///
/// # Examples
///
/// ```
/// use graphcore::generate;
/// use wlkernels::WlRefinery;
///
/// let train = vec![generate::path(4), generate::star(4)];
/// let (refinery, maps) = WlRefinery::fit(&train, 2);
/// // Transforming a training graph reproduces its fitted map.
/// assert_eq!(refinery.transform(&train[0]), maps[0]);
/// // A structurally identical new graph maps identically too.
/// assert_eq!(refinery.transform(&generate::path(4)), maps[0]);
/// ```
#[derive(Debug, Clone)]
pub struct WlRefinery {
    dictionary: HashMap<Vec<u32>, u32>,
    next_id: u32,
    iterations: usize,
}

/// One refinement round: relabels every vertex of every graph by its
/// compressed `(own label, sorted neighbor labels)` signature, extending
/// `dictionary` with fresh ids as needed.
fn refine_round<G: Borrow<Graph>>(
    graphs: &[G],
    labels: &[Vec<u32>],
    dictionary: &mut HashMap<Vec<u32>, u32>,
    next_id: &mut u32,
) -> Vec<Vec<u32>> {
    let mut signature: Vec<u32> = Vec::new();
    let mut next_labels: Vec<Vec<u32>> = Vec::with_capacity(graphs.len());
    for (graph, current) in graphs.iter().zip(labels) {
        let graph = graph.borrow();
        let mut fresh = vec![0u32; graph.vertex_count()];
        for v in 0..graph.vertex_count() as u32 {
            signature.clear();
            signature.push(current[v as usize]);
            let start = signature.len();
            signature.extend(graph.neighbors(v).iter().map(|&u| current[u as usize]));
            signature[start..].sort_unstable();
            let id = *dictionary.entry(signature.clone()).or_insert_with(|| {
                let id = *next_id;
                *next_id += 1;
                id
            });
            fresh[v as usize] = id;
        }
        next_labels.push(fresh);
    }
    next_labels
}

/// Shared refinement core: refines `graphs` for `iterations` rounds
/// against (and extending) `dictionary`, returning per-graph cumulative
/// label multisets and final labels.
fn refine_into<G: Borrow<Graph>>(
    graphs: &[G],
    iterations: usize,
    dictionary: &mut HashMap<Vec<u32>, u32>,
    next_id: &mut u32,
) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let mut labels: Vec<Vec<u32>> = graphs
        .iter()
        .map(|g| vec![0u32; g.borrow().vertex_count()])
        .collect();
    let mut all_labels: Vec<Vec<u32>> = labels.clone();
    for _ in 0..iterations {
        let next_labels = refine_round(graphs, &labels, dictionary, next_id);
        for (acc, fresh) in all_labels.iter_mut().zip(&next_labels) {
            acc.extend_from_slice(fresh);
        }
        labels = next_labels;
    }
    (all_labels, labels)
}

impl WlRefinery {
    /// Fits the dictionary on a training collection and returns it along
    /// with the training feature maps.
    pub fn fit<G: Borrow<Graph>>(graphs: &[G], iterations: usize) -> (Self, Vec<SparseCounts>) {
        let mut dictionary = HashMap::new();
        let mut next_id = 1u32; // id 0 is the shared initial color
        let (all_labels, _) = refine_into(graphs, iterations, &mut dictionary, &mut next_id);
        let maps = all_labels
            .into_iter()
            .map(SparseCounts::from_labels)
            .collect();
        (
            Self {
                dictionary,
                next_id,
                iterations,
            },
            maps,
        )
    }

    /// The number of refinement rounds this dictionary was fitted with.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of distinct labels observed during fitting.
    #[must_use]
    pub fn num_labels(&self) -> u32 {
        self.next_id
    }

    /// Refines a single unseen graph against the fitted dictionary.
    ///
    /// Unseen signatures get fresh ids local to this call; they are
    /// disjoint from all training ids (and from other transforms), so
    /// they never contribute to kernel values against training maps.
    #[must_use]
    pub fn transform(&self, graph: &Graph) -> SparseCounts {
        let mut labels = vec![0u32; graph.vertex_count()];
        let mut all_labels: Vec<u32> = labels.clone();
        let mut local: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut local_next = self.next_id;
        let mut signature: Vec<u32> = Vec::new();
        for _ in 0..self.iterations {
            let mut fresh = vec![0u32; graph.vertex_count()];
            for v in 0..graph.vertex_count() as u32 {
                signature.clear();
                signature.push(labels[v as usize]);
                let start = signature.len();
                signature.extend(graph.neighbors(v).iter().map(|&u| labels[u as usize]));
                signature[start..].sort_unstable();
                let id = match self.dictionary.get(&signature) {
                    Some(&id) => id,
                    None => *local.entry(signature.clone()).or_insert_with(|| {
                        let id = local_next;
                        local_next += 1;
                        id
                    }),
                };
                fresh[v as usize] = id;
            }
            all_labels.extend_from_slice(&fresh);
            labels = fresh;
        }
        SparseCounts::from_labels(all_labels)
    }
}

/// Runs `iterations` rounds of WL refinement with uniform initial colors
/// (the unlabeled-graph protocol of the paper) and returns per-graph
/// feature maps.
///
/// Iteration 0 contributes each vertex with the shared initial label, so
/// `h = 0` reduces both WL kernels to functions of the vertex counts.
///
/// # Examples
///
/// ```
/// use graphcore::generate;
/// use wlkernels::wl_features;
///
/// // One WL round on unlabeled graphs discovers degree classes.
/// let star = generate::star(5);
/// let features = wl_features(&[star], 1);
/// // Two roles: the center and the leaves.
/// assert_eq!(features.maps[0].len(), 3); // initial label + 2 roles
/// ```
#[must_use]
pub fn wl_features<G: Borrow<Graph>>(graphs: &[G], iterations: usize) -> WlFeatures {
    let mut dictionary = HashMap::new();
    let mut next_id = 1u32;
    let (all_labels, final_labels) = refine_into(graphs, iterations, &mut dictionary, &mut next_id);
    WlFeatures {
        maps: all_labels
            .into_iter()
            .map(SparseCounts::from_labels)
            .collect(),
        iterations,
        num_labels: next_id,
        final_labels,
    }
}

/// Runs refinement once up to `max_iterations` and returns the cumulative
/// feature maps for **every** iteration count `h ∈ 0..=max_iterations` —
/// element `h` equals `wl_features(graphs, h)`'s maps. This powers the
/// paper's model selection over the iteration grid {0, …, 5} without
/// re-running refinement per grid point.
///
/// # Examples
///
/// ```
/// use graphcore::generate;
/// use wlkernels::{wl_feature_series, wl_features};
///
/// let graphs = vec![generate::path(5), generate::star(5)];
/// let series = wl_feature_series(&graphs, 3);
/// assert_eq!(series.len(), 4);
/// assert_eq!(series[2], wl_features(&graphs, 2).maps);
/// ```
#[must_use]
pub fn wl_feature_series<G: Borrow<Graph>>(
    graphs: &[G],
    max_iterations: usize,
) -> Vec<Vec<SparseCounts>> {
    // Single refinement run with a snapshot of the cumulative label
    // multiset after every iteration: labels issued at iteration t are
    // ids unique to t, so the cumulative multiset up to t is a prefix of
    // the one up to t+1.
    let mut dictionary: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut next_id: u32 = 1;
    let mut labels: Vec<Vec<u32>> = graphs
        .iter()
        .map(|g| vec![0u32; g.borrow().vertex_count()])
        .collect();
    let mut all_labels: Vec<Vec<u32>> = labels.clone();
    let mut series: Vec<Vec<SparseCounts>> = Vec::with_capacity(max_iterations + 1);
    series.push(
        all_labels
            .iter()
            .map(|l| SparseCounts::from_labels(l.clone()))
            .collect(),
    );
    for _ in 0..max_iterations {
        labels = refine_round(graphs, &labels, &mut dictionary, &mut next_id);
        for (acc, fresh) in all_labels.iter_mut().zip(&labels) {
            acc.extend_from_slice(fresh);
        }
        series.push(
            all_labels
                .iter()
                .map(|l| SparseCounts::from_labels(l.clone()))
                .collect(),
        );
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    #[test]
    fn zero_iterations_counts_vertices() {
        let graphs = vec![generate::path(3), generate::complete(4)];
        let features = wl_features(&graphs, 0);
        assert_eq!(features.maps[0].entries(), &[(0, 3)]);
        assert_eq!(features.maps[1].entries(), &[(0, 4)]);
        assert_eq!(features.num_labels, 1);
    }

    #[test]
    fn first_iteration_discovers_degrees() {
        // In a star, iteration 1 separates the hub from the leaves.
        let features = wl_features(&[generate::star(6)], 1);
        let finals = &features.final_labels[0];
        assert_ne!(finals[0], finals[1]);
        assert!(finals[1..].iter().all(|&l| l == finals[1]));
    }

    #[test]
    fn regular_graphs_stay_uniform() {
        // Cycles are 2-regular: WL can never split them.
        let features = wl_features(&[generate::cycle(5)], 3);
        let finals = &features.final_labels[0];
        assert!(finals.iter().all(|&l| l == finals[0]));
    }

    #[test]
    fn shared_dictionary_aligns_graphs() {
        // Two disjoint copies of the same structure must get identical
        // feature maps.
        let graphs = vec![generate::path(4), generate::path(4)];
        let features = wl_features(&graphs, 3);
        assert_eq!(features.maps[0], features.maps[1]);
        assert_eq!(features.final_labels[0], features.final_labels[1]);
    }

    #[test]
    fn known_answer_path_vs_triangle() {
        // P3 vs K3 with h = 1 (hand-computed in the suite's design notes):
        // iter 0: both graphs count {initial: 3}.
        // iter 1: P3 has 2 degree-1 vertices and 1 degree-2 vertex; K3 has
        //         3 degree-2 vertices. The degree-2 signature in P3 is
        //         (0, [0, 0]) — the same as in K3, so they share that id.
        let graphs = vec![generate::path(3), generate::cycle(3)];
        let features = wl_features(&graphs, 1);
        let a = &features.maps[0];
        let b = &features.maps[1];
        assert_eq!(a.dot(b), 9 + 3); // 3*3 (iter 0) + 1*3 (shared deg-2 id)
        assert_eq!(a.dot(a), 9 + 4 + 1);
        assert_eq!(b.dot(b), 9 + 9);
        assert_eq!(a.min_intersection(b), 3 + 1);
    }

    #[test]
    fn feature_totals_are_vertices_times_iterations() {
        let graphs = vec![generate::star(7), generate::cycle(4)];
        let h = 4;
        let features = wl_features(&graphs, h);
        for (g, map) in graphs.iter().zip(&features.maps) {
            assert_eq!(map.total(), (g.vertex_count() * (h + 1)) as u64);
        }
    }

    #[test]
    fn empty_graph_collection() {
        let features = wl_features::<Graph>(&[], 2);
        assert!(features.maps.is_empty());
    }

    #[test]
    fn graph_with_no_edges_refines_stably() {
        let features = wl_features(&[graphcore::Graph::empty(5)], 2);
        // All vertices keep identical labels; 3 distinct labels total
        // (one per iteration).
        assert_eq!(features.maps[0].len(), 3);
        assert_eq!(features.maps[0].total(), 15);
    }

    #[test]
    fn feature_series_matches_individual_runs() {
        let graphs = vec![
            generate::star(6),
            generate::path(6),
            generate::cycle(6),
            generate::complete(4),
        ];
        let series = wl_feature_series(&graphs, 4);
        assert_eq!(series.len(), 5);
        for (h, maps) in series.iter().enumerate() {
            assert_eq!(maps, &wl_features(&graphs, h).maps, "iteration {h}");
        }
    }

    #[test]
    fn distinguishes_non_isomorphic_same_degree_sequence() {
        // C6 vs two C3s: same degree sequence (all degree 2) — classic
        // 1-WL blind spot, so feature maps must be EQUAL here. This
        // documents the known limitation (GNNs share it, per Xu et al.).
        let c6 = generate::cycle(6);
        let mut b = graphcore::GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v);
        }
        let two_triangles = b.build();
        let features = wl_features(&[c6, two_triangles], 3);
        assert_eq!(features.maps[0], features.maps[1]);
    }

    #[test]
    fn refinery_transform_matches_fit_on_training_graphs() {
        let graphs = vec![
            generate::star(6),
            generate::path(7),
            generate::cycle(5),
            generate::complete(4),
        ];
        let (refinery, maps) = WlRefinery::fit(&graphs, 3);
        for (graph, map) in graphs.iter().zip(&maps) {
            assert_eq!(&refinery.transform(graph), map);
        }
        assert_eq!(refinery.iterations(), 3);
        assert!(refinery.num_labels() > 1);
    }

    #[test]
    fn refinery_unseen_structures_share_nothing_new() {
        // A clique of unseen size generates unseen signatures from
        // iteration 1 on; its kernel against training graphs must equal
        // the contribution of shared labels only (here: iteration 0).
        let train = vec![generate::path(4)];
        let (refinery, maps) = WlRefinery::fit(&train, 2);
        let unseen = refinery.transform(&generate::complete(6));
        // Shared: initial label only -> dot = 4 * 6.
        assert_eq!(maps[0].dot(&unseen), 24);
    }

    #[test]
    fn refinery_transforms_are_independent() {
        // Local ids from one transform must not leak into another.
        let train = vec![generate::path(4)];
        let (refinery, _) = WlRefinery::fit(&train, 2);
        let a = refinery.transform(&generate::complete(5));
        let b = refinery.transform(&generate::complete(5));
        assert_eq!(a, b, "same structure, same local extension");
    }
}
