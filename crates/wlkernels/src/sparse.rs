//! Sparse non-negative count vectors over a global label space.

/// A sparse count vector: sorted `(label, count)` pairs with positive
/// counts. The feature representation of one graph under WL refinement.
///
/// # Examples
///
/// ```
/// use wlkernels::SparseCounts;
///
/// let a = SparseCounts::from_labels(vec![0, 0, 1, 5]);
/// let b = SparseCounts::from_labels(vec![0, 1, 1, 7]);
/// assert_eq!(a.dot(&b), 2 * 1 + 1 * 2);       // labels 0 and 1 overlap
/// assert_eq!(a.min_intersection(&b), 1 + 1);  // min(2,1) + min(1,2)
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SparseCounts {
    entries: Vec<(u32, u32)>,
}

impl SparseCounts {
    /// Builds a count vector from a multiset of labels.
    #[must_use]
    pub fn from_labels(mut labels: Vec<u32>) -> Self {
        labels.sort_unstable();
        let mut entries: Vec<(u32, u32)> = Vec::new();
        for label in labels {
            match entries.last_mut() {
                Some((l, c)) if *l == label => *c += 1,
                _ => entries.push((label, 1)),
            }
        }
        Self { entries }
    }

    /// Builds directly from sorted, deduplicated `(label, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if pairs are unsorted, duplicated, or have
    /// zero counts.
    #[must_use]
    pub fn from_entries(entries: Vec<(u32, u32)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly sorted by label"
        );
        debug_assert!(
            entries.iter().all(|&(_, c)| c > 0),
            "counts must be positive"
        );
        Self { entries }
    }

    /// The `(label, count)` pairs, sorted by label.
    #[must_use]
    pub fn entries(&self) -> &[(u32, u32)] {
        &self.entries
    }

    /// Number of distinct labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no labels are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total count (the L1 norm).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| u64::from(c)).sum()
    }

    /// Dot product — the 1-WL subtree kernel contribution.
    #[must_use]
    pub fn dot(&self, other: &Self) -> u64 {
        self.merge_fold(other, |a, b| u64::from(a) * u64::from(b))
    }

    /// Sum of element-wise minima — the WL-OA (histogram intersection)
    /// kernel contribution.
    #[must_use]
    pub fn min_intersection(&self, other: &Self) -> u64 {
        self.merge_fold(other, |a, b| u64::from(a.min(b)))
    }

    /// Merges the two sorted entry lists, folding `f(count_a, count_b)`
    /// over labels present in **both** vectors.
    fn merge_fold<F: Fn(u32, u32) -> u64>(&self, other: &Self, f: F) -> u64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0u64;
        while i < self.entries.len() && j < other.entries.len() {
            let (la, ca) = self.entries[i];
            let (lb, cb) = other.entries[j];
            match la.cmp(&lb) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    acc += f(ca, cb);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_counts_and_sorts() {
        let v = SparseCounts::from_labels(vec![5, 1, 5, 5, 1]);
        assert_eq!(v.entries(), &[(1, 2), (5, 3)]);
        assert_eq!(v.total(), 5);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn empty_vector_behaves() {
        let e = SparseCounts::from_labels(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.total(), 0);
        let v = SparseCounts::from_labels(vec![1]);
        assert_eq!(e.dot(&v), 0);
        assert_eq!(e.min_intersection(&v), 0);
    }

    #[test]
    fn dot_and_min_on_disjoint_supports_are_zero() {
        let a = SparseCounts::from_labels(vec![1, 2]);
        let b = SparseCounts::from_labels(vec![3, 4]);
        assert_eq!(a.dot(&b), 0);
        assert_eq!(a.min_intersection(&b), 0);
    }

    #[test]
    fn dot_with_self_is_squared_norm() {
        let a = SparseCounts::from_labels(vec![0, 0, 0, 2, 2, 9]);
        assert_eq!(a.dot(&a), 9 + 4 + 1);
        assert_eq!(a.min_intersection(&a), a.total());
    }

    #[test]
    fn kernels_are_symmetric() {
        let a = SparseCounts::from_labels(vec![0, 1, 1, 3]);
        let b = SparseCounts::from_labels(vec![1, 3, 3, 3]);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.min_intersection(&b), b.min_intersection(&a));
    }

    #[test]
    fn min_is_bounded_by_smaller_total() {
        let a = SparseCounts::from_labels(vec![0, 0, 1]);
        let b = SparseCounts::from_labels(vec![0, 1, 1, 1, 2, 2]);
        assert!(a.min_intersection(&b) <= a.total().min(b.total()));
    }
}
