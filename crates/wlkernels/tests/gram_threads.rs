//! Regression for the load-imbalance bug of the pre-pool Gram code.
//!
//! The old `compute_gram_with_threads` dealt row `i` (cost O(n − i))
//! round-robin, so the first worker always drew the most expensive rows;
//! the port to the work-stealing pool removed the pattern. These tests pin
//! the contract the port must keep: the Gram matrix is **bit-identical**
//! for every thread count, including counts that do not divide the row
//! count.

use wlkernels::{compute_gram, compute_gram_with_threads, wl_features, KernelKind};

/// 23 graphs (deliberately prime, so no thread count in {2, 7} divides
/// it) of skewed sizes — the shape that exposed the old imbalance.
fn feature_set() -> Vec<wlkernels::SparseCounts> {
    let mut graphs = Vec::new();
    for i in 0..23usize {
        let n = 4 + (i * 7) % 19; // sizes 4..=22, scattered
        graphs.push(match i % 4 {
            0 => graphcore::generate::path(n),
            1 => graphcore::generate::cycle(n),
            2 => graphcore::generate::star(n),
            _ => graphcore::generate::complete(n.min(9)),
        });
    }
    assert_eq!(graphs.len(), 23);
    wl_features(&graphs, 2).maps
}

#[test]
fn gram_is_identical_for_non_divisible_thread_counts() {
    let features = feature_set();
    for kind in [KernelKind::Subtree, KernelKind::OptimalAssignment] {
        let serial = compute_gram_with_threads(&features, kind, 1);
        for threads in [2usize, 7] {
            let parallel = compute_gram_with_threads(&features, kind, threads);
            assert_eq!(
                serial, parallel,
                "gram diverged at {threads} threads ({kind:?})"
            );
        }
        // The global-pool entry point agrees too.
        assert_eq!(serial, compute_gram(&features, kind), "{kind:?}");
    }
}

#[test]
fn gram_values_are_exact_not_just_close() {
    // Spot-check against directly evaluated kernels: the parallel path
    // must place every cell, not merely produce a symmetric matrix.
    let features = feature_set();
    let gram = compute_gram_with_threads(&features, KernelKind::Subtree, 7);
    for i in 0..features.len() {
        for j in 0..features.len() {
            let expected = KernelKind::Subtree.eval(&features[i], &features[j]);
            assert_eq!(gram.get(i, j), expected, "cell ({i}, {j})");
        }
    }
}
