//! Property-based tests for the WL kernel machinery.

use graphcore::{generate, Graph};
use prng::Xoshiro256PlusPlus;
use proptest::prelude::*;
use wlkernels::{compute_gram, wl_features, KernelKind, WlRefinery};

fn arb_graphs() -> impl Strategy<Value = Vec<Graph>> {
    (2usize..8, any::<u64>()).prop_map(|(count, seed)| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..count)
            .map(|i| {
                generate::erdos_renyi(4 + (i % 5) * 3, 0.3, &mut rng).expect("valid parameters")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gram_matrices_are_symmetric_psd_diagonal(graphs in arb_graphs(), h in 0usize..4) {
        let features = wl_features(&graphs, h);
        for kind in [KernelKind::Subtree, KernelKind::OptimalAssignment] {
            let gram = compute_gram(&features.maps, kind);
            for i in 0..gram.n() {
                prop_assert!(gram.get(i, i) > 0.0, "diagonal must be positive");
                for j in 0..gram.n() {
                    prop_assert_eq!(gram.get(i, j), gram.get(j, i));
                    // Cauchy–Schwarz for the subtree (dot-product) kernel.
                    if kind == KernelKind::Subtree {
                        prop_assert!(
                            gram.get(i, j) * gram.get(i, j)
                                <= gram.get(i, i) * gram.get(j, j) + 1e-6
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn normalization_bounds_hold(graphs in arb_graphs(), h in 0usize..4) {
        let features = wl_features(&graphs, h);
        let gram = compute_gram(&features.maps, KernelKind::OptimalAssignment).normalized();
        for i in 0..gram.n() {
            prop_assert!((gram.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..gram.n() {
                prop_assert!(gram.get(i, j) >= -1e-9);
                prop_assert!(gram.get(i, j) <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn min_intersection_bounded_by_dot(graphs in arb_graphs(), h in 0usize..4) {
        // For non-negative counts, sum of minima <= dot product whenever
        // counts are >= 1 on shared support.
        let features = wl_features(&graphs, h);
        for a in &features.maps {
            for b in &features.maps {
                prop_assert!(a.min_intersection(b) <= a.dot(b));
            }
        }
    }

    #[test]
    fn refinery_transform_agrees_with_joint_fit(graphs in arb_graphs(), h in 0usize..4) {
        // Transforming each training graph individually must reproduce the
        // jointly fitted maps (the dictionary covers them by definition).
        let (refinery, maps) = WlRefinery::fit(&graphs, h);
        for (graph, map) in graphs.iter().zip(&maps) {
            prop_assert_eq!(&refinery.transform(graph), map);
        }
    }

    #[test]
    fn wl_is_isomorphism_invariant(seed in any::<u64>(), h in 1usize..4) {
        // Relabeling vertices must not change the feature map.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let g = generate::erdos_renyi(12, 0.3, &mut rng).expect("valid parameters");
        let mut perm: Vec<u32> = (0..12).collect();
        use prng::WordRng;
        rng.shuffle(&mut perm);
        let mut builder = graphcore::GraphBuilder::new(12);
        for (u, v) in g.edges() {
            builder.add_edge(perm[u as usize], perm[v as usize]);
        }
        let permuted = builder.build();
        let features = wl_features(&[g, permuted], h);
        prop_assert_eq!(&features.maps[0], &features.maps[1]);
    }
}
