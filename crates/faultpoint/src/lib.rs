//! **faultpoint** — deterministic, zero-dependency fault injection.
//!
//! A serving stack earns its resilience claims by injecting the
//! failures on purpose. This crate provides *named fail points*: a call
//! to [`inject`] (or the [`fail_point!`] macro) marks a place where a
//! chaos test may deterministically inject a **panic**, an **error**
//! (reported back to the caller to map into its own error type) or a
//! **delay**. The workspace registers points at the engine dispatch
//! loop, pool region execution, and the snapshot write/rename
//! boundaries — the catalog lives in `docs/RESILIENCE.md`.
//!
//! # Cost when disabled
//!
//! Fault injection is off unless configured, and the disabled path is
//! **one relaxed atomic load** (after a one-time environment check on
//! the very first evaluation in the process). No locks, no clock reads,
//! no allocation — fail points are safe to leave in hot paths.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(seed, point name, rule index,
//! hit index)`: the n-th evaluation of a given point fires or not
//! regardless of wall clock, thread timing, or scheduling. Two runs
//! with the same seed and the same per-point evaluation counts inject
//! the same faults; CI sweeps seeds to vary the pattern.
//!
//! # Configuration
//!
//! Two routes install a [`Plan`]:
//!
//! - the `GRAPHHD_FAULTS` environment variable (registered in
//!   `docs/ENV.md`), read once on first evaluation — the route the CI
//!   chaos matrix uses;
//! - [`configure`], which parses the same grammar and returns a
//!   [`FaultGuard`] that serializes configuration across tests in one
//!   process and restores the environment-derived plan when dropped.
//!
//! The grammar is a `;`-separated list of `key=value` clauses:
//!
//! ```text
//! seed=42;engine.dispatch=30%panic;snapshot.write=error;pool.region=10%delay(2)
//! ```
//!
//! - `seed=<u64>` — the deterministic seed (default 0);
//! - `<point>=<percent>%<action>` — arm `<point>` to perform
//!   `<action>` on `<percent>` percent of evaluations (the percent
//!   prefix is optional and defaults to 100);
//! - `<action>` is `panic`, `error`, or `delay(<millis>)`.
//!
//! Repeating a point adds another rule; rules are evaluated in order
//! and the first that fires wins.
//!
//! # Examples
//!
//! ```
//! // Nothing configured: the point is inert.
//! assert!(!faultpoint::inject("doc.example"));
//!
//! // Arm it at 100% error for this scope.
//! let guard = faultpoint::configure("seed=1;doc.example=error").expect("valid spec");
//! assert!(faultpoint::inject("doc.example"));
//! drop(guard);
//! assert!(!faultpoint::inject("doc.example"));
//! ```

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Environment variable carrying the process-wide fault plan (see the
/// crate docs for the grammar). Read once, on the first fail-point
/// evaluation; [`configure`] overrides it for a scope.
pub const FAULTS_ENV: &str = "GRAPHHD_FAULTS";

/// What an armed fail point does when its rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic with a message naming the point
    /// (`faultpoint: injected panic at ...`). Simulates a crash of the
    /// executing thread.
    Panic,
    /// Report an injected failure: [`inject`] returns `true` and the
    /// caller maps it into its own error type.
    Error,
    /// Sleep for the given number of milliseconds, then proceed.
    /// Simulates a stall (slow disk, scheduling hiccup).
    Delay(u64),
}

/// One armed rule: fire `action` on `percent`% of the evaluations of
/// `point`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Rule {
    point: String,
    percent: u8,
    action: Action,
}

/// A parsed fault plan: the deterministic seed plus the armed rules.
/// Parse one with [`Plan::parse`]; install it via [`configure`] or the
/// `GRAPHHD_FAULTS` environment variable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    /// Seed mixed into every fire/skip decision.
    pub seed: u64,
    rules: Vec<Rule>,
}

/// A malformed fault specification, with the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The clause that failed to parse.
    pub clause: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "bad fault clause `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for ParseError {}

impl Plan {
    /// Parses a fault specification (see the crate docs for the
    /// grammar). The empty string parses to the inert default plan.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] naming the first malformed clause.
    pub fn parse(spec: &str) -> Result<Self, ParseError> {
        let mut plan = Plan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let err = |reason| ParseError {
                clause: clause.to_string(),
                reason,
            };
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| err("expected `key=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value.parse().map_err(|_| err("seed must be a u64"))?;
                continue;
            }
            if key.is_empty() {
                return Err(err("empty point name"));
            }
            let (percent, action) = match value.split_once('%') {
                Some((pct, action)) => {
                    let pct: u8 = pct
                        .trim()
                        .parse()
                        .map_err(|_| err("percent must be an integer 0..=100"))?;
                    if pct > 100 {
                        return Err(err("percent must be an integer 0..=100"));
                    }
                    (pct, action.trim())
                }
                None => (100, value),
            };
            let action = if action == "panic" {
                Action::Panic
            } else if action == "error" {
                Action::Error
            } else if let Some(ms) = action
                .strip_prefix("delay(")
                .and_then(|rest| rest.strip_suffix(')'))
            {
                Action::Delay(
                    ms.trim()
                        .parse()
                        .map_err(|_| err("delay needs integer milliseconds"))?,
                )
            } else {
                return Err(err("action must be panic, error, or delay(<ms>)"));
            };
            plan.rules.push(Rule {
                point: key.to_string(),
                percent,
                action,
            });
        }
        Ok(plan)
    }

    /// Whether the plan arms any point at all.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.rules.is_empty()
    }
}

/// An installed plan plus one evaluation counter per rule (rules on the
/// same point share the point's hit sequence; see [`decision`]).
#[derive(Debug)]
struct ActivePlan {
    plan: Plan,
    /// Hit counter per *distinct point name*, indexed by `point_index`.
    hits: Vec<(String, AtomicU64)>,
}

impl ActivePlan {
    fn new(plan: Plan) -> Self {
        let mut hits: Vec<(String, AtomicU64)> = Vec::new();
        for rule in &plan.rules {
            if !hits.iter().any(|(name, _)| name == &rule.point) {
                hits.push((rule.point.clone(), AtomicU64::new(0)));
            }
        }
        Self { plan, hits }
    }
}

/// Tri-state activation flag: the hot path is a single relaxed load.
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static FLAG: AtomicU8 = AtomicU8::new(UNINIT);
static STATE: Mutex<Option<ActivePlan>> = Mutex::new(None);
/// Serializes [`configure`] scopes across tests in one process.
static SERIAL: Mutex<()> = Mutex::new(());

fn state_lock() -> MutexGuard<'static, Option<ActivePlan>> {
    // A panic while holding this lock is an injected panic by design;
    // the plan itself is never left half-written, so recover the guard.
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan` as the process-wide active plan (`None` reverts to
/// "nothing configured").
fn install(plan: Option<Plan>) {
    let mut state = state_lock();
    match plan {
        Some(plan) if !plan.is_inert() => {
            *state = Some(ActivePlan::new(plan));
            FLAG.store(ON, Ordering::Relaxed);
        }
        _ => {
            *state = None;
            FLAG.store(OFF, Ordering::Relaxed);
        }
    }
}

/// The plan the environment declares, if `GRAPHHD_FAULTS` is set and
/// parses. A malformed value is treated as absent rather than panicking
/// in whatever innocent code evaluated the first fail point.
fn plan_from_env() -> Option<Plan> {
    let spec = std::env::var(FAULTS_ENV).ok()?;
    Plan::parse(&spec).ok()
}

/// The seed declared by `GRAPHHD_FAULTS`, if any. Chaos tests use this
/// to let the CI matrix steer their in-process seed sweep.
#[must_use]
pub fn env_seed() -> Option<u64> {
    plan_from_env().map(|plan| plan.seed)
}

/// Whether any fail point is currently armed.
#[must_use]
pub fn active() -> bool {
    inject("faultpoint.noop");
    FLAG.load(Ordering::Relaxed) == ON
}

/// SplitMix64 — the statistically solid 64-bit mixer; enough for
/// fire/skip decisions and dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the point name, so the per-point decision streams are
/// decorrelated without any global registration step.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Pure fire/skip decision for rule `rule_index` at evaluation
/// `hit` of `point` under `seed` and `percent`.
fn decision(seed: u64, point: &str, rule_index: usize, hit: u64, percent: u8) -> bool {
    if percent == 0 {
        return false;
    }
    let mixed = splitmix64(seed ^ fnv1a(point) ^ (rule_index as u64) << 56 ^ hit);
    mixed % 100 < u64::from(percent)
}

/// Evaluates the named fail point.
///
/// Disabled (the default): returns `false` after a single relaxed
/// atomic load. Armed: consults the active [`Plan`] — a firing
/// [`Action::Panic`] panics here, [`Action::Delay`] sleeps here and
/// returns `false`, and [`Action::Error`] returns `true`, which the
/// caller maps into its own error type (see [`fail_point!`]).
///
/// # Panics
///
/// When an armed rule with [`Action::Panic`] fires — that is the
/// feature.
#[inline]
pub fn inject(point: &str) -> bool {
    // Hot path: a single relaxed load when fault injection is off.
    if FLAG.load(Ordering::Relaxed) == OFF {
        return false;
    }
    inject_cold(point)
}

#[cold]
fn inject_cold(point: &str) -> bool {
    if FLAG.load(Ordering::Relaxed) == UNINIT {
        // First evaluation in the process: adopt the environment plan.
        // configure() may later replace it.
        install(plan_from_env());
        if FLAG.load(Ordering::Relaxed) == OFF {
            return false;
        }
    }
    let fired = {
        let state = state_lock();
        let Some(active) = state.as_ref() else {
            return false;
        };
        let Some((_, counter)) = active.hits.iter().find(|(name, _)| name == point) else {
            return false;
        };
        let hit = counter.fetch_add(1, Ordering::Relaxed);
        let seed = active.plan.seed;
        active
            .plan
            .rules
            .iter()
            .enumerate()
            .filter(|(_, rule)| rule.point == point)
            .find(|(index, rule)| decision(seed, point, *index, hit, rule.percent))
            .map(|(_, rule)| rule.action)
        // The state lock is released before acting: a panic or a sleep
        // must not wedge other points.
    };
    match fired {
        None => false,
        Some(Action::Error) => true,
        Some(Action::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
        Some(Action::Panic) => {
            panic!("faultpoint: injected panic at `{point}`")
        }
    }
}

/// Evaluates a fail point and, if an error was injected, returns
/// `Err($err)` from the enclosing function. Panics and delays happen
/// inside the evaluation itself.
///
/// ```
/// fn save() -> Result<(), String> {
///     faultpoint::fail_point!("doc.save", "injected".to_string());
///     Ok(())
/// }
/// assert!(save().is_ok());
/// ```
#[macro_export]
macro_rules! fail_point {
    ($point:expr, $err:expr) => {
        if $crate::inject($point) {
            return Err($err);
        }
    };
}

/// Scope guard returned by [`configure`]: holds the process-wide
/// configuration lock (serializing chaos tests) and restores the
/// environment-derived plan when dropped.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for FaultGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultGuard").finish_non_exhaustive()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        install(plan_from_env());
    }
}

/// Parses `spec` and installs it as the active plan for the lifetime of
/// the returned [`FaultGuard`]. Guards serialize: a second `configure`
/// (from another test thread) blocks until the first guard drops, so
/// concurrent tests never see each other's faults.
///
/// # Errors
///
/// Returns [`ParseError`] for a malformed spec; nothing is installed.
pub fn configure(spec: &str) -> Result<FaultGuard, ParseError> {
    let plan = Plan::parse(spec)?;
    // A test that panicked while holding the serial lock has already
    // reported its failure; later tests proceed with a clean install.
    let serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    install(Some(plan));
    Ok(FaultGuard { _serial: serial })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let plan = Plan::parse(
            "seed=7; engine.dispatch=30%panic; snapshot.write=error; pool.region=delay(3)",
        )
        .expect("valid spec");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].percent, 30);
        assert_eq!(plan.rules[0].action, Action::Panic);
        assert_eq!(plan.rules[1].percent, 100);
        assert_eq!(plan.rules[1].action, Action::Error);
        assert_eq!(plan.rules[2].action, Action::Delay(3));
        assert!(Plan::parse("").expect("empty is inert").is_inert());
    }

    #[test]
    fn grammar_rejects_malformed_clauses() {
        for bad in [
            "seed=abc",
            "point",
            "=panic",
            "p=150%panic",
            "p=x%panic",
            "p=explode",
            "p=delay(soon)",
        ] {
            assert!(Plan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_respect_percent() {
        // 0% never fires, 100% always fires, and a mid percent fires a
        // plausible fraction — identically on every evaluation order.
        for seed in 1..=5u64 {
            assert!(!decision(seed, "p", 0, 0, 0));
            assert!(decision(seed, "p", 0, 0, 100));
            let fired: usize = (0..1000)
                .filter(|&hit| decision(seed, "p", 0, hit, 30))
                .count();
            assert!(
                (150..450).contains(&fired),
                "seed {seed}: {fired}/1000 at 30%"
            );
            for hit in 0..100 {
                assert_eq!(
                    decision(seed, "p", 0, hit, 30),
                    decision(seed, "p", 0, hit, 30)
                );
            }
        }
    }

    #[test]
    fn error_injection_is_scoped_by_the_guard() {
        assert!(!inject("test.scoped"));
        let guard = configure("seed=1;test.scoped=error").expect("valid spec");
        assert!(inject("test.scoped"));
        assert!(!inject("test.other"), "unarmed points stay inert");
        drop(guard);
        assert!(!inject("test.scoped"));
    }

    #[test]
    fn panic_injection_panics_with_the_point_name() {
        let _guard = configure("seed=1;test.panics=panic").expect("valid spec");
        let result = std::panic::catch_unwind(|| inject("test.panics"));
        let payload = result.expect_err("must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("test.panics"), "message: {message}");
    }

    #[test]
    fn delay_injection_sleeps_then_proceeds() {
        let _guard = configure("seed=1;test.delay=delay(5)").expect("valid spec");
        let started = std::time::Instant::now();
        assert!(!inject("test.delay"));
        assert!(started.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn first_matching_rule_wins_on_stacked_points() {
        let _guard =
            configure("seed=1;test.stacked=0%panic;test.stacked=error").expect("valid spec");
        // The 0% panic rule never fires; the error rule always does.
        for _ in 0..10 {
            assert!(inject("test.stacked"));
        }
    }

    #[test]
    fn fail_point_macro_returns_the_mapped_error() {
        fn op() -> Result<u32, &'static str> {
            fail_point!("test.macro", "injected");
            Ok(42)
        }
        assert_eq!(op(), Ok(42));
        let _guard = configure("seed=1;test.macro=error").expect("valid spec");
        assert_eq!(op(), Err("injected"));
    }
}
