//! Non-uniform distributions built on top of [`WordRng`].

use crate::WordRng;

/// A normal (Gaussian) distribution sampler using the Marsaglia polar
/// method, caching the spare variate.
///
/// # Examples
///
/// ```
/// use prng::{Normal, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let mut normal = Normal::new(0.0, 1.0).expect("valid parameters");
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Creates a sampler with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNormalError`] if `std_dev` is negative or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, InvalidNormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(InvalidNormalError { mean, std_dev });
        }
        Ok(Self {
            mean,
            std_dev,
            spare: None,
        })
    }

    /// Creates the standard normal distribution N(0, 1).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
            spare: None,
        }
    }

    /// Draws one sample.
    pub fn sample<R: WordRng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std_dev * z;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return self.mean + self.std_dev * (u * factor);
            }
        }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidNormalError {
    mean: f64,
    std_dev: f64,
}

impl core::fmt::Display for InvalidNormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid normal distribution parameters: mean {}, std dev {}",
            self.mean, self.std_dev
        )
    }
}

impl std::error::Error for InvalidNormalError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sample_moments_match() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(55);
        let mut normal = Normal::new(2.0, 3.0).expect("valid parameters");
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(56);
        let mut normal = Normal::new(5.0, 0.0).expect("valid parameters");
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn standard_matches_new() {
        let std = Normal::standard();
        assert_eq!(std.mean(), 0.0);
        assert_eq!(std.std_dev(), 1.0);
    }
}
