//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the GraphHD reproduction suite (basis
//! hypervector generation, random graph models, weight initialisation,
//! shuffling for cross-validation, …) draws from this crate so that results
//! are bit-reproducible across platforms and independent of external crate
//! version churn.
//!
//! Two generators are provided:
//!
//! - [`SplitMix64`] — a tiny, fast generator mainly used to expand a single
//!   `u64` seed into independent streams (its intended use per Vigna).
//! - [`Xoshiro256PlusPlus`] — the general-purpose workhorse with good
//!   statistical quality, seeded from a `u64` through SplitMix64.
//!
//! # Examples
//!
//! ```
//! use prng::{WordRng, Xoshiro256PlusPlus};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let coin = rng.bernoulli(0.5);
//! let idx = rng.usize_below(10);
//! assert!(idx < 10);
//! let _ = coin;
//! ```

mod distributions;
mod splitmix;
mod xoshiro;

pub use distributions::{InvalidNormalError, Normal};
pub use splitmix::SplitMix64;
pub use xoshiro::{Xoshiro256PlusPlus, ZeroStateError};

/// A source of uniformly distributed 64-bit words.
///
/// Implemented by both generators in this crate; algorithms that only need
/// raw words (e.g. hypervector generation) accept `&mut impl WordRng` so
/// either generator can drive them.
pub trait WordRng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)` with 53 bits of
    /// precision.
    fn next_f64(&mut self) -> f64 {
        // Take the 53 high bits; dividing by 2^53 yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below requires a positive bound");
        // Lemire (2019): unbiased bounded integers without division in the
        // common path.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a finite value in `[0, 1]`.
    fn bernoulli(&mut self, p: f64) -> bool {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "bernoulli probability must lie in [0, 1], got {p}"
        );
        self.next_f64() < p
    }

    /// Returns a sample from the geometric distribution counting the number
    /// of failures before the first success with success probability `p`.
    ///
    /// Used by the skip-sampling Erdős–Rényi generator: the gap between
    /// consecutive present edges in G(n, p) is geometric.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    fn geometric(&mut self, p: f64) -> u64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric success probability must lie in (0, 1], got {p}"
        );
        if p >= 1.0 {
            return 0;
        }
        // Inverse CDF: floor(ln(1-u) / ln(1-p)). `1 - next_f64()` is in
        // (0, 1], so the logarithm is finite or zero.
        let u = self.next_f64();
        let num = (1.0 - u).ln();
        let den = (1.0 - p).ln();
        let g = (num / den).floor();
        if g < 0.0 {
            0
        } else if g > u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Shuffles a slice in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.usize_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` without replacement, in
    /// random order (partial Fisher–Yates over an index vector).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize>
    where
        Self: Sized,
    {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.usize_below(n - i);
            indices.swap(i, j);
        }
        indices.truncate(k);
        indices
    }
}

/// Mixes a stream index into a base seed, producing an independent seed.
///
/// This is the canonical way the suite derives per-object seeds (one stream
/// per basis hypervector, per fold, per graph, …) from a single experiment
/// seed. The constant is the golden-ratio increment used by SplitMix64, and
/// the result is passed through one SplitMix64 round so that even
/// consecutive `stream` values yield uncorrelated seeds.
///
/// # Examples
///
/// ```
/// let a = prng::mix_seed(7, 0);
/// let b = prng::mix_seed(7, 1);
/// assert_ne!(a, b);
/// ```
#[must_use]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn u64_below_respects_bound() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn u64_below_covers_small_range() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.u64_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn u64_below_zero_panics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let _ = rng.u64_below(0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.bernoulli(0.0));
            assert!(rng.bernoulli(1.0));
        }
    }

    #[test]
    fn bernoulli_mean_is_close() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean} too far from 0.3");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p; // mean number of failures
        assert!(
            (mean - expected).abs() < 0.1,
            "mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_lengths() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let sample = rng.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 50));
    }

    #[test]
    fn mix_seed_streams_differ() {
        let seeds: Vec<u64> = (0..100).map(|s| mix_seed(12345, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn mix_seed_is_deterministic() {
        assert_eq!(mix_seed(1, 2), mix_seed(1, 2));
    }
}
