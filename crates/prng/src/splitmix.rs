//! SplitMix64 — Vigna's seed-expansion generator.

use crate::WordRng;

/// The SplitMix64 generator.
///
/// A 64-bit state generator with a simple additive state transition and a
/// strong output mixing function. It passes BigCrush but its main role here
/// is expanding a single `u64` seed into the 256-bit state of
/// [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus) and deriving
/// per-stream seeds via [`mix_seed`](crate::mix_seed).
///
/// # Examples
///
/// ```
/// use prng::{SplitMix64, WordRng};
///
/// let mut sm = SplitMix64::new(0);
/// assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed, including zero, is
    /// valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the current internal state (useful for checkpointing).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl WordRng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: the first outputs for seed 0, as published with
    /// the xoshiro reference code (splitmix64.c by Sebastiano Vigna).
    #[test]
    fn known_answer_seed_zero() {
        let mut sm = SplitMix64::new(0);
        let expected = [
            0xE220_A839_7B1D_CDAFu64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn deterministic_replay() {
        let mut a = SplitMix64::new(99);
        let first: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let mut b = SplitMix64::new(99);
        let second: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
    }
}
