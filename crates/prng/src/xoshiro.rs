//! xoshiro256++ — the suite's general-purpose generator.

use crate::{SplitMix64, WordRng};

/// The xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality and
/// extremely fast. Seeded from a single `u64` through [`SplitMix64`], per
/// the authors' recommendation.
///
/// # Examples
///
/// ```
/// use prng::{WordRng, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let x = rng.next_u64();
/// let y = rng.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding `seed` through SplitMix64.
    ///
    /// All seeds (including zero) produce a valid, non-degenerate state.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator from a full 256-bit state.
    ///
    /// # Errors
    ///
    /// Returns an error if the state is all zeros, which is the one
    /// forbidden state of the xoshiro family.
    pub fn from_state(s: [u64; 4]) -> Result<Self, ZeroStateError> {
        if s == [0, 0, 0, 0] {
            Err(ZeroStateError)
        } else {
            Ok(Self { s })
        }
    }

    /// Equivalent to 2^128 calls to `next_u64`; used to create
    /// non-overlapping parallel streams from one seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_9759_90E0_E9BC,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for jump_word in JUMP {
            for bit in 0..64 {
                if (jump_word & (1u64 << bit)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl WordRng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Error returned by [`Xoshiro256PlusPlus::from_state`] for the forbidden
/// all-zero state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroStateError;

impl core::fmt::Display for ZeroStateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "xoshiro256++ state must not be all zeros")
    }
}

impl std::error::Error for ZeroStateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_rejected() {
        assert_eq!(
            Xoshiro256PlusPlus::from_state([0; 4]).unwrap_err(),
            ZeroStateError
        );
    }

    #[test]
    fn nonzero_state_accepted() {
        let rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]).expect("valid state");
        assert_eq!(rng.s, [1, 2, 3, 4]);
    }

    /// Known-answer test against the reference implementation
    /// (xoshiro256plusplus.c): with state {1, 2, 3, 4} the first outputs
    /// are 41943041, 58720359, 3588806011781223, 3591011842654386, ...
    #[test]
    fn known_answer_reference_state() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]).expect("valid state");
        let expected = [
            41_943_041u64,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_changes_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = a.clone();
        b.jump();
        let head_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let head_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(head_a, head_b);
    }

    #[test]
    fn rough_bit_balance() {
        // Each bit position should be set roughly half the time.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(123);
        let n = 4096;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let w = rng.next_u64();
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += ((w >> bit) & 1) as u32;
            }
        }
        for (bit, &count) in counts.iter().enumerate() {
            let frac = f64::from(count) / f64::from(n);
            assert!(
                (frac - 0.5).abs() < 0.05,
                "bit {bit} set fraction {frac} is unbalanced"
            );
        }
    }
}
