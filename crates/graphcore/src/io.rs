//! TUDataset text-format I/O.
//!
//! The TUDataset collection (Morris et al., 2020) distributes each dataset
//! `DS` as plain-text files:
//!
//! - `DS_A.txt` — one directed arc per line as `u, v`, 1-based, with both
//!   directions of every undirected edge present;
//! - `DS_graph_indicator.txt` — line *i* holds the (1-based) graph id of
//!   node *i*;
//! - `DS_graph_labels.txt` — line *g* holds the class label of graph *g*.
//!
//! The evaluation machine for this reproduction has no network access, so
//! experiments run on synthetic surrogates (see `datasets::surrogate`), but
//! this module lets real downloaded files drop in unchanged and is
//! round-trip tested.

use crate::{Graph, GraphBuilder};
use std::fmt::Write as _;
use std::path::Path;

/// A parsed TUDataset: one [`Graph`] per sample plus class labels.
///
/// `labels[i]` is a dense class index in `0..num_classes`; the original
/// file values (which may be arbitrary integers such as −1/+1) are kept in
/// `original_labels`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuData {
    /// The graphs, in file order.
    pub graphs: Vec<Graph>,
    /// Dense class indices in `0..num_classes`, aligned with `graphs`.
    pub labels: Vec<u32>,
    /// The label values as they appeared in `DS_graph_labels.txt`.
    pub original_labels: Vec<i64>,
}

impl TuData {
    /// Number of distinct classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.labels
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1)
    }
}

/// Errors produced when parsing TUDataset files.
#[derive(Debug)]
#[non_exhaustive]
pub enum TuError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A malformed line, with file kind and 1-based line number.
    Parse {
        /// Which of the three files was malformed.
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Cross-file inconsistency (e.g. an arc referencing a missing node).
    Inconsistent {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl core::fmt::Display for TuError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TuError::Io(e) => write!(f, "i/o error reading tudataset files: {e}"),
            TuError::Parse { file, line, reason } => {
                write!(f, "malformed {file} at line {line}: {reason}")
            }
            TuError::Inconsistent { reason } => {
                write!(f, "inconsistent tudataset files: {reason}")
            }
        }
    }
}

impl std::error::Error for TuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TuError {
    fn from(e: std::io::Error) -> Self {
        TuError::Io(e)
    }
}

/// Parses a TUDataset from in-memory file contents.
///
/// # Errors
///
/// Returns [`TuError::Parse`] for malformed lines and
/// [`TuError::Inconsistent`] for cross-file disagreements.
///
/// # Examples
///
/// ```
/// let adjacency = "1, 2\n2, 1\n3, 4\n4, 3\n";
/// let indicator = "1\n1\n2\n2\n";
/// let labels = "1\n-1\n";
/// let data = graphcore::io::parse_tudataset(adjacency, indicator, labels)?;
/// assert_eq!(data.graphs.len(), 2);
/// assert_eq!(data.num_classes(), 2);
/// # Ok::<(), graphcore::io::TuError>(())
/// ```
pub fn parse_tudataset(
    adjacency: &str,
    graph_indicator: &str,
    graph_labels: &str,
) -> Result<TuData, TuError> {
    // --- graph indicator: node -> graph id -------------------------------
    let mut node_graph: Vec<usize> = Vec::new();
    for (idx, line) in non_empty_lines(graph_indicator) {
        let gid: usize = line.trim().parse().map_err(|_| TuError::Parse {
            file: "graph_indicator",
            line: idx,
            reason: format!("expected a graph id, got {line:?}"),
        })?;
        if gid == 0 {
            return Err(TuError::Parse {
                file: "graph_indicator",
                line: idx,
                reason: "graph ids are 1-based; got 0".to_string(),
            });
        }
        node_graph.push(gid - 1);
    }
    let num_graphs = node_graph.iter().copied().max().map_or(0, |m| m + 1);

    // --- labels -----------------------------------------------------------
    let mut original_labels: Vec<i64> = Vec::new();
    for (idx, line) in non_empty_lines(graph_labels) {
        let label: i64 = line.trim().parse().map_err(|_| TuError::Parse {
            file: "graph_labels",
            line: idx,
            reason: format!("expected an integer label, got {line:?}"),
        })?;
        original_labels.push(label);
    }
    if original_labels.len() != num_graphs {
        return Err(TuError::Inconsistent {
            reason: format!(
                "{} graph labels but {} graphs referenced by the indicator",
                original_labels.len(),
                num_graphs
            ),
        });
    }

    // Dense re-labeling: sorted distinct original labels -> 0..k.
    let mut distinct: Vec<i64> = original_labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let labels: Vec<u32> = original_labels
        .iter()
        .map(|l| distinct.binary_search(l).expect("label present") as u32)
        .collect();

    // --- per-graph vertex numbering ---------------------------------------
    let mut graph_sizes = vec![0usize; num_graphs];
    let mut local_index: Vec<u32> = Vec::with_capacity(node_graph.len());
    for &g in &node_graph {
        local_index.push(graph_sizes[g] as u32);
        graph_sizes[g] += 1;
    }
    let mut builders: Vec<GraphBuilder> =
        graph_sizes.iter().map(|&s| GraphBuilder::new(s)).collect();

    // --- adjacency ---------------------------------------------------------
    for (idx, line) in non_empty_lines(adjacency) {
        let mut parts = line.split(',');
        let parse_endpoint = |part: Option<&str>| -> Result<usize, TuError> {
            let text = part.ok_or(TuError::Parse {
                file: "A",
                line: idx,
                reason: "expected two comma-separated node ids".to_string(),
            })?;
            let value: usize = text.trim().parse().map_err(|_| TuError::Parse {
                file: "A",
                line: idx,
                reason: format!("expected a node id, got {text:?}"),
            })?;
            if value == 0 {
                return Err(TuError::Parse {
                    file: "A",
                    line: idx,
                    reason: "node ids are 1-based; got 0".to_string(),
                });
            }
            Ok(value - 1)
        };
        let u = parse_endpoint(parts.next())?;
        let v = parse_endpoint(parts.next())?;
        for node in [u, v] {
            if node >= node_graph.len() {
                return Err(TuError::Inconsistent {
                    reason: format!(
                        "arc references node {} but only {} nodes exist",
                        node + 1,
                        node_graph.len()
                    ),
                });
            }
        }
        let gu = node_graph[u];
        let gv = node_graph[v];
        if gu != gv {
            return Err(TuError::Inconsistent {
                reason: format!(
                    "arc ({}, {}) crosses graphs {} and {}",
                    u + 1,
                    v + 1,
                    gu + 1,
                    gv + 1
                ),
            });
        }
        builders[gu]
            .try_add_edge(local_index[u], local_index[v])
            .expect("local indices are in range by construction");
    }

    Ok(TuData {
        graphs: builders.into_iter().map(GraphBuilder::build).collect(),
        labels,
        original_labels,
    })
}

/// Loads `DS_A.txt`, `DS_graph_indicator.txt` and `DS_graph_labels.txt`
/// from `dir` for dataset `name`.
///
/// # Errors
///
/// Returns [`TuError::Io`] if a file cannot be read, or any parse error
/// from [`parse_tudataset`].
pub fn load_tudataset(dir: &Path, name: &str) -> Result<TuData, TuError> {
    let read = |suffix: &str| -> Result<String, TuError> {
        Ok(std::fs::read_to_string(
            dir.join(format!("{name}_{suffix}.txt")),
        )?)
    };
    parse_tudataset(
        &read("A")?,
        &read("graph_indicator")?,
        &read("graph_labels")?,
    )
}

/// Serialises graphs and labels to the three TUDataset file contents
/// (adjacency, graph indicator, graph labels), with both arc directions
/// written as real TUDataset files do.
#[must_use]
pub fn to_tudataset_strings(graphs: &[Graph], labels: &[i64]) -> (String, String, String) {
    let mut adjacency = String::new();
    let mut indicator = String::new();
    let mut label_text = String::new();
    let mut offset = 0usize;
    for (g_idx, graph) in graphs.iter().enumerate() {
        for _ in 0..graph.vertex_count() {
            let _ = writeln!(indicator, "{}", g_idx + 1);
        }
        for (u, v) in graph.edges() {
            let gu = offset + u as usize + 1;
            let gv = offset + v as usize + 1;
            let _ = writeln!(adjacency, "{gu}, {gv}");
            let _ = writeln!(adjacency, "{gv}, {gu}");
        }
        offset += graph.vertex_count();
    }
    for label in labels {
        let _ = writeln!(label_text, "{label}");
    }
    (adjacency, indicator, label_text)
}

/// Writes a dataset to `dir` in TUDataset layout.
///
/// # Errors
///
/// Returns [`TuError::Io`] if the directory cannot be created or a file
/// cannot be written.
pub fn save_tudataset(
    dir: &Path,
    name: &str,
    graphs: &[Graph],
    labels: &[i64],
) -> Result<(), TuError> {
    std::fs::create_dir_all(dir)?;
    let (a, ind, lab) = to_tudataset_strings(graphs, labels);
    std::fs::write(dir.join(format!("{name}_A.txt")), a)?;
    std::fs::write(dir.join(format!("{name}_graph_indicator.txt")), ind)?;
    std::fs::write(dir.join(format!("{name}_graph_labels.txt")), lab)?;
    Ok(())
}

fn non_empty_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use prng::Xoshiro256PlusPlus;

    #[test]
    fn parse_minimal_dataset() {
        let data = parse_tudataset("1, 2\n2, 1\n", "1\n1\n2\n", "7\n9\n").unwrap();
        assert_eq!(data.graphs.len(), 2);
        assert_eq!(data.graphs[0].edge_count(), 1);
        assert_eq!(data.graphs[1].vertex_count(), 1);
        assert_eq!(data.labels, vec![0, 1]);
        assert_eq!(data.original_labels, vec![7, 9]);
        assert_eq!(data.num_classes(), 2);
    }

    #[test]
    fn labels_are_densified_in_sorted_order() {
        let data = parse_tudataset("", "1\n2\n3\n", "1\n-1\n1\n").unwrap();
        assert_eq!(data.labels, vec![1, 0, 1]);
    }

    #[test]
    fn rejects_zero_based_ids() {
        assert!(matches!(
            parse_tudataset("0, 1\n", "1\n1\n", "1\n"),
            Err(TuError::Parse { file: "A", .. })
        ));
        assert!(matches!(
            parse_tudataset("", "0\n", "1\n"),
            Err(TuError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_cross_graph_arcs() {
        assert!(matches!(
            parse_tudataset("1, 2\n", "1\n2\n", "1\n1\n"),
            Err(TuError::Inconsistent { .. })
        ));
    }

    #[test]
    fn rejects_label_count_mismatch() {
        assert!(matches!(
            parse_tudataset("", "1\n1\n", "1\n2\n"),
            Err(TuError::Inconsistent { .. })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_tudataset("a, b\n", "1\n1\n", "1\n").is_err());
        assert!(parse_tudataset("1\n", "1\n", "1\n").is_err());
        assert!(parse_tudataset("", "1\n", "x\n").is_err());
    }

    #[test]
    fn roundtrip_through_strings() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
        let graphs: Vec<Graph> = (0..5)
            .map(|i| generate::erdos_renyi(10 + i, 0.3, &mut rng).unwrap())
            .collect();
        let labels: Vec<i64> = vec![1, -1, 1, -1, 1];
        let (a, ind, lab) = to_tudataset_strings(&graphs, &labels);
        let parsed = parse_tudataset(&a, &ind, &lab).unwrap();
        assert_eq!(parsed.graphs, graphs);
        assert_eq!(parsed.original_labels, labels);
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = std::env::temp_dir().join("graphcore_tu_roundtrip_test");
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(32);
        let graphs: Vec<Graph> = (0..3)
            .map(|_| generate::erdos_renyi(8, 0.4, &mut rng).unwrap())
            .collect();
        let labels = vec![0i64, 1, 0];
        save_tudataset(&dir, "TEST", &graphs, &labels).unwrap();
        let loaded = load_tudataset(&dir, "TEST").unwrap();
        assert_eq!(loaded.graphs, graphs);
        assert_eq!(loaded.original_labels, labels);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn isolated_trailing_vertices_preserved() {
        // Graph 2 has two vertices and no edges.
        let data = parse_tudataset("1, 2\n2, 1\n", "1\n1\n2\n2\n", "1\n1\n").unwrap();
        assert_eq!(data.graphs[1].vertex_count(), 2);
        assert_eq!(data.graphs[1].edge_count(), 0);
    }
}
