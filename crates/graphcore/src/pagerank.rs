//! PageRank centrality and rank extraction (paper Section IV-C).
//!
//! GraphHD uses PageRank to give vertices *topology-derived identifiers*:
//! vertices of different graphs that occupy the same centrality rank share
//! a basis hypervector. The paper fixes the iteration count at 10
//! ("the accuracy of GraphHD has then plateaued").

use crate::Graph;

/// Configuration for the PageRank power iteration.
///
/// # Examples
///
/// ```
/// use graphcore::PageRankConfig;
///
/// let config = PageRankConfig::default();
/// assert_eq!(config.iterations, 10); // the paper's fixed setting
/// assert!((config.damping - 0.85).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor d of the classic formulation; 0.85 is the value from
    /// Brin & Page used by essentially every implementation.
    pub damping: f64,
    /// Number of power iterations. The paper fixes 10 for all experiments.
    pub iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            iterations: 10,
        }
    }
}

impl PageRankConfig {
    /// Creates a config with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `damping` is not a finite value in `[0, 1]`.
    #[must_use]
    pub fn new(damping: f64, iterations: usize) -> Self {
        assert!(
            damping.is_finite() && (0.0..=1.0).contains(&damping),
            "damping must lie in [0, 1], got {damping}"
        );
        Self {
            damping,
            iterations,
        }
    }
}

/// Computes PageRank scores by power iteration on an undirected graph.
///
/// Every undirected edge acts as two directed links. Dangling (isolated)
/// vertices redistribute their mass uniformly, so the returned scores
/// always sum to 1 for non-empty graphs. Returns an empty vector for the
/// empty graph.
///
/// # Examples
///
/// ```
/// use graphcore::{pagerank, Graph, PageRankConfig};
///
/// let path = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let scores = pagerank(&path, &PageRankConfig::default());
/// // The middle vertex of a path is the most central.
/// assert!(scores[1] > scores[0] && scores[1] > scores[2]);
/// # Ok::<(), graphcore::GraphError>(())
/// ```
#[must_use]
pub fn pagerank(graph: &Graph, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..config.iterations {
        let mut dangling_mass = 0.0f64;
        next.fill(0.0);
        for v in 0..n as u32 {
            let deg = graph.degree(v);
            let r = rank[v as usize];
            if deg == 0 {
                dangling_mass += r;
            } else {
                let share = r / deg as f64;
                for &u in graph.neighbors(v) {
                    next[u as usize] += share;
                }
            }
        }
        let teleport = (1.0 - config.damping) * uniform;
        let dangling_share = config.damping * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r = teleport + config.damping * *r + dangling_share;
        }
        core::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Degree centrality: degree / (n − 1), the simplest structural identifier
/// and the ablation alternative to PageRank in the suite's experiments.
///
/// Returns all zeros for graphs with fewer than two vertices.
#[must_use]
pub fn degree_centrality(graph: &Graph) -> Vec<f64> {
    let n = graph.vertex_count();
    if n < 2 {
        return vec![0.0; n];
    }
    (0..n as u32)
        .map(|v| graph.degree(v) as f64 / (n - 1) as f64)
        .collect()
}

/// Converts centrality scores into dense ranks: rank 0 is the most central
/// vertex. Ties are broken deterministically by vertex id (ascending), the
/// convention this suite adopts since the paper does not specify one.
///
/// Scores are ordered by [`f64::total_cmp`], so the result is a
/// deterministic total order even for pathological score vectors:
/// positive NaN sorts above +∞ (taking the *best* ranks), negative NaN
/// below −∞, and −0.0 below +0.0 — instead of depending on sort
/// internals the way a `partial_cmp`-with-fallback comparison would.
///
/// # Examples
///
/// ```
/// let ranks = graphcore::ranks_by_score(&[0.2, 0.5, 0.3]);
/// assert_eq!(ranks, vec![2, 0, 1]);
/// ```
#[must_use]
pub fn ranks_by_score(scores: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0u32; scores.len()];
    for (rank, &vertex) in order.iter().enumerate() {
        ranks[vertex as usize] = rank as u32;
    }
    ranks
}

/// Convenience: PageRank scores of `graph` converted to ranks.
#[must_use]
pub fn pagerank_ranks(graph: &Graph, config: &PageRankConfig) -> Vec<u32> {
    ranks_by_score(&pagerank(graph, config))
}

/// [`pagerank_ranks`] over a whole batch of graphs, parallelised on the
/// process-wide [`parallel::Pool::global`]. Each graph's power iteration
/// is independent, so the result is identical to mapping
/// [`pagerank_ranks`] serially — only faster.
///
/// # Examples
///
/// ```
/// use graphcore::{generate, pagerank_ranks, pagerank_ranks_batch, PageRankConfig};
///
/// let graphs: Vec<_> = (3..9).map(generate::star).collect();
/// let config = PageRankConfig::default();
/// let batch = pagerank_ranks_batch(&graphs, &config);
/// for (graph, ranks) in graphs.iter().zip(&batch) {
///     assert_eq!(ranks, &pagerank_ranks(graph, &config));
/// }
/// ```
#[must_use]
pub fn pagerank_ranks_batch(graphs: &[Graph], config: &PageRankConfig) -> Vec<Vec<u32>> {
    pagerank_ranks_batch_with_pool(graphs, config, parallel::Pool::global())
}

/// [`pagerank_ranks_batch`] on an explicit pool (deterministic thread
/// counts for benchmarking).
#[must_use]
pub fn pagerank_ranks_batch_with_pool(
    graphs: &[Graph],
    config: &PageRankConfig,
    pool: &parallel::Pool,
) -> Vec<Vec<u32>> {
    pool.par_map(graphs, |graph| pagerank_ranks(graph, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use prng::Xoshiro256PlusPlus;

    fn config() -> PageRankConfig {
        PageRankConfig::default()
    }

    #[test]
    fn empty_graph_yields_empty_scores() {
        assert!(pagerank(&Graph::empty(0), &config()).is_empty());
    }

    #[test]
    fn scores_sum_to_one() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let g = generate::erdos_renyi(50, 0.1, &mut rng).unwrap();
        let sum: f64 = pagerank(&g, &config()).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn scores_sum_to_one_with_isolated_vertices() {
        // Two vertices are isolated: dangling handling must conserve mass.
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]).unwrap();
        let scores = pagerank(&g, &config());
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn uniform_on_vertex_transitive_graphs() {
        // On a cycle every vertex is equivalent: scores must be equal.
        let g = generate::cycle(8);
        let scores = pagerank(&g, &config());
        for &s in &scores {
            assert!((s - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn star_center_dominates() {
        let g = generate::star(10);
        let scores = pagerank(&g, &config());
        for leaf in 1..10 {
            assert!(scores[0] > scores[leaf]);
        }
        let ranks = ranks_by_score(&scores);
        assert_eq!(ranks[0], 0);
    }

    #[test]
    fn damping_zero_is_uniform() {
        let g = generate::star(5);
        let scores = pagerank(&g, &PageRankConfig::new(0.0, 10));
        for &s in &scores {
            assert!((s - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_iterations_returns_uniform() {
        let g = generate::star(4);
        let scores = pagerank(&g, &PageRankConfig::new(0.85, 0));
        for &s in &scores {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "damping must lie in [0, 1]")]
    fn invalid_damping_panics() {
        let _ = PageRankConfig::new(1.5, 10);
    }

    #[test]
    fn degree_centrality_matches_degrees() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let c = degree_centrality(&g);
        assert!((c[0] - 1.0).abs() < 1e-12);
        for &leaf in &c[1..4] {
            assert!((leaf - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_centrality_degenerate_graphs() {
        assert!(degree_centrality(&Graph::empty(0)).is_empty());
        assert_eq!(degree_centrality(&Graph::empty(1)), vec![0.0]);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let ranks = ranks_by_score(&[0.1, 0.9, 0.5, 0.5, 0.2]);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        // Tie between vertices 2 and 3 resolved by id.
        assert!(ranks[2] < ranks[3]);
        assert_eq!(ranks[1], 0);
    }

    #[test]
    fn ranks_of_empty_scores() {
        assert!(ranks_by_score(&[]).is_empty());
    }

    #[test]
    fn ranks_are_total_even_with_nan_and_signed_zero() {
        // Regression: `partial_cmp(..).unwrap_or(Equal)` made NaN compare
        // equal to *everything*, so the ranks depended on sort internals.
        // Under total_cmp the order is pinned: NaN > +inf > 1.0 > +0.0 >
        // -0.0 > -1.0, with index-ascending tie-breaks.
        let scores = [f64::NAN, 1.0, -0.0, 0.0, f64::INFINITY, -1.0, f64::NAN];
        let ranks = ranks_by_score(&scores);
        assert_eq!(ranks, vec![0, 3, 5, 4, 2, 6, 1]);
        // Determinism: identical inputs yield identical ranks.
        assert_eq!(ranks, ranks_by_score(&scores));
        // And the result stays a permutation.
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..scores.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn pagerank_ranks_convenience_agrees() {
        let g = generate::star(6);
        let scores = pagerank(&g, &config());
        assert_eq!(pagerank_ranks(&g, &config()), ranks_by_score(&scores));
    }

    #[test]
    fn ranks_batch_matches_serial_mapping() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        let mut graphs: Vec<Graph> = (0..37)
            .map(|i| generate::erdos_renyi(3 + i % 25, 0.2, &mut rng).unwrap())
            .collect();
        graphs.push(Graph::empty(0)); // degenerate member of the batch
        let serial: Vec<Vec<u32>> = graphs
            .iter()
            .map(|g| pagerank_ranks(g, &config()))
            .collect();
        assert_eq!(pagerank_ranks_batch(&graphs, &config()), serial);
        for threads in [1usize, 2, 5] {
            let pool = parallel::Pool::with_threads(threads);
            assert_eq!(
                pagerank_ranks_batch_with_pool(&graphs, &config(), &pool),
                serial,
                "threads {threads}"
            );
        }
        assert!(pagerank_ranks_batch(&[], &config()).is_empty());
    }

    #[test]
    fn more_iterations_converge() {
        // Power iteration should approach a fixed point: iterations 50 and
        // 51 agree much more closely than 1 and 2.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
        let g = generate::erdos_renyi(30, 0.2, &mut rng).unwrap();
        let diff =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let r1 = pagerank(&g, &PageRankConfig::new(0.85, 1));
        let r2 = pagerank(&g, &PageRankConfig::new(0.85, 2));
        let r50 = pagerank(&g, &PageRankConfig::new(0.85, 50));
        let r51 = pagerank(&g, &PageRankConfig::new(0.85, 51));
        assert!(diff(&r50, &r51) < diff(&r1, &r2) / 10.0);
    }
}
