//! Vertex-similarity features (the VS-Graph signal).
//!
//! The VS-Graph follow-up to GraphHD replaces centrality ranking with a
//! *vertex similarity* score: how strongly a vertex's neighborhood
//! overlaps with the neighborhoods of its own neighbors. Vertices inside
//! dense, clustered regions score high; bridges and leaves score low.
//! This module computes that per-vertex feature deterministically so the
//! encoder layer can rank and quantize it.

use crate::Graph;

/// Per-vertex neighborhood similarity: the mean Jaccard overlap between
/// `N(v)` and `N(u)` over all neighbors `u` of `v`.
///
/// For each neighbor `u`, the overlap is
/// `|N(v) ∩ N(u)| / |N(v) ∪ N(u)|`; the score of `v` averages this over
/// its neighbors. Isolated vertices score `0.0`. Every score lies in
/// `[0, 1)` on simple graphs (a vertex is never its own neighbor, so the
/// union always strictly exceeds the intersection).
///
/// The computation is a pure function of the graph — neighbor lists are
/// iterated in CSR (sorted) order and the summation order is fixed, so
/// scores are bit-reproducible across runs and machines, which the
/// encoder layer's determinism contract requires.
///
/// # Examples
///
/// ```
/// use graphcore::{similarity, Graph};
///
/// // Triangle + pendant: the triangle vertices share neighbors, the
/// // pendant shares none.
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])?;
/// let scores = similarity::neighborhood_similarity(&g);
/// assert!(scores[0] > scores[3]);
/// assert_eq!(scores[3], 0.0); // leaf: its one neighbor shares nothing
/// # Ok::<(), graphcore::GraphError>(())
/// ```
#[must_use]
pub fn neighborhood_similarity(graph: &Graph) -> Vec<f64> {
    let n = graph.vertex_count();
    let mut scores = vec![0.0f64; n];
    for v in 0..n as u32 {
        let nv = graph.neighbors(v);
        if nv.is_empty() {
            continue;
        }
        let mut total = 0.0f64;
        for &u in nv {
            let inter = graph.common_neighbors(v, u);
            let union = nv.len() + graph.degree(u) - inter;
            // `union` >= 1: u is a neighbor of v, so deg(u) >= 1.
            total += inter as f64 / union as f64;
        }
        scores[v as usize] = total / nv.len() as f64;
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use prng::Xoshiro256PlusPlus;

    #[test]
    fn scores_are_in_unit_interval_and_sized_to_the_graph() {
        for g in [
            generate::complete(9),
            generate::path(9),
            generate::star(9),
            Graph::empty(4),
        ] {
            let scores = neighborhood_similarity(&g);
            assert_eq!(scores.len(), g.vertex_count());
            for &s in &scores {
                assert!((0.0..1.0).contains(&s), "score {s}");
            }
        }
    }

    #[test]
    fn complete_graph_vertices_all_agree() {
        // K_n is vertex-transitive: every vertex must score identically,
        // and the shared score is (n-2)/n (n-1 neighbors each contribute
        // (n-2)/n overlap).
        let n = 7usize;
        let scores = neighborhood_similarity(&generate::complete(n));
        let expected = (n as f64 - 2.0) / n as f64;
        for &s in &scores {
            assert!((s - expected).abs() < 1e-12, "score {s} != {expected}");
        }
    }

    #[test]
    fn triangle_free_graphs_score_zero() {
        // In a star or a path, no two adjacent vertices share a neighbor.
        for g in [generate::star(8), generate::path(8)] {
            for s in neighborhood_similarity(&g) {
                assert_eq!(s, 0.0);
            }
        }
    }

    #[test]
    fn isolated_vertices_score_zero() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2)]).expect("valid edges");
        let scores = neighborhood_similarity(&g);
        assert_eq!(scores[3], 0.0);
        assert_eq!(scores[4], 0.0);
        assert!(scores[0] > 0.0);
    }

    #[test]
    fn deterministic_across_calls() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
        let g = generate::erdos_renyi(40, 0.2, &mut rng).expect("valid parameters");
        assert_eq!(neighborhood_similarity(&g), neighborhood_similarity(&g));
    }

    #[test]
    fn clustered_regions_outscore_bridges() {
        // Two triangles joined by a bridge vertex chain: triangle members
        // outscore the bridge.
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2), // triangle A
                (2, 3),
                (3, 4), // bridge path
                (4, 5),
                (4, 6),
                (5, 6), // triangle B
            ],
        )
        .expect("valid edges");
        let scores = neighborhood_similarity(&g);
        assert!(scores[0] > scores[3]);
        assert!(scores[5] > scores[3]);
    }
}
