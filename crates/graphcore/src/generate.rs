//! Random and deterministic graph generators.
//!
//! The Erdős–Rényi model is the one the paper uses for its scalability
//! study (Section V-B: "synthetic datasets with 2 classes evenly split over
//! 100 graphs ... using the Erdős–Rényi random graph model" with edge
//! probability 0.05). The stochastic block model and Barabási–Albert model
//! are used by `datasets` to give the TUDataset surrogates class-dependent
//! structure.

use crate::{Graph, GraphBuilder, GraphError};
use prng::WordRng;

fn check_probability(p: f64) -> Result<(), GraphError> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        Err(GraphError::InvalidProbability { value: p })
    } else {
        Ok(())
    }
}

/// Samples G(n, p): each of the n·(n−1)/2 possible edges is present
/// independently with probability `p`.
///
/// Uses the Batagelj–Brandes skip-sampling algorithm, which runs in
/// O(n + m) expected time instead of O(n²) — the property that makes the
/// Fig. 4 scaling study cheap to regenerate.
///
/// # Errors
///
/// Returns [`GraphError::InvalidProbability`] if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use prng::Xoshiro256PlusPlus;
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let g = graphcore::generate::erdos_renyi(100, 0.05, &mut rng)?;
/// assert_eq!(g.vertex_count(), 100);
/// # Ok::<(), graphcore::GraphError>(())
/// ```
pub fn erdos_renyi<R: WordRng>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    check_probability(p)?;
    let mut builder = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return Ok(builder.build());
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                builder.add_edge(u, v);
            }
        }
        return Ok(builder.build());
    }
    // Batagelj & Brandes (2005): walk the strictly-lower-triangular pair
    // space (v, w) with w < v, skipping geometric gaps between edges.
    let mut v: u64 = 1;
    let mut w: i64 = -1;
    let n64 = n as u64;
    while v < n64 {
        let gap = rng.geometric(p) as i64;
        w += 1 + gap;
        while v < n64 && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n64 {
            builder.add_edge(v as u32, w as u32);
        }
    }
    Ok(builder.build())
}

/// Samples a stochastic block model: vertices are partitioned into blocks
/// of the given sizes, and an edge between a vertex in block `a` and one in
/// block `b` appears independently with probability `probs[a][b]`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidBlockMatrix`] if `probs` is not a symmetric
/// `k×k` matrix for `k = sizes.len()`, or [`GraphError::InvalidProbability`]
/// if any entry is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use prng::Xoshiro256PlusPlus;
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
/// // Two dense communities, sparsely interconnected.
/// let g = graphcore::generate::stochastic_block_model(
///     &[20, 20],
///     &[vec![0.3, 0.01], vec![0.01, 0.3]],
///     &mut rng,
/// )?;
/// assert_eq!(g.vertex_count(), 40);
/// # Ok::<(), graphcore::GraphError>(())
/// ```
pub fn stochastic_block_model<R: WordRng>(
    sizes: &[usize],
    probs: &[Vec<f64>],
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let k = sizes.len();
    if probs.len() != k || probs.iter().any(|row| row.len() != k) {
        return Err(GraphError::InvalidBlockMatrix {
            reason: format!("expected a {k}x{k} matrix"),
        });
    }
    for (a, row) in probs.iter().enumerate() {
        for (b, &p) in row.iter().enumerate() {
            check_probability(p)?;
            if (p - probs[b][a]).abs() > 1e-12 {
                return Err(GraphError::InvalidBlockMatrix {
                    reason: format!("matrix not symmetric at ({a}, {b})"),
                });
            }
        }
    }
    let n: usize = sizes.iter().sum();
    let mut starts = Vec::with_capacity(k + 1);
    starts.push(0usize);
    for &s in sizes {
        starts.push(starts.last().copied().expect("non-empty") + s);
    }
    let mut builder = GraphBuilder::new(n);
    for a in 0..k {
        for b in a..k {
            let p = probs[a][b];
            if p == 0.0 {
                continue;
            }
            if a == b {
                sample_block_diagonal(&mut builder, starts[a], sizes[a], p, rng);
            } else {
                sample_block_rectangle(
                    &mut builder,
                    starts[a],
                    sizes[a],
                    starts[b],
                    sizes[b],
                    p,
                    rng,
                );
            }
        }
    }
    Ok(builder.build())
}

/// Skip-samples the pairs within one block (triangular index space).
fn sample_block_diagonal<R: WordRng>(
    builder: &mut GraphBuilder,
    start: usize,
    size: usize,
    p: f64,
    rng: &mut R,
) {
    if size < 2 {
        return;
    }
    if p >= 1.0 {
        for i in 0..size {
            for j in (i + 1)..size {
                builder.add_edge((start + i) as u32, (start + j) as u32);
            }
        }
        return;
    }
    let mut v: u64 = 1;
    let mut w: i64 = -1;
    let n64 = size as u64;
    while v < n64 {
        let gap = rng.geometric(p) as i64;
        w += 1 + gap;
        while v < n64 && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n64 {
            builder.add_edge((start + v as usize) as u32, (start + w as usize) as u32);
        }
    }
}

/// Skip-samples the pairs across two distinct blocks (rectangular space).
fn sample_block_rectangle<R: WordRng>(
    builder: &mut GraphBuilder,
    start_a: usize,
    size_a: usize,
    start_b: usize,
    size_b: usize,
    p: f64,
    rng: &mut R,
) {
    let total = size_a as u64 * size_b as u64;
    if total == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..size_a {
            for j in 0..size_b {
                builder.add_edge((start_a + i) as u32, (start_b + j) as u32);
            }
        }
        return;
    }
    let mut idx: i64 = -1;
    loop {
        let gap = rng.geometric(p) as i64;
        idx += 1 + gap;
        if idx as u64 >= total {
            break;
        }
        let i = (idx as u64 / size_b as u64) as usize;
        let j = (idx as u64 % size_b as u64) as usize;
        builder.add_edge((start_a + i) as u32, (start_b + j) as u32);
    }
}

/// Samples a Barabási–Albert preferential-attachment graph: starting from
/// a path of `attach` vertices, each new vertex attaches to `attach`
/// distinct existing vertices chosen proportionally to their degree.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `attach == 0` or
/// `attach >= n`.
pub fn barabasi_albert<R: WordRng>(
    n: usize,
    attach: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if attach == 0 || attach >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("attachment count {attach} must satisfy 0 < attach < n (n = {n})"),
        });
    }
    let mut builder = GraphBuilder::new(n);
    // `targets` holds each vertex once per unit of degree; sampling an
    // element uniformly implements preferential attachment.
    let mut targets: Vec<u32> = Vec::new();
    // Seed graph: a path over the first `attach` vertices (any connected
    // seed works; a path keeps the degree distribution mild).
    for v in 1..attach as u32 {
        builder.add_edge(v - 1, v);
        targets.push(v - 1);
        targets.push(v);
    }
    if attach == 1 {
        targets.push(0);
    }
    for v in attach as u32..n as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(attach);
        let mut guard = 0usize;
        while chosen.len() < attach {
            let candidate = targets[rng.usize_below(targets.len())];
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            guard += 1;
            if guard > 64 * attach {
                // Degenerate corner (all mass on few vertices): fall back
                // to the lowest-id vertices not yet chosen.
                for u in 0..v {
                    if chosen.len() == attach {
                        break;
                    }
                    if !chosen.contains(&u) {
                        chosen.push(u);
                    }
                }
            }
        }
        for &u in &chosen {
            builder.add_edge(v, u);
            targets.push(u);
            targets.push(v);
        }
    }
    Ok(builder.build())
}

/// Adds `count` random triangles to a copy of `graph`: each triangle picks
/// three distinct vertices and inserts the three edges. Used by dataset
/// surrogates to plant motif-level class signal.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if the graph has fewer than
/// three vertices and `count > 0`.
pub fn with_planted_triangles<R: WordRng>(
    graph: &Graph,
    count: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if count == 0 {
        return Ok(graph.clone());
    }
    let n = graph.vertex_count();
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cannot plant triangles in a graph with {n} vertices"),
        });
    }
    let mut builder = GraphBuilder::from_graph(graph);
    for _ in 0..count {
        let ids = rng.sample_indices(n, 3);
        builder.add_edge(ids[0] as u32, ids[1] as u32);
        builder.add_edge(ids[1] as u32, ids[2] as u32);
        builder.add_edge(ids[0] as u32, ids[2] as u32);
    }
    Ok(builder.build())
}

/// Returns an isomorphic copy of `graph` with vertex ids randomly
/// permuted.
///
/// Synthetic generators emit structured vertex orderings (preferential
/// attachment adds hubs first, block models lay communities out
/// contiguously), which real-world data does not exhibit; dataset
/// surrogates shuffle ids so that no method can exploit the generator's
/// ordering.
#[must_use]
pub fn shuffle_vertex_ids<R: WordRng>(graph: &Graph, rng: &mut R) -> Graph {
    let n = graph.vertex_count();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    let mut builder = GraphBuilder::new(n);
    for (u, v) in graph.edges() {
        builder.add_edge(perm[u as usize], perm[v as usize]);
    }
    builder.build()
}

/// The complete graph K_n.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// A star with center 0 and `n − 1` leaves.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for v in 1..n as u32 {
        builder.add_edge(0, v);
    }
    builder.build()
}

/// The path 0 − 1 − … − (n−1).
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for v in 1..n as u32 {
        builder.add_edge(v - 1, v);
    }
    builder.build()
}

/// The cycle on `n` vertices (requires `n >= 3` to actually close; smaller
/// values degenerate to a path).
#[must_use]
pub fn cycle(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for v in 1..n as u32 {
        builder.add_edge(v - 1, v);
    }
    if n >= 3 {
        builder.add_edge(n as u32 - 1, 0);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prng::Xoshiro256PlusPlus;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn er_p_zero_is_empty() {
        let g = erdos_renyi(50, 0.0, &mut rng(1)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn er_p_one_is_complete() {
        let g = erdos_renyi(20, 1.0, &mut rng(2)).unwrap();
        assert_eq!(g.edge_count(), 20 * 19 / 2);
    }

    #[test]
    fn er_rejects_bad_probability() {
        assert!(matches!(
            erdos_renyi(10, 1.5, &mut rng(3)),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            erdos_renyi(10, f64::NAN, &mut rng(3)),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn er_edge_count_matches_expectation() {
        // E[m] = p * C(n, 2); with n=200, p=0.05: 995. Allow 4 sigma.
        let n = 200;
        let p = 0.05;
        let pairs = (n * (n - 1) / 2) as f64;
        let expected = p * pairs;
        let sigma = (pairs * p * (1.0 - p)).sqrt();
        let mut total = 0f64;
        let reps = 20;
        for s in 0..reps {
            total += erdos_renyi(n, p, &mut rng(100 + s)).unwrap().edge_count() as f64;
        }
        let mean = total / reps as f64;
        assert!(
            (mean - expected).abs() < 4.0 * sigma / (reps as f64).sqrt(),
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn er_small_n_does_not_panic() {
        for n in 0..4 {
            let g = erdos_renyi(n, 0.5, &mut rng(9)).unwrap();
            assert_eq!(g.vertex_count(), n);
        }
    }

    #[test]
    fn er_is_deterministic_per_seed() {
        let a = erdos_renyi(60, 0.1, &mut rng(42)).unwrap();
        let b = erdos_renyi(60, 0.1, &mut rng(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sbm_respects_block_structure() {
        let g = stochastic_block_model(&[30, 30], &[vec![0.5, 0.0], vec![0.0, 0.5]], &mut rng(5))
            .unwrap();
        // No cross-block edges.
        for (u, v) in g.edges() {
            assert_eq!(u < 30, v < 30, "edge ({u}, {v}) crosses blocks");
        }
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn sbm_cross_block_only() {
        let g = stochastic_block_model(&[10, 15], &[vec![0.0, 1.0], vec![1.0, 0.0]], &mut rng(6))
            .unwrap();
        assert_eq!(g.edge_count(), 10 * 15);
    }

    #[test]
    fn sbm_validates_matrix() {
        assert!(matches!(
            stochastic_block_model(&[5, 5], &[vec![0.1]], &mut rng(7)),
            Err(GraphError::InvalidBlockMatrix { .. })
        ));
        assert!(matches!(
            stochastic_block_model(&[5, 5], &[vec![0.1, 0.2], vec![0.3, 0.1]], &mut rng(7)),
            Err(GraphError::InvalidBlockMatrix { .. })
        ));
    }

    #[test]
    fn ba_degrees_and_connectivity() {
        let g = barabasi_albert(100, 3, &mut rng(8)).unwrap();
        assert_eq!(g.vertex_count(), 100);
        // Every non-seed vertex has degree >= attach.
        for v in 3..100u32 {
            assert!(g.degree(v) >= 3, "vertex {v} degree {}", g.degree(v));
        }
        assert_eq!(g.isolated_count(), 0);
    }

    #[test]
    fn ba_rejects_bad_attach() {
        assert!(barabasi_albert(5, 0, &mut rng(9)).is_err());
        assert!(barabasi_albert(5, 5, &mut rng(9)).is_err());
    }

    #[test]
    fn ba_attach_one_is_a_tree() {
        let g = barabasi_albert(50, 1, &mut rng(10)).unwrap();
        assert_eq!(g.edge_count(), 49);
    }

    #[test]
    fn planted_triangles_increase_count() {
        let base = erdos_renyi(40, 0.02, &mut rng(11)).unwrap();
        let before = base.triangle_count();
        let planted = with_planted_triangles(&base, 10, &mut rng(12)).unwrap();
        assert!(planted.triangle_count() > before);
        assert!(planted.edge_count() >= base.edge_count());
    }

    #[test]
    fn planted_triangles_zero_is_identity() {
        let base = erdos_renyi(10, 0.3, &mut rng(13)).unwrap();
        assert_eq!(
            with_planted_triangles(&base, 0, &mut rng(13)).unwrap(),
            base
        );
    }

    #[test]
    fn planted_triangles_tiny_graph_errors() {
        let base = Graph::empty(2);
        assert!(with_planted_triangles(&base, 1, &mut rng(14)).is_err());
    }

    #[test]
    fn shuffle_preserves_structure() {
        let g = barabasi_albert(30, 2, &mut rng(20)).unwrap();
        let shuffled = shuffle_vertex_ids(&g, &mut rng(21));
        assert_eq!(shuffled.vertex_count(), g.vertex_count());
        assert_eq!(shuffled.edge_count(), g.edge_count());
        let mut a: Vec<usize> = (0..30).map(|v| g.degree(v)).collect();
        let mut b: Vec<usize> = (0..30).map(|v| shuffled.degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "degree multiset is invariant");
        assert_eq!(shuffled.triangle_count(), g.triangle_count());
    }

    #[test]
    fn deterministic_toys() {
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(cycle(2).edge_count(), 1); // degenerates to a path
        assert_eq!(complete(0).vertex_count(), 0);
    }
}
