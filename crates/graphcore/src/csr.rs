//! Compressed sparse row storage for undirected simple graphs.

use crate::GraphError;

/// An immutable undirected simple graph in CSR form.
///
/// Vertices are `0..vertex_count()` as `u32`. Self-loops and parallel edges
/// are excluded by construction; each undirected edge is stored in both
/// adjacency lists, which are kept sorted for binary-search membership
/// queries.
///
/// # Examples
///
/// ```
/// use graphcore::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 3));
/// assert!(!g.has_edge(0, 2));
/// # Ok::<(), graphcore::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge iterator.
    ///
    /// Self-loops and duplicate edges are silently dropped, matching the
    /// simple-graph semantics of the TUDataset benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.try_add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// A graph with `n` vertices and no edges.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        assert!(v < self.vertex_count(), "vertex {v} out of range");
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbor list of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        assert!(v < self.vertex_count(), "vertex {v} out of range");
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.vertex_count() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The maximum vertex degree, or 0 for an empty vertex set.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Fraction of vertex pairs connected by an edge (0 for n < 2).
    #[must_use]
    pub fn density(&self) -> f64 {
        let n = self.vertex_count();
        if n < 2 {
            return 0.0;
        }
        let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
        self.edge_count() as f64 / pairs
    }

    /// Number of vertices with degree zero.
    #[must_use]
    pub fn isolated_count(&self) -> usize {
        (0..self.vertex_count() as u32)
            .filter(|&v| self.degree(v) == 0)
            .count()
    }

    /// Collects every undirected edge once as `(u, v)` with `u < v`.
    #[must_use]
    pub fn to_edge_list(&self) -> Vec<(u32, u32)> {
        self.edges().collect()
    }

    /// Counts the common neighbors of `u` and `v` (the size of
    /// N(u) ∩ N(v)) by merging the two sorted adjacency lists.
    ///
    /// This is the structural edge weight used by the edge-weighted
    /// encoder strategy: an edge closing many triangles carries more
    /// evidence about local topology than a bridge.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    #[must_use]
    pub fn common_neighbors(&self, u: u32, v: u32) -> usize {
        let nu = self.neighbors(u);
        let nv = self.neighbors(v);
        let (mut i, mut j) = (0usize, 0usize);
        let mut count = 0usize;
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Counts the triangles in the graph (each counted once).
    ///
    /// Uses the standard neighbor-intersection method over sorted
    /// adjacency lists; used by tests and by surrogate-dataset diagnostics.
    #[must_use]
    pub fn triangle_count(&self) -> usize {
        let mut count = 0usize;
        for (u, v) in self.edges() {
            // Intersect neighbor lists above v to count each triangle once.
            let nu = self.neighbors(u);
            let nv = self.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    core::cmp::Ordering::Less => i += 1,
                    core::cmp::Ordering::Greater => j += 1,
                    core::cmp::Ordering::Equal => {
                        if nu[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        count
    }
}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use graphcore::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(1, 0); // duplicate: ignored
/// b.add_edge(2, 2); // self-loop: ignored
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder pre-populated with the edges of `graph`.
    #[must_use]
    pub fn from_graph(graph: &Graph) -> Self {
        Self {
            n: graph.vertex_count(),
            edges: graph.to_edge_list(),
        }
    }

    /// The number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored;
    /// duplicates are removed at [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is `>= n`.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.try_add_edge(u, v).expect("edge endpoint out of range");
    }

    /// Adds the undirected edge `{u, v}`, validating endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn try_add_edge(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        for w in [u, v] {
            if w as usize >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: w,
                    vertex_count: self.n,
                });
            }
        }
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
        Ok(())
    }

    /// Number of edges added so far (duplicates still counted).
    #[must_use]
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the graph: sorts, deduplicates and builds CSR arrays.
    #[must_use]
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degrees = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        for d in &degrees {
            offsets.push(offsets.last().copied().expect("non-empty") + d);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; offsets[self.n]];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Adjacency lists are filled in increasing order of the opposite
        // endpoint for the `u`-side but interleaved for the `v`-side; sort
        // each list to restore the invariant.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.isolated_count(), 5);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn common_neighbors_counts_shared_adjacency() {
        // K4: every pair of adjacent vertices shares the other two.
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .expect("valid edges");
        assert_eq!(k4.common_neighbors(0, 1), 2);
        // Path 0-1-2: the endpoints share the middle, adjacent pairs none.
        let path = Graph::from_edges(3, [(0, 1), (1, 2)]).expect("valid edges");
        assert_eq!(path.common_neighbors(0, 2), 1);
        assert_eq!(path.common_neighbors(0, 1), 0);
        // Symmetric, and zero against an isolated vertex.
        let star = Graph::from_edges(4, [(0, 1), (0, 2)]).expect("valid edges");
        assert_eq!(star.common_neighbors(1, 2), star.common_neighbors(2, 1));
        assert_eq!(star.common_neighbors(1, 2), 1);
        assert_eq!(star.common_neighbors(0, 3), 0);
    }

    #[test]
    fn zero_vertex_graph_is_fine() {
        let g = Graph::empty(0);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn from_edges_validates_range() {
        let out = Graph::from_edges(3, [(0, 5)]);
        assert!(matches!(
            out,
            Err(GraphError::VertexOutOfRange {
                vertex: 5,
                vertex_count: 3
            })
        ));
    }

    #[test]
    fn duplicates_and_loops_are_dropped() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric() {
        let g = Graph::from_edges(5, [(3, 1), (3, 0), (3, 4), (1, 0)]).unwrap();
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "adjacency must be symmetric");
        }
    }

    #[test]
    fn edges_yields_each_once_in_order() {
        let g = Graph::from_edges(4, [(2, 3), (0, 1), (1, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_sums_to_twice_edges() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let total: usize = (0..6).map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn triangle_count_on_known_graphs() {
        // Triangle
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(tri.triangle_count(), 1);
        // K4 has 4 triangles
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(k4.triangle_count(), 4);
        // Path has none
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(path.triangle_count(), 0);
    }

    #[test]
    fn builder_from_graph_roundtrips() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let again = GraphBuilder::from_graph(&g).build();
        assert_eq!(g, again);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert!((k4.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degree_out_of_range_panics() {
        let g = Graph::empty(2);
        let _ = g.degree(2);
    }
}
