//! Graph substrate for the GraphHD reproduction suite.
//!
//! Provides everything the paper's pipeline needs from a graph library:
//!
//! - [`Graph`] — a compact CSR (compressed sparse row) representation of
//!   undirected simple graphs, plus [`GraphBuilder`] for incremental
//!   construction.
//! - [`generate`] — random graph models: the Erdős–Rényi G(n, p) model used
//!   by the paper's scalability study (Section V-B), stochastic block
//!   models and Barabási–Albert graphs used by the dataset surrogates, and
//!   deterministic toy graphs for tests.
//! - [`pagerank`] — PageRank power iteration with the paper's fixed
//!   iteration count (10), plus degree centrality and deterministic
//!   score-to-rank conversion (Section IV-C).
//! - [`similarity`] — per-vertex neighborhood-similarity features, the
//!   signal behind the VS-Graph-style encoder strategy.
//! - [`io`] — the TUDataset text format (`DS_A.txt`,
//!   `DS_graph_indicator.txt`, `DS_graph_labels.txt`) reader and writer, so
//!   real benchmark files drop into the suite unchanged.
//!
//! # Examples
//!
//! ```
//! use graphcore::{pagerank, Graph, PageRankConfig};
//!
//! // A star: vertex 0 is clearly the most central.
//! let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])?;
//! let scores = pagerank(&star, &PageRankConfig::default());
//! let ranks = graphcore::ranks_by_score(&scores);
//! assert_eq!(ranks[0], 0); // rank 0 = most central
//! # Ok::<(), graphcore::GraphError>(())
//! ```

mod csr;
mod error;
pub mod generate;
pub mod io;
mod pagerank;
pub mod similarity;

pub use csr::{Graph, GraphBuilder};
pub use error::GraphError;
pub use pagerank::{
    degree_centrality, pagerank, pagerank_ranks, pagerank_ranks_batch,
    pagerank_ranks_batch_with_pool, ranks_by_score, PageRankConfig,
};
