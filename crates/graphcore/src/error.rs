//! Error types for graph construction and generation.

/// Errors produced by graph construction and the random generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a vertex `>= vertex_count`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        vertex_count: usize,
    },
    /// A probability parameter was outside `[0, 1]` or non-finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A stochastic block model was given an inconsistent probability
    /// matrix (non-square, asymmetric, or wrong size).
    InvalidBlockMatrix {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A generator parameter was structurally invalid (e.g. attachment
    /// count exceeding the vertex budget in Barabási–Albert).
    InvalidParameter {
        /// Human-readable description of the invalid parameter.
        reason: String,
    },
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {vertex_count} vertices"
            ),
            GraphError::InvalidProbability { value } => {
                write!(f, "probability must lie in [0, 1], got {value}")
            }
            GraphError::InvalidBlockMatrix { reason } => {
                write!(f, "invalid block probability matrix: {reason}")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            vertex_count: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<GraphError>();
    }
}
