//! Property-based tests for the graph substrate.

use graphcore::{generate, pagerank, ranks_by_score, Graph, PageRankConfig};
use prng::Xoshiro256PlusPlus;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0.0f64..=0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        generate::erdos_renyi(n, p, &mut rng).expect("valid parameters")
    })
}

proptest! {
    #[test]
    fn csr_adjacency_is_symmetric_and_sorted(g in arb_graph()) {
        for v in 0..g.vertex_count() as u32 {
            let neighbors = g.neighbors(v);
            prop_assert!(neighbors.windows(2).all(|w| w[0] < w[1]));
            for &u in neighbors {
                prop_assert!(g.has_edge(u, v));
                prop_assert_ne!(u, v, "self-loop found");
            }
        }
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = (0..g.vertex_count() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        let rebuilt = Graph::from_edges(g.vertex_count(), g.to_edge_list())
            .expect("edges are in range");
        prop_assert_eq!(rebuilt, g);
    }

    #[test]
    fn pagerank_sums_to_one_and_is_positive(g in arb_graph()) {
        let scores = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {}", sum);
        prop_assert!(scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn ranks_are_always_a_permutation(g in arb_graph()) {
        let ranks = ranks_by_score(&pagerank(&g, &PageRankConfig::default()));
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..g.vertex_count() as u32).collect();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn higher_degree_never_hurts_pagerank_on_stars(extra in 1usize..20) {
        // Star center with `extra` leaves always outranks every leaf.
        let g = generate::star(extra + 1);
        let ranks = ranks_by_score(&pagerank(&g, &PageRankConfig::default()));
        prop_assert_eq!(ranks[0], 0);
    }

    #[test]
    fn er_density_tracks_p(n in 30usize..80, p in 0.05f64..0.5, seed in 0u64..1000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let g = generate::erdos_renyi(n, p, &mut rng).expect("valid parameters");
        // Loose statistical bound: density within ±0.25 absolute of p.
        prop_assert!((g.density() - p).abs() < 0.25);
    }

    #[test]
    fn tudataset_roundtrip(seed in any::<u64>(), count in 1usize..6) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let graphs: Vec<Graph> = (0..count)
            .map(|i| {
                generate::erdos_renyi(3 + i * 2, 0.4, &mut rng).expect("valid parameters")
            })
            .collect();
        let labels: Vec<i64> = (0..count as i64).map(|i| i % 2).collect();
        let (a, ind, lab) = graphcore::io::to_tudataset_strings(&graphs, &labels);
        let parsed = graphcore::io::parse_tudataset(&a, &ind, &lab).expect("roundtrip parses");
        prop_assert_eq!(parsed.graphs, graphs);
        prop_assert_eq!(parsed.original_labels, labels);
    }
}
