//! The TUDataset reader against small in-repo fixtures.
//!
//! `tests/fixtures/FIXT` is a hand-written three-graph dataset in the
//! exact on-disk layout real TUDataset downloads use; `BROKEN` is its
//! corrupted sibling. Every malformed input must surface as a typed
//! [`TuError`], never a panic.

use graphcore::io::{load_tudataset, parse_tudataset, TuError};
use std::path::Path;

fn fixture_dir(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn loads_fixture_from_disk() {
    let data = load_tudataset(&fixture_dir("FIXT"), "FIXT").expect("fixture parses");
    assert_eq!(data.graphs.len(), 3);
    assert_eq!(data.num_classes(), 2);

    // Graph 1: a triangle.
    assert_eq!(data.graphs[0].vertex_count(), 3);
    assert_eq!(data.graphs[0].edge_count(), 3);
    // Graph 2: a single edge.
    assert_eq!(data.graphs[1].vertex_count(), 2);
    assert_eq!(data.graphs[1].edge_count(), 1);
    // Graph 3: two isolated vertices — trailing edgeless graphs must not
    // be dropped.
    assert_eq!(data.graphs[2].vertex_count(), 2);
    assert_eq!(data.graphs[2].edge_count(), 0);

    // Labels −1/1 densify in sorted order to 0/1.
    assert_eq!(data.original_labels, vec![1, -1, 1]);
    assert_eq!(data.labels, vec![1, 0, 1]);
}

#[test]
fn missing_labels_file_is_a_typed_io_error() {
    let err = load_tudataset(&fixture_dir("BROKEN"), "BROKEN").expect_err("labels file is absent");
    assert!(matches!(err, TuError::Io(_)), "got {err:?}");
    // The Display impl names the failure for operators.
    assert!(err.to_string().contains("i/o error"));
}

#[test]
fn malformed_edge_list_is_a_typed_parse_error() {
    let fixture = std::fs::read_to_string(fixture_dir("BROKEN").join("BROKEN_A.txt"))
        .expect("fixture exists");
    // Line 2 of the broken fixture is "2 1" — missing the comma.
    let err = parse_tudataset(&fixture, "1\n1\n", "1\n").expect_err("malformed A file");
    match err {
        TuError::Parse { file, line, .. } => {
            assert_eq!(file, "A");
            assert_eq!(line, 2);
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn zero_based_node_ids_are_rejected_as_parse_errors() {
    // TUDataset node ids are 1-based; a 0 is the classic off-by-one.
    let err = parse_tudataset("0, 1\n", "1\n1\n", "1\n").expect_err("0 is not a node id");
    match err {
        TuError::Parse { file, reason, .. } => {
            assert_eq!(file, "A");
            assert!(reason.contains("1-based"), "reason: {reason}");
        }
        other => panic!("expected Parse error, got {other:?}"),
    }

    let err = parse_tudataset("", "0\n", "1\n").expect_err("0 is not a graph id");
    assert!(matches!(
        err,
        TuError::Parse {
            file: "graph_indicator",
            ..
        }
    ));
}

#[test]
fn missing_graph_labels_are_an_inconsistency_error() {
    // Two graphs referenced by the indicator, only one label.
    let err =
        parse_tudataset("1, 2\n2, 1\n", "1\n1\n2\n", "1\n").expect_err("label count mismatch");
    match err {
        TuError::Inconsistent { reason } => {
            assert!(reason.contains("1 graph labels"), "reason: {reason}");
        }
        other => panic!("expected Inconsistent error, got {other:?}"),
    }
}

#[test]
fn out_of_range_and_cross_graph_arcs_are_inconsistency_errors() {
    // Arc references node 9 of a 2-node dataset.
    let err = parse_tudataset("1, 9\n", "1\n1\n", "1\n").expect_err("node out of range");
    assert!(matches!(err, TuError::Inconsistent { .. }), "got {err:?}");

    // Arc connects nodes of two different graphs.
    let err = parse_tudataset("1, 2\n", "1\n2\n", "1\n1\n").expect_err("cross-graph arc");
    assert!(matches!(err, TuError::Inconsistent { .. }), "got {err:?}");
}

#[test]
fn garbage_never_panics() {
    // A grab-bag of malformed inputs: each must return Err, not panic.
    let cases: [(&str, &str, &str); 6] = [
        ("a, b\n", "1\n", "1\n"),
        ("1\n", "1\n", "1\n"),
        ("1, 2, 3\n", "1\n1\n", "1\n"), // trailing field is ignored by split
        ("", "x\n", "1\n"),
        ("", "1\n", "x\n"),
        ("1, 1\n", "½\n", "1\n"),
    ];
    for (a, ind, lab) in cases {
        let result = parse_tudataset(a, ind, lab);
        if let Ok(parsed) = &result {
            // The only acceptable Ok is the lenient extra-field case.
            assert_eq!(
                parsed.graphs.len(),
                1,
                "unexpected Ok for ({a:?}, {ind:?}, {lab:?})"
            );
        }
    }
}
