//! Finite-difference validation of every backward rule, including the
//! full GIN forward pass. This is the safety net that lets the suite
//! trust its from-scratch autograd engine.

use graphcore::generate;
use std::rc::Rc;
use tinynn::autograd::{AdjCsr, Graph as Tape, ParamId, ParamSet};
use tinynn::Tensor;

/// Numerically estimates d(loss)/d(param scalar) by central differences
/// and compares against the analytic gradient.
fn check_gradients<F>(params: &ParamSet, build_loss: F, tolerance: f64)
where
    F: Fn(&ParamSet, &mut Tape) -> tinynn::autograd::NodeId,
{
    let mut tape = Tape::new();
    let loss = build_loss(params, &mut tape);
    let analytic = tape.backward(loss, params.len());

    let epsilon = 1e-5;
    #[allow(clippy::needless_range_loop)] // index drives ParamId reconstruction
    for index in 0..params.len() {
        let shape = {
            let id = ParamId::from_index(index);
            params.value(id).shape()
        };
        for r in 0..shape.0 {
            for c in 0..shape.1 {
                let id = ParamId::from_index(index);
                let mut plus = params.clone();
                let v = plus.value(id).get(r, c);
                plus.value_mut(id).set(r, c, v + epsilon);
                let mut minus = params.clone();
                minus.value_mut(id).set(r, c, v - epsilon);

                let mut tape_p = Tape::new();
                let lp = build_loss(&plus, &mut tape_p);
                let mut tape_m = Tape::new();
                let lm = build_loss(&minus, &mut tape_m);
                let numeric =
                    (tape_p.value(lp).get(0, 0) - tape_m.value(lm).get(0, 0)) / (2.0 * epsilon);

                let analytic_value = analytic[index].as_ref().map_or(0.0, |g| g.get(r, c));
                let scale = numeric.abs().max(analytic_value.abs()).max(1.0);
                assert!(
                    (numeric - analytic_value).abs() / scale < tolerance,
                    "param {index} entry ({r},{c}): numeric {numeric} vs analytic {analytic_value}"
                );
            }
        }
    }
}

/// `ParamId` construction helper for the test (the public API hands out
/// ids from `ParamSet::add`; tests reconstruct them by index order).
trait ParamIdExt {
    fn from_index(index: usize) -> ParamId;
}

impl ParamIdExt for ParamId {
    fn from_index(index: usize) -> ParamId {
        // ParamSet hands out ids sequentially from zero; rebuild by adding
        // to a scratch set.
        let mut scratch = ParamSet::new();
        let mut id = scratch.add(Tensor::zeros(1, 1));
        for _ in 0..index {
            id = scratch.add(Tensor::zeros(1, 1));
        }
        id
    }
}

fn tensor(rows: usize, cols: usize, values: &[f64]) -> Tensor {
    Tensor::from_vec(rows, cols, values.to_vec()).expect("valid shape")
}

#[test]
fn gradcheck_matmul_bias_relu_chain() {
    let mut params = ParamSet::new();
    let _w = params.add(tensor(3, 2, &[0.5, -0.3, 0.8, 0.1, -0.6, 0.9]));
    let _b = params.add(tensor(1, 2, &[0.05, -0.2]));
    check_gradients(
        &params,
        |p, tape| {
            let x = tape.input(tensor(2, 3, &[1.0, 2.0, -1.0, 0.5, -0.4, 1.5]));
            let w = tape.param(p, ParamId::from_index(0));
            let b = tape.param(p, ParamId::from_index(1));
            let z = tape.matmul(x, w);
            let z = tape.add_bias(z, b);
            let z = tape.relu(z);
            tape.mean_cross_entropy(z, Rc::new(vec![0u32, 1]))
        },
        1e-5,
    );
}

#[test]
fn gradcheck_scale_one_plus_and_add() {
    let mut params = ParamSet::new();
    let _eps = params.add(tensor(1, 1, &[0.3]));
    let _w = params.add(tensor(2, 2, &[0.2, -0.1, 0.4, 0.7]));
    check_gradients(
        &params,
        |p, tape| {
            let x = tape.input(tensor(2, 2, &[1.0, -2.0, 0.5, 1.5]));
            let eps = tape.param(p, ParamId::from_index(0));
            let w = tape.param(p, ParamId::from_index(1));
            let scaled = tape.scale_one_plus(x, eps);
            let both = tape.add(scaled, x);
            let z = tape.matmul(both, w);
            tape.mean_cross_entropy(z, Rc::new(vec![1u32, 0]))
        },
        1e-5,
    );
}

#[test]
fn gradcheck_spmm_segment_sum_concat() {
    let g1 = generate::path(3);
    let g2 = generate::cycle(4);
    let adj = Rc::new(AdjCsr::from_graphs(&[&g1, &g2]));
    let segments = Rc::new(vec![0usize, 0, 0, 1, 1, 1, 1]);

    let mut params = ParamSet::new();
    let _w = params.add(tensor(2, 3, &[0.3, -0.5, 0.2, 0.8, 0.1, -0.4]));
    let _w_out = params.add(tensor(5, 2, &[0.1; 10]));
    check_gradients(
        &params,
        |p, tape| {
            let x = tape.input(tensor(
                7,
                2,
                &[
                    1.0, 0.5, -0.2, 0.8, 0.3, -0.6, 0.9, 0.1, -0.7, 0.4, 0.2, -0.3, 0.6, 0.7,
                ],
            ));
            let w = tape.param(p, ParamId::from_index(0));
            let w_out = tape.param(p, ParamId::from_index(1));
            let msg = tape.spmm(Rc::clone(&adj), x);
            let h = tape.matmul(msg, w); // 7x3
            let h = tape.relu(h);
            let pooled_h = tape.segment_sum(h, Rc::clone(&segments), 2); // 2x3
            let pooled_x = tape.segment_sum(x, Rc::clone(&segments), 2); // 2x2
            let readout = tape.concat_cols(pooled_x, pooled_h); // 2x5
            let logits = tape.matmul(readout, w_out); // 2x2
            tape.mean_cross_entropy(logits, Rc::new(vec![0u32, 1]))
        },
        1e-5,
    );
}

#[test]
fn gradcheck_full_gin_architecture() {
    // The exact forward pass GinClassifier builds: (1+eps)X + AX -> MLP ->
    // pool -> JK concat -> linear head -> CE.
    let g1 = generate::star(4);
    let g2 = generate::complete(3);
    let adj = Rc::new(AdjCsr::from_graphs(&[&g1, &g2]));
    let segments = Rc::new(vec![0usize, 0, 0, 0, 1, 1, 1]);
    let hidden = 4;

    // Constants are chosen irregular (no exact zeros, no symmetry) so that
    // no pre-ReLU activation lands on the kink, where central differences
    // and subgradients legitimately disagree.
    let mut params = ParamSet::new();
    let _w1 = params.add(tensor(
        2,
        hidden,
        &[0.31, -0.23, 0.52, 0.17, -0.41, 0.63, 0.29, -0.13],
    ));
    let _b1 = params.add(tensor(1, hidden, &[0.011, -0.027, 0.033, 0.041]));
    let _w2 = params.add(
        Tensor::from_vec(
            hidden,
            hidden,
            (0..hidden * hidden)
                .map(|i| 0.097 * ((i % 5) as f64 - 1.71))
                .collect(),
        )
        .expect("valid shape"),
    );
    let _b2 = params.add(tensor(1, hidden, &[0.023, 0.051, -0.047, 0.019]));
    let _eps = params.add(tensor(1, 1, &[0.11]));
    let _w_out = params.add(
        Tensor::from_vec(
            2 + hidden,
            2,
            (0..(2 + hidden) * 2)
                .map(|i| 0.2 - 0.05 * i as f64)
                .collect(),
        )
        .expect("valid shape"),
    );
    let _b_out = params.add(tensor(1, 2, &[0.0, 0.0]));

    check_gradients(
        &params,
        |p, tape| {
            let x = tape.input(tensor(
                7,
                2,
                &[
                    1.0, 0.9, 1.0, 0.3, 1.0, 0.3, 1.0, 0.3, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
                ],
            ));
            let w1 = tape.param(p, ParamId::from_index(0));
            let b1 = tape.param(p, ParamId::from_index(1));
            let w2 = tape.param(p, ParamId::from_index(2));
            let b2 = tape.param(p, ParamId::from_index(3));
            let eps = tape.param(p, ParamId::from_index(4));
            let w_out = tape.param(p, ParamId::from_index(5));
            let b_out = tape.param(p, ParamId::from_index(6));

            let msg = tape.spmm(Rc::clone(&adj), x);
            let self_term = tape.scale_one_plus(x, eps);
            let combined = tape.add(self_term, msg);
            let z1 = tape.matmul(combined, w1);
            let z1 = tape.add_bias(z1, b1);
            let z1 = tape.relu(z1);
            let z2 = tape.matmul(z1, w2);
            let z2 = tape.add_bias(z2, b2);
            let h = tape.relu(z2);
            let pooled = tape.segment_sum(h, Rc::clone(&segments), 2);
            let pooled_x = tape.segment_sum(x, Rc::clone(&segments), 2);
            let readout = tape.concat_cols(pooled_x, pooled);
            let logits = tape.matmul(readout, w_out);
            let logits = tape.add_bias(logits, b_out);
            tape.mean_cross_entropy(logits, Rc::new(vec![0u32, 1]))
        },
        1e-4,
    );
}
