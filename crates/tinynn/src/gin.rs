//! Graph Isomorphism Network classifiers (GIN-ε and GIN-ε-JK).
//!
//! The paper's two GNN baselines (Section V-A2) share a fixed
//! architecture: **one GIN layer with 32 units**, the smallest network the
//! authors found to match GraphHD's accuracy. A GIN layer computes
//!
//! ```text
//! h_v = MLP((1 + ε) · x_v + Σ_{u ∈ N(v)} x_u)
//! ```
//!
//! with learnable ε (Xu et al., ICLR 2019), followed by sum-pool readout
//! and a linear classifier head. The JK variant (jumping knowledge, Xu et
//! al., ICML 2018) concatenates the readouts of the input layer and the
//! GIN layer before the head. Training uses Adam (lr 0.01), a
//! reduce-on-plateau schedule (patience 5, factor 0.5, floor 1e−6) and
//! mini-batches of 128 graphs, exactly as in the paper.
//!
//! Since the evaluation protocol strips vertex labels, node features are
//! structural: a constant 1, optionally augmented with normalized degree.

use crate::autograd::{AdjCsr, Graph as Tape, NodeId, ParamId, ParamSet};
use crate::optim::{Adam, PlateauScheduler};
use crate::Tensor;
use graphcore::Graph;
use prng::{mix_seed, Normal, WordRng, Xoshiro256PlusPlus};
use std::rc::Rc;

/// Hyperparameters for [`GinClassifier`]. Defaults reproduce the paper's
/// setup.
#[derive(Debug, Clone, PartialEq)]
pub struct GinConfig {
    /// Hidden width of the GIN MLP (paper: 32).
    pub hidden: usize,
    /// Maximum training epochs (the paper trains to plateau; with the
    /// floor-stop rule below, 100 is effectively "until converged").
    pub epochs: usize,
    /// Mini-batch size in graphs (paper: 128).
    pub batch_size: usize,
    /// Initial Adam learning rate (paper: 0.01).
    pub learning_rate: f64,
    /// Use the jumping-knowledge readout (GIN-ε-JK) instead of plain
    /// GIN-ε.
    pub jumping_knowledge: bool,
    /// Append normalized degree to the constant node feature.
    pub degree_feature: bool,
    /// Plateau patience in epochs (paper: 5).
    pub patience: usize,
    /// Learning-rate decay factor (paper: 0.5).
    pub decay: f64,
    /// Learning-rate floor (paper: 1e−6).
    pub min_learning_rate: f64,
    /// Stop early once the learning rate has hit the floor and the loss
    /// has stalled for another `patience` epochs.
    pub stop_at_floor: bool,
    /// Seed for weight initialisation and batch shuffling.
    pub seed: u64,
}

impl Default for GinConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 100,
            batch_size: 128,
            learning_rate: 0.01,
            jumping_knowledge: false,
            degree_feature: true,
            patience: 5,
            decay: 0.5,
            min_learning_rate: 1e-6,
            stop_at_floor: true,
            seed: 0x61_4E,
        }
    }
}

impl GinConfig {
    /// The paper's GIN-ε-JK variant.
    #[must_use]
    pub fn jumping() -> Self {
        Self {
            jumping_knowledge: true,
            ..Self::default()
        }
    }
}

struct GinModel {
    params: ParamSet,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    epsilon: ParamId,
    w_out: ParamId,
    b_out: ParamId,
    input_dim: usize,
    num_classes: usize,
}

/// A trainable GIN-ε / GIN-ε-JK graph classifier.
///
/// See the [module documentation](self) for the architecture; a usage
/// example lives in the [crate documentation](crate).
pub struct GinClassifier {
    config: GinConfig,
    model: Option<GinModel>,
}

impl core::fmt::Debug for GinClassifier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GinClassifier")
            .field("config", &self.config)
            .field("trained", &self.model.is_some())
            .finish()
    }
}

impl GinClassifier {
    /// Creates an untrained classifier.
    #[must_use]
    pub fn new(config: GinConfig) -> Self {
        Self {
            config,
            model: None,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &GinConfig {
        &self.config
    }

    /// Human-readable name matching the paper's method labels.
    #[must_use]
    pub fn method_name(&self) -> &'static str {
        if self.config.jumping_knowledge {
            "GIN-e-JK"
        } else {
            "GIN-e"
        }
    }

    fn input_dim(&self) -> usize {
        if self.config.degree_feature {
            2
        } else {
            1
        }
    }

    fn init_model(&self, num_classes: usize) -> GinModel {
        let mut params = ParamSet::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(self.config.seed, 0xAB));
        let input_dim = self.input_dim();
        let hidden = self.config.hidden;
        let readout_dim = if self.config.jumping_knowledge {
            input_dim + hidden
        } else {
            hidden
        };
        let mut glorot = |rows: usize, cols: usize| -> Tensor {
            let std = (2.0 / (rows + cols) as f64).sqrt();
            let mut normal = Normal::new(0.0, std).expect("valid std");
            let data: Vec<f64> = (0..rows * cols).map(|_| normal.sample(&mut rng)).collect();
            Tensor::from_vec(rows, cols, data).expect("shape consistent")
        };
        let w1 = params.add(glorot(input_dim, hidden));
        let b1 = params.add(Tensor::zeros(1, hidden));
        let w2 = params.add(glorot(hidden, hidden));
        let b2 = params.add(Tensor::zeros(1, hidden));
        let epsilon = params.add(Tensor::zeros(1, 1));
        let w_out = params.add(glorot(readout_dim, num_classes));
        let b_out = params.add(Tensor::zeros(1, num_classes));
        GinModel {
            params,
            w1,
            b1,
            w2,
            b2,
            epsilon,
            w_out,
            b_out,
            input_dim,
            num_classes,
        }
    }

    /// Node features for a batch: constant 1, plus normalized degree when
    /// configured.
    fn features(&self, graphs: &[&Graph]) -> Tensor {
        let total: usize = graphs.iter().map(|g| g.vertex_count()).sum();
        let dim = self.input_dim();
        let mut x = Tensor::zeros(total, dim);
        let mut row = 0usize;
        for graph in graphs {
            let n = graph.vertex_count();
            for v in 0..n as u32 {
                x.set(row, 0, 1.0);
                if dim > 1 {
                    let norm = if n > 1 {
                        graph.degree(v) as f64 / (n - 1) as f64
                    } else {
                        0.0
                    };
                    x.set(row, 1, norm);
                }
                row += 1;
            }
        }
        x
    }

    fn segments(graphs: &[&Graph]) -> Vec<usize> {
        let mut segments = Vec::new();
        for (g, graph) in graphs.iter().enumerate() {
            segments.extend(std::iter::repeat_n(g, graph.vertex_count()));
        }
        segments
    }

    /// Builds the forward pass for a batch; returns the logits node.
    fn forward(&self, model: &GinModel, tape: &mut Tape, graphs: &[&Graph]) -> NodeId {
        let adj = Rc::new(AdjCsr::from_graphs(graphs));
        let segments = Rc::new(Self::segments(graphs));
        let groups = graphs.len();

        let x = tape.input(self.features(graphs));
        let w1 = tape.param(&model.params, model.w1);
        let b1 = tape.param(&model.params, model.b1);
        let w2 = tape.param(&model.params, model.w2);
        let b2 = tape.param(&model.params, model.b2);
        let eps = tape.param(&model.params, model.epsilon);
        let w_out = tape.param(&model.params, model.w_out);
        let b_out = tape.param(&model.params, model.b_out);

        let neighbor_sum = tape.spmm(adj, x);
        let self_term = tape.scale_one_plus(x, eps);
        let combined = tape.add(self_term, neighbor_sum);
        let z1 = tape.matmul(combined, w1);
        let z1 = tape.add_bias(z1, b1);
        let z1 = tape.relu(z1);
        let z2 = tape.matmul(z1, w2);
        let z2 = tape.add_bias(z2, b2);
        let h = tape.relu(z2);

        let pooled = tape.segment_sum(h, Rc::clone(&segments), groups);
        let readout = if self.config.jumping_knowledge {
            let pooled_input = tape.segment_sum(x, segments, groups);
            tape.concat_cols(pooled_input, pooled)
        } else {
            pooled
        };
        let logits = tape.matmul(readout, w_out);
        tape.add_bias(logits, b_out)
    }

    /// Trains from scratch (any previous model is discarded) and returns
    /// the per-epoch mean training losses.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, lengths mismatch, or a label is
    /// `>= num_classes`.
    pub fn fit(&mut self, graphs: &[&Graph], labels: &[u32], num_classes: usize) -> Vec<f64> {
        assert!(!graphs.is_empty(), "cannot fit gin on zero graphs");
        assert_eq!(graphs.len(), labels.len(), "graph/label count mismatch");
        assert!(
            labels.iter().all(|&l| (l as usize) < num_classes),
            "label out of range"
        );
        let mut model = self.init_model(num_classes);
        let mut adam = Adam::new(self.config.learning_rate);
        let mut scheduler = PlateauScheduler::new(
            self.config.patience,
            self.config.decay,
            self.config.min_learning_rate,
        );
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(self.config.seed, 0xEC));
        let mut order: Vec<usize> = (0..graphs.len()).collect();
        let mut losses = Vec::with_capacity(self.config.epochs);
        let mut global_best = f64::INFINITY;
        let mut stalled = 0usize;

        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let batch: Vec<&Graph> = chunk.iter().map(|&i| graphs[i]).collect();
                let targets: Vec<u32> = chunk.iter().map(|&i| labels[i]).collect();
                let mut tape = Tape::new();
                let logits = self.forward(&model, &mut tape, &batch);
                let loss = tape.mean_cross_entropy(logits, Rc::new(targets));
                let loss_value = tape.value(loss).get(0, 0);
                let grads = tape.backward(loss, model.params.len());
                adam.step(&mut model.params, &grads);
                epoch_loss += loss_value * chunk.len() as f64;
            }
            epoch_loss /= graphs.len() as f64;
            losses.push(epoch_loss);
            scheduler.observe(epoch_loss, &mut adam);
            if epoch_loss < global_best - 1e-9 {
                global_best = epoch_loss;
                stalled = 0;
            } else {
                stalled += 1;
            }
            if self.config.stop_at_floor
                && scheduler.at_floor(&adam)
                && stalled > self.config.patience
            {
                break;
            }
        }
        self.model = Some(model);
        losses
    }

    /// Predicts class labels for a batch of graphs.
    ///
    /// # Panics
    ///
    /// Panics if the classifier has not been fitted.
    #[must_use]
    pub fn predict(&self, graphs: &[&Graph]) -> Vec<u32> {
        let model = self
            .model
            .as_ref()
            .expect("gin classifier must be fitted before predicting");
        let mut out = Vec::with_capacity(graphs.len());
        for chunk in graphs.chunks(self.config.batch_size.max(1)) {
            let mut tape = Tape::new();
            let logits = self.forward(model, &mut tape, chunk);
            out.extend(
                tape.value(logits)
                    .argmax_rows()
                    .into_iter()
                    .map(|c| c as u32),
            );
        }
        out
    }

    /// Predicts the class of a single graph.
    ///
    /// # Panics
    ///
    /// Panics if the classifier has not been fitted.
    #[must_use]
    pub fn predict_one(&self, graph: &Graph) -> u32 {
        self.predict(&[graph])[0]
    }

    /// Number of trainable scalars (for reporting model size).
    ///
    /// # Panics
    ///
    /// Panics if the classifier has not been fitted.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        let model = self
            .model
            .as_ref()
            .expect("gin classifier must be fitted before inspecting");
        let d = model.input_dim;
        let h = self.config.hidden;
        let r = if self.config.jumping_knowledge {
            d + h
        } else {
            h
        };
        d * h + h + h * h + h + 1 + r * model.num_classes + model.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn toy_task() -> (Vec<Graph>, Vec<u32>) {
        // Dense (complete) vs sparse (path) graphs of varied sizes.
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for size in 5..13 {
            graphs.push(generate::complete(size));
            labels.push(0u32);
            graphs.push(generate::path(size));
            labels.push(1u32);
        }
        (graphs, labels)
    }

    fn quick_config() -> GinConfig {
        GinConfig {
            epochs: 40,
            batch_size: 8,
            ..GinConfig::default()
        }
    }

    #[test]
    fn defaults_match_paper() {
        let c = GinConfig::default();
        assert_eq!(c.hidden, 32);
        assert_eq!(c.batch_size, 128);
        assert!((c.learning_rate - 0.01).abs() < 1e-12);
        assert_eq!(c.patience, 5);
        assert!((c.decay - 0.5).abs() < 1e-12);
        assert!((c.min_learning_rate - 1e-6).abs() < 1e-18);
        assert!(!c.jumping_knowledge);
        assert!(GinConfig::jumping().jumping_knowledge);
    }

    #[test]
    fn learns_dense_vs_sparse() {
        let (graphs, labels) = toy_task();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let mut gin = GinClassifier::new(quick_config());
        let losses = gin.fit(&refs, &labels, 2);
        assert!(losses.first().expect("ran epochs") > losses.last().expect("ran epochs"));
        let predictions = gin.predict(&refs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "training accuracy {accuracy}");
    }

    #[test]
    fn jumping_knowledge_variant_learns_too() {
        let (graphs, labels) = toy_task();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let mut config = quick_config();
        config.jumping_knowledge = true;
        let mut gin = GinClassifier::new(config);
        gin.fit(&refs, &labels, 2);
        let predictions = gin.predict(&refs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "training accuracy {accuracy}");
        assert_eq!(gin.method_name(), "GIN-e-JK");
    }

    #[test]
    fn training_is_deterministic() {
        let (graphs, labels) = toy_task();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let mut a = GinClassifier::new(quick_config());
        let mut b = GinClassifier::new(quick_config());
        let la = a.fit(&refs, &labels, 2);
        let lb = b.fit(&refs, &labels, 2);
        assert_eq!(la, lb);
        assert_eq!(a.predict(&refs), b.predict(&refs));
    }

    #[test]
    fn refit_discards_previous_state() {
        let (graphs, labels) = toy_task();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let mut gin = GinClassifier::new(quick_config());
        gin.fit(&refs, &labels, 2);
        let first = gin.predict(&refs);
        gin.fit(&refs, &labels, 2);
        assert_eq!(first, gin.predict(&refs), "refit with same data must agree");
    }

    #[test]
    #[should_panic(expected = "must be fitted")]
    fn predict_before_fit_panics() {
        let gin = GinClassifier::new(GinConfig::default());
        let g = generate::path(3);
        let _ = gin.predict_one(&g);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn fit_validates_labels() {
        let g = generate::path(3);
        let mut gin = GinClassifier::new(GinConfig::default());
        gin.fit(&[&g], &[5], 2);
    }

    #[test]
    fn parameter_count_matches_formula() {
        let (graphs, labels) = toy_task();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let mut config = quick_config();
        config.epochs = 1;
        let mut gin = GinClassifier::new(config);
        gin.fit(&refs, &labels, 2);
        // d=2, h=32: 2*32 + 32 + 32*32 + 32 + 1 + 32*2 + 2 = 1219
        assert_eq!(gin.parameter_count(), 1219);
    }

    #[test]
    fn single_vertex_graphs_are_handled() {
        let g1 = Graph::empty(1);
        let g2 = generate::complete(3);
        let mut config = quick_config();
        config.epochs = 3;
        let mut gin = GinClassifier::new(config);
        gin.fit(&[&g1, &g2], &[0, 1], 2);
        let _ = gin.predict(&[&g1, &g2]);
    }
}
