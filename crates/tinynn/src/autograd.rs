//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records operations eagerly (values are computed as nodes
//! are added) and [`Graph::backward`] replays the tape in reverse,
//! accumulating gradients. The operation set is exactly what GIN-style
//! graph neural networks need; every backward rule is validated against
//! finite differences in this module's tests and in `tests/gradcheck.rs`.

use crate::Tensor;
use std::rc::Rc;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// A learnable-parameter set: the tensors persist across training steps
/// while tape [`Graph`]s are rebuilt per step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamSet {
    values: Vec<Tensor>,
}

/// Handle to a parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamSet {
    /// An empty parameter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter tensor, returning its handle.
    pub fn add(&mut self, value: Tensor) -> ParamId {
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of parameter `id`.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to parameter `id`.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Iterates over `(index, tensor)` pairs (used by optimizers).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut Tensor)> {
        self.values.iter_mut().enumerate()
    }
}

/// Batched block-diagonal adjacency in CSR form, shared by tape nodes.
///
/// Symmetric (undirected) by construction, so `Aᵀ = A` and the backward
/// pass of message passing reuses the forward kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjCsr {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl AdjCsr {
    /// Builds the block-diagonal adjacency of a batch of graphs. Vertex
    /// ids of graph `g` are shifted by the total vertex count of graphs
    /// `0..g`.
    #[must_use]
    pub fn from_graphs(graphs: &[&graphcore::Graph]) -> Self {
        let total: usize = graphs.iter().map(|g| g.vertex_count()).sum();
        let mut offsets = Vec::with_capacity(total + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        let mut base = 0u32;
        for graph in graphs {
            for v in 0..graph.vertex_count() as u32 {
                neighbors.extend(graph.neighbors(v).iter().map(|&u| u + base));
                offsets.push(neighbors.len());
            }
            base += graph.vertex_count() as u32;
        }
        Self { offsets, neighbors }
    }

    /// Number of vertices in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the batch has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sparse product `A · x` (neighbor-sum message passing).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.len()`.
    #[must_use]
    pub fn spmm(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rows(), self.len(), "spmm row mismatch");
        let cols = x.cols();
        let mut out = Tensor::zeros(x.rows(), cols);
        for v in 0..self.len() {
            let row = &mut vec![0.0f64; cols];
            for &u in &self.neighbors[self.offsets[v]..self.offsets[v + 1]] {
                let urow = x.row(u as usize);
                for (acc, &value) in row.iter_mut().zip(urow) {
                    *acc += value;
                }
            }
            out.data_mut()[v * cols..(v + 1) * cols].copy_from_slice(row);
        }
        out
    }
}

enum Op {
    Input,
    Param {
        index: usize,
    },
    MatMul {
        a: NodeId,
        b: NodeId,
    },
    AddBias {
        a: NodeId,
        bias: NodeId,
    },
    Add {
        a: NodeId,
        b: NodeId,
    },
    Relu {
        a: NodeId,
    },
    ScaleOnePlus {
        a: NodeId,
        scalar: NodeId,
    },
    SpMm {
        adj: Rc<AdjCsr>,
        a: NodeId,
    },
    SegmentSum {
        a: NodeId,
        segments: Rc<Vec<usize>>,
    },
    ConcatCols {
        a: NodeId,
        b: NodeId,
    },
    MeanCrossEntropy {
        logits: NodeId,
        targets: Rc<Vec<u32>>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// The autodiff tape: values are computed eagerly, gradients on demand.
///
/// # Examples
///
/// ```
/// use tinynn::autograd::{Graph, ParamSet};
/// use tinynn::Tensor;
///
/// let mut params = ParamSet::new();
/// let w = params.add(Tensor::from_vec(1, 1, vec![3.0])?);
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_vec(1, 1, vec![2.0])?);
/// let wn = g.param(&params, w);
/// let y = g.matmul(x, wn); // y = 2 * 3
/// assert_eq!(g.value(y).get(0, 0), 6.0);
/// let grads = g.backward(y, params.len());
/// // dy/dw = x = 2
/// assert_eq!(grads[0].as_ref().expect("w used").get(0, 0), 2.0);
/// # Ok::<(), tinynn::TensorError>(())
/// ```
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl core::fmt::Debug for Graph {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Graph {
    /// An empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    /// The value of a node.
    #[must_use]
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Records a constant input (no gradient flows to callers).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Records a parameter from `params` (gradient reported by
    /// [`backward`](Self::backward) under the parameter's index).
    pub fn param(&mut self, params: &ParamSet, id: ParamId) -> NodeId {
        self.push(params.value(id).clone(), Op::Param { index: id.0 })
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul { a, b })
    }

    /// Adds a `1 × cols` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × a.cols()`.
    pub fn add_bias(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let (av, bv) = (self.value(a), self.value(bias));
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(bv.cols(), av.cols(), "bias width mismatch");
        let mut value = av.clone();
        for r in 0..value.rows() {
            for c in 0..value.cols() {
                let updated = value.get(r, c) + bv.get(0, c);
                value.set(r, c, updated);
            }
        }
        self.push(value, Op::AddBias { a, bias })
    }

    /// Element-wise sum of two same-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut value = self.value(a).clone();
        value.add_scaled(self.value(b), 1.0);
        self.push(value, Op::Add { a, b })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let mut value = self.value(a).clone();
        for v in value.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.push(value, Op::Relu { a })
    }

    /// `(1 + s) · a` where `s` is a `1 × 1` node — GIN's learnable ε term.
    ///
    /// # Panics
    ///
    /// Panics if `scalar` is not `1 × 1`.
    pub fn scale_one_plus(&mut self, a: NodeId, scalar: NodeId) -> NodeId {
        assert_eq!(self.value(scalar).shape(), (1, 1), "epsilon must be 1x1");
        let s = 1.0 + self.value(scalar).get(0, 0);
        let mut value = self.value(a).clone();
        for v in value.data_mut() {
            *v *= s;
        }
        self.push(value, Op::ScaleOnePlus { a, scalar })
    }

    /// Sparse message passing `A · a` over the batched adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency order differs from `a.rows()`.
    pub fn spmm(&mut self, adj: Rc<AdjCsr>, a: NodeId) -> NodeId {
        let value = adj.spmm(self.value(a));
        self.push(value, Op::SpMm { adj, a })
    }

    /// Sums rows of `a` into `groups` buckets: row `i` is added to bucket
    /// `segments[i]` (graph readout pooling).
    ///
    /// # Panics
    ///
    /// Panics if `segments.len() != a.rows()` or a segment id is
    /// `>= groups`.
    pub fn segment_sum(&mut self, a: NodeId, segments: Rc<Vec<usize>>, groups: usize) -> NodeId {
        let av = self.value(a);
        assert_eq!(segments.len(), av.rows(), "segment count mismatch");
        let mut value = Tensor::zeros(groups, av.cols());
        for (row, &segment) in segments.iter().enumerate() {
            assert!(segment < groups, "segment id out of range");
            let src = av.row(row);
            let dst = &mut value.data_mut()[segment * av.cols()..(segment + 1) * av.cols()];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        self.push(value, Op::SegmentSum { a, segments })
    }

    /// Concatenates two nodes with equal row counts along columns —
    /// jumping-knowledge readout.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.rows(), bv.rows(), "concat row mismatch");
        let mut value = Tensor::zeros(av.rows(), av.cols() + bv.cols());
        for r in 0..av.rows() {
            let dst = &mut value.data_mut()
                [r * (av.cols() + bv.cols())..(r + 1) * (av.cols() + bv.cols())];
            dst[..av.cols()].copy_from_slice(av.row(r));
            dst[av.cols()..].copy_from_slice(bv.row(r));
        }
        self.push(value, Op::ConcatCols { a, b })
    }

    /// Fused softmax + mean negative log-likelihood over rows of `logits`;
    /// produces a `1 × 1` loss node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is out of
    /// range.
    pub fn mean_cross_entropy(&mut self, logits: NodeId, targets: Rc<Vec<u32>>) -> NodeId {
        let lv = self.value(logits);
        assert_eq!(targets.len(), lv.rows(), "target count mismatch");
        let mut total = 0.0f64;
        for (r, &target) in targets.iter().enumerate() {
            assert!((target as usize) < lv.cols(), "target class out of range");
            let row = lv.row(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let log_sum: f64 = row.iter().map(|&x| (x - max).exp()).sum::<f64>().ln() + max;
            total += log_sum - row[target as usize];
        }
        let loss = total / targets.len().max(1) as f64;
        let value = Tensor::from_vec(1, 1, vec![loss]).expect("scalar shape");
        self.push(value, Op::MeanCrossEntropy { logits, targets })
    }

    /// Runs the backward pass from scalar node `root` and returns the
    /// gradient of each parameter index in `0..num_params` (`None` for
    /// parameters the tape never touched).
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a `1 × 1` node.
    #[must_use]
    pub fn backward(&self, root: NodeId, num_params: usize) -> Vec<Option<Tensor>> {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be a scalar node"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(Tensor::from_vec(1, 1, vec![1.0]).expect("scalar shape"));

        let ensure = |slot: &mut Option<Tensor>, rows: usize, cols: usize| {
            if slot.is_none() {
                *slot = Some(Tensor::zeros(rows, cols));
            }
        };

        for idx in (0..self.nodes.len()).rev() {
            let Some(gout) = grads[idx].take() else {
                continue;
            };
            // Re-stash the gradient so parameter extraction sees it.
            grads[idx] = Some(gout.clone());
            match &self.nodes[idx].op {
                Op::Input | Op::Param { .. } => {}
                Op::MatMul { a, b } => {
                    let da = gout.matmul_nt(self.value(*b));
                    let db = self.value(*a).matmul_tn(&gout);
                    let (r, c) = da.shape();
                    ensure(&mut grads[a.0], r, c);
                    grads[a.0].as_mut().expect("ensured").add_scaled(&da, 1.0);
                    let (r, c) = db.shape();
                    ensure(&mut grads[b.0], r, c);
                    grads[b.0].as_mut().expect("ensured").add_scaled(&db, 1.0);
                }
                Op::AddBias { a, bias } => {
                    let (r, c) = gout.shape();
                    ensure(&mut grads[a.0], r, c);
                    grads[a.0].as_mut().expect("ensured").add_scaled(&gout, 1.0);
                    ensure(&mut grads[bias.0], 1, c);
                    let gb = grads[bias.0].as_mut().expect("ensured");
                    for row in 0..r {
                        for col in 0..c {
                            let updated = gb.get(0, col) + gout.get(row, col);
                            gb.set(0, col, updated);
                        }
                    }
                }
                Op::Add { a, b } => {
                    let (r, c) = gout.shape();
                    for child in [a, b] {
                        ensure(&mut grads[child.0], r, c);
                        grads[child.0]
                            .as_mut()
                            .expect("ensured")
                            .add_scaled(&gout, 1.0);
                    }
                }
                Op::Relu { a } => {
                    let av = self.value(*a);
                    let (r, c) = gout.shape();
                    ensure(&mut grads[a.0], r, c);
                    let ga = grads[a.0].as_mut().expect("ensured");
                    for i in 0..r * c {
                        if av.data()[i] > 0.0 {
                            ga.data_mut()[i] += gout.data()[i];
                        }
                    }
                }
                Op::ScaleOnePlus { a, scalar } => {
                    let s = 1.0 + self.value(*scalar).get(0, 0);
                    let av = self.value(*a);
                    let (r, c) = gout.shape();
                    ensure(&mut grads[a.0], r, c);
                    grads[a.0].as_mut().expect("ensured").add_scaled(&gout, s);
                    ensure(&mut grads[scalar.0], 1, 1);
                    let mut acc = 0.0;
                    for i in 0..r * c {
                        acc += gout.data()[i] * av.data()[i];
                    }
                    let gs = grads[scalar.0].as_mut().expect("ensured");
                    let updated = gs.get(0, 0) + acc;
                    gs.set(0, 0, updated);
                }
                Op::SpMm { adj, a } => {
                    // A is symmetric: dX = Aᵀ·dY = A·dY.
                    let da = adj.spmm(&gout);
                    let (r, c) = da.shape();
                    ensure(&mut grads[a.0], r, c);
                    grads[a.0].as_mut().expect("ensured").add_scaled(&da, 1.0);
                }
                Op::SegmentSum { a, segments } => {
                    let av = self.value(*a);
                    ensure(&mut grads[a.0], av.rows(), av.cols());
                    let ga = grads[a.0].as_mut().expect("ensured");
                    let cols = av.cols();
                    for (row, &segment) in segments.iter().enumerate() {
                        let src = gout.row(segment);
                        let dst = &mut ga.data_mut()[row * cols..(row + 1) * cols];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                }
                Op::ConcatCols { a, b } => {
                    let (ar, ac) = self.value(*a).shape();
                    let bc = self.value(*b).cols();
                    ensure(&mut grads[a.0], ar, ac);
                    ensure(&mut grads[b.0], ar, bc);
                    for r in 0..ar {
                        let grow = gout.row(r);
                        {
                            let ga = grads[a.0].as_mut().expect("ensured");
                            let dst = &mut ga.data_mut()[r * ac..(r + 1) * ac];
                            for (d, &s) in dst.iter_mut().zip(&grow[..ac]) {
                                *d += s;
                            }
                        }
                        let gb = grads[b.0].as_mut().expect("ensured");
                        let dst = &mut gb.data_mut()[r * bc..(r + 1) * bc];
                        for (d, &s) in dst.iter_mut().zip(&grow[ac..]) {
                            *d += s;
                        }
                    }
                }
                Op::MeanCrossEntropy { logits, targets } => {
                    let lv = self.value(*logits);
                    let scale = gout.get(0, 0) / targets.len().max(1) as f64;
                    ensure(&mut grads[logits.0], lv.rows(), lv.cols());
                    let gl = grads[logits.0].as_mut().expect("ensured");
                    for (r, &target) in targets.iter().enumerate() {
                        let row = lv.row(r);
                        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        let exps: Vec<f64> = row.iter().map(|&x| (x - max).exp()).collect();
                        let denom: f64 = exps.iter().sum();
                        for (c, &e) in exps.iter().enumerate() {
                            let softmax = e / denom;
                            let indicator = f64::from(c == target as usize);
                            let updated = gl.get(r, c) + scale * (softmax - indicator);
                            gl.set(r, c, updated);
                        }
                    }
                }
            }
        }

        let mut param_grads: Vec<Option<Tensor>> = (0..num_params).map(|_| None).collect();
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Param { index } = node.op {
                if let Some(g) = &grads[idx] {
                    match &mut param_grads[index] {
                        Some(existing) => existing.add_scaled(g, 1.0),
                        slot @ None => *slot = Some(g.clone()),
                    }
                }
            }
        }
        param_grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    #[test]
    fn adjacency_batches_block_diagonally() {
        let a = generate::path(3); // edges 0-1, 1-2
        let b = generate::star(3); // edges 0-1, 0-2
        let adj = AdjCsr::from_graphs(&[&a, &b]);
        assert_eq!(adj.len(), 6);
        // Message passing with constant-1 features returns degrees.
        let ones = Tensor::from_vec(6, 1, vec![1.0; 6]).unwrap();
        let deg = adj.spmm(&ones);
        let expected = [1.0, 2.0, 1.0, 2.0, 1.0, 1.0];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(deg.get(i, 0), e, "vertex {i}");
        }
    }

    #[test]
    fn forward_values_are_eager() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 2, vec![1.0, -2.0]).unwrap());
        let r = g.relu(x);
        assert_eq!(g.value(r).data(), &[1.0, 0.0]);
    }

    #[test]
    fn matmul_gradients_match_hand_computation() {
        // loss = sum over CE is overkill: use 1x1 chain y = x·w, dy/dw = x.
        let mut params = ParamSet::new();
        let w = params.add(Tensor::from_vec(2, 1, vec![5.0, 7.0]).unwrap());
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 2, vec![2.0, 3.0]).unwrap());
        let wn = g.param(&params, w);
        let y = g.matmul(x, wn);
        assert_eq!(g.value(y).get(0, 0), 31.0);
        let grads = g.backward(y, params.len());
        let gw = grads[0].as_ref().expect("w used");
        assert_eq!(gw.data(), &[2.0, 3.0]);
    }

    #[test]
    fn shared_parameter_accumulates_gradient() {
        // y = x·w + x·w uses w twice: gradient doubles.
        let mut params = ParamSet::new();
        let w = params.add(Tensor::from_vec(1, 1, vec![4.0]).unwrap());
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 1, vec![3.0]).unwrap());
        let wn = g.param(&params, w);
        let y1 = g.matmul(x, wn);
        let y2 = g.matmul(x, wn);
        let y = g.add(y1, y2);
        let grads = g.backward(y, params.len());
        assert_eq!(grads[0].as_ref().expect("w used").get(0, 0), 6.0);
    }

    #[test]
    fn unused_parameters_have_no_gradient() {
        let mut params = ParamSet::new();
        let _unused = params.add(Tensor::zeros(2, 2));
        let used = params.add(Tensor::from_vec(1, 1, vec![1.0]).unwrap());
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 1, vec![1.0]).unwrap());
        let wn = g.param(&params, used);
        let y = g.matmul(x, wn);
        let grads = g.backward(y, params.len());
        assert!(grads[0].is_none());
        assert!(grads[1].is_some());
    }

    #[test]
    fn cross_entropy_loss_value_is_correct() {
        // Uniform logits over k classes: loss = ln k.
        let mut g = Graph::new();
        let logits = g.input(Tensor::zeros(4, 3));
        let targets = Rc::new(vec![0u32, 1, 2, 0]);
        let loss = g.mean_cross_entropy(logits, targets);
        assert!((g.value(loss).get(0, 0) - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be a scalar")]
    fn backward_requires_scalar_root() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        let _ = g.backward(x, 0);
    }

    #[test]
    fn segment_sum_pools_per_graph() {
        let mut g = Graph::new();
        let x =
            g.input(Tensor::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap());
        let segments = Rc::new(vec![0usize, 0, 1, 1]);
        let pooled = g.segment_sum(x, segments, 2);
        assert_eq!(g.value(pooled).row(0), &[4.0, 6.0]);
        assert_eq!(g.value(pooled).row(1), &[12.0, 14.0]);
    }
}
