//! Optimizers and learning-rate schedules.

use crate::autograd::ParamSet;
use crate::Tensor;

/// The Adam optimizer (Kingma & Ba) with the paper's defaults: the paper
/// trains its GNN baselines with Adam at learning rate 0.01
/// (Section V-A2).
///
/// # Examples
///
/// ```
/// use tinynn::autograd::ParamSet;
/// use tinynn::optim::Adam;
/// use tinynn::Tensor;
///
/// let mut params = ParamSet::new();
/// let w = params.add(Tensor::from_vec(1, 1, vec![10.0])?);
/// let mut adam = Adam::new(0.1);
/// // Minimise w²: gradient is 2w.
/// for _ in 0..500 {
///     let grad = Tensor::from_vec(1, 1, vec![2.0 * params.value(w).get(0, 0)])?;
///     adam.step(&mut params, &[Some(grad)]);
/// }
/// assert!(params.value(w).get(0, 0).abs() < 1e-3);
/// # Ok::<(), tinynn::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step: u64,
    first_moment: Vec<Option<Tensor>>,
    second_moment: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard moments
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e−8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Updates the learning rate (used by schedulers).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one Adam update. `grads[i]` is the gradient of parameter
    /// index `i` (as returned by `Graph::backward`); `None` entries are
    /// skipped.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the parameter count or a
    /// gradient's shape differs from its parameter.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[Option<Tensor>]) {
        assert_eq!(grads.len(), params.len(), "gradient count mismatch");
        if self.first_moment.len() < params.len() {
            self.first_moment.resize(params.len(), None);
            self.second_moment.resize(params.len(), None);
        }
        self.step += 1;
        let t = self.step as i32;
        let bias1 = 1.0 - self.beta1.powi(t);
        let bias2 = 1.0 - self.beta2.powi(t);
        for (index, value) in params.iter_mut() {
            let Some(grad) = &grads[index] else {
                continue;
            };
            assert_eq!(grad.shape(), value.shape(), "gradient shape mismatch");
            let m = self.first_moment[index]
                .get_or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
            let v = self.second_moment[index]
                .get_or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
            for i in 0..grad.data().len() {
                let g = grad.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

/// ReduceLROnPlateau: halves the learning rate when the observed loss has
/// not improved for `patience` epochs, with a floor — the exact schedule
/// of the paper ("starting at 0.01 with a patience parameter of 5 which
/// decays with 0.5 till a minimum of 10⁻⁶").
#[derive(Debug, Clone, PartialEq)]
pub struct PlateauScheduler {
    patience: usize,
    factor: f64,
    min_lr: f64,
    best: f64,
    epochs_since_best: usize,
}

impl PlateauScheduler {
    /// Creates the scheduler with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1)` or `min_lr` is negative.
    #[must_use]
    pub fn new(patience: usize, factor: f64, min_lr: f64) -> Self {
        assert!(
            factor > 0.0 && factor < 1.0,
            "decay factor must be in (0, 1)"
        );
        assert!(min_lr >= 0.0, "minimum learning rate must be non-negative");
        Self {
            patience,
            factor,
            min_lr,
            best: f64::INFINITY,
            epochs_since_best: 0,
        }
    }

    /// The paper's schedule: patience 5, factor 0.5, floor 1e−6.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(5, 0.5, 1e-6)
    }

    /// Observes an epoch loss; reduces `adam`'s learning rate if the loss
    /// has plateaued. Returns `true` when a reduction happened.
    pub fn observe(&mut self, loss: f64, adam: &mut Adam) -> bool {
        if loss < self.best - 1e-12 {
            self.best = loss;
            self.epochs_since_best = 0;
            return false;
        }
        self.epochs_since_best += 1;
        if self.epochs_since_best > self.patience {
            self.epochs_since_best = 0;
            let current = adam.learning_rate();
            let reduced = (current * self.factor).max(self.min_lr);
            if reduced < current {
                adam.set_learning_rate(reduced);
                return true;
            }
        }
        false
    }

    /// Whether the learning rate can still decrease.
    #[must_use]
    pub fn at_floor(&self, adam: &Adam) -> bool {
        adam.learning_rate() <= self.min_lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::ParamSet;

    #[test]
    fn adam_minimises_quadratic_bowl() {
        let mut params = ParamSet::new();
        let w = params.add(Tensor::from_vec(1, 2, vec![3.0, -4.0]).unwrap());
        let mut adam = Adam::new(0.05);
        for _ in 0..2000 {
            let value = params.value(w).clone();
            let grad =
                Tensor::from_vec(1, 2, vec![2.0 * value.get(0, 0), 2.0 * value.get(0, 1)]).unwrap();
            adam.step(&mut params, &[Some(grad)]);
        }
        assert!(params.value(w).get(0, 0).abs() < 1e-3);
        assert!(params.value(w).get(0, 1).abs() < 1e-3);
    }

    #[test]
    fn adam_skips_missing_gradients() {
        let mut params = ParamSet::new();
        let w = params.add(Tensor::from_vec(1, 1, vec![1.0]).unwrap());
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, &[None]);
        assert_eq!(params.value(w).get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "gradient count mismatch")]
    fn adam_validates_gradient_count() {
        let mut params = ParamSet::new();
        let _ = params.add(Tensor::zeros(1, 1));
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, &[]);
    }

    #[test]
    fn scheduler_reduces_after_patience() {
        let mut adam = Adam::new(0.01);
        let mut scheduler = PlateauScheduler::new(2, 0.5, 1e-6);
        assert!(!scheduler.observe(1.0, &mut adam)); // new best
        assert!(!scheduler.observe(1.0, &mut adam)); // stall 1
        assert!(!scheduler.observe(1.0, &mut adam)); // stall 2
        assert!(scheduler.observe(1.0, &mut adam)); // stall 3 > patience
        assert!((adam.learning_rate() - 0.005).abs() < 1e-15);
    }

    #[test]
    fn scheduler_respects_floor() {
        let mut adam = Adam::new(2e-6);
        let mut scheduler = PlateauScheduler::new(0, 0.5, 1e-6);
        assert!(!scheduler.observe(1.0, &mut adam)); // first loss: new best
        assert!(scheduler.observe(1.0, &mut adam)); // stall: reduce to floor
        assert!(!scheduler.observe(1.0, &mut adam)); // clamped: 1e-6 floor
        assert!((adam.learning_rate() - 1e-6).abs() < 1e-18);
        assert!(scheduler.at_floor(&adam));
    }

    #[test]
    fn scheduler_resets_on_improvement() {
        let mut adam = Adam::new(0.01);
        let mut scheduler = PlateauScheduler::new(1, 0.5, 1e-6);
        assert!(!scheduler.observe(1.0, &mut adam));
        assert!(!scheduler.observe(1.0, &mut adam));
        assert!(!scheduler.observe(0.5, &mut adam)); // improvement resets
        assert!(!scheduler.observe(0.5, &mut adam));
        assert!(scheduler.observe(0.5, &mut adam));
        assert!((adam.learning_rate() - 0.005).abs() < 1e-15);
    }

    #[test]
    fn paper_default_matches_section_v() {
        let s = PlateauScheduler::paper_default();
        assert_eq!(s, PlateauScheduler::new(5, 0.5, 1e-6));
    }
}
