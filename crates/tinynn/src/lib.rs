//! A minimal neural-network substrate for the GraphHD reproduction.
//!
//! The paper's GNN baselines (GIN-ε and GIN-ε-JK, Section V-A2) run on
//! PyTorch Geometric; this crate replaces that stack with a small,
//! self-contained implementation:
//!
//! - [`Tensor`] — dense 2-D `f64` matrices with the handful of BLAS-like
//!   kernels the models need.
//! - [`Graph`](autograd::Graph) — a tape-based reverse-mode autodiff
//!   engine with exactly the operations graph neural networks require:
//!   matmul, bias broadcast, ReLU, sparse adjacency multiplication
//!   (message passing), segment-sum pooling (graph readout), column
//!   concatenation (jumping knowledge) and fused softmax cross-entropy.
//!   Gradients are verified against finite differences in the test suite.
//! - [`Adam`](optim::Adam) and
//!   [`PlateauScheduler`](optim::PlateauScheduler) — the optimizer and
//!   learning-rate schedule of the paper (Adam, lr 0.01, ReduceLROnPlateau
//!   with patience 5, factor 0.5, floor 1e−6).
//! - [`GinClassifier`](gin::GinClassifier) — the paper's fixed
//!   architecture: one GIN layer with 32 units (2-layer MLP), sum-pool
//!   readout, optional jumping knowledge, batch size 128.
//!
//! # Examples
//!
//! ```
//! use tinynn::gin::{GinClassifier, GinConfig};
//! use graphcore::generate;
//!
//! // Dense vs sparse toy task.
//! let graphs: Vec<_> = (0..16)
//!     .map(|i| if i % 2 == 0 { generate::complete(8) } else { generate::path(8) })
//!     .collect();
//! let refs: Vec<&graphcore::Graph> = graphs.iter().collect();
//! let labels: Vec<u32> = (0..16).map(|i| (i % 2) as u32).collect();
//! let mut config = GinConfig::default();
//! config.epochs = 30;
//! let mut gin = GinClassifier::new(config);
//! gin.fit(&refs, &labels, 2);
//! let accuracy = refs
//!     .iter()
//!     .zip(&labels)
//!     .filter(|(g, &l)| gin.predict_one(g) == l)
//!     .count() as f64
//!     / 16.0;
//! assert!(accuracy > 0.9);
//! ```

pub mod autograd;
pub mod gin;
pub mod optim;
mod tensor;

pub use tensor::{Tensor, TensorError};
