//! Dense 2-D matrices with the kernels the autograd engine needs.

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use tinynn::Tensor;
///
/// let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// # Ok::<(), tinynn::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// A zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "tensor index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "tensor index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// The raw row-major data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    #[must_use]
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} . ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    #[must_use]
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// In-place `self += scale · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Index of the maximum element of each row.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Error returned by [`Tensor::from_vec`] on a shape/data mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorError {
    rows: usize,
    cols: usize,
    len: usize,
}

impl core::fmt::Display for TensorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "tensor of shape {}x{} needs {} values, got {}",
            self.rows,
            self.cols,
            self.rows * self.cols,
            self.len
        )
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, data: &[f64]) -> Tensor {
        Tensor::from_vec(rows, cols, data.to_vec()).expect("valid shape")
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(2, 2, vec![1.0]).is_err());
        assert!(Tensor::from_vec(0, 0, vec![]).is_ok());
    }

    #[test]
    fn matmul_known_answer() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, t(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(
            4,
            3,
            &[1.0, 0.0, 2.0, 0.0, 1.0, 1.0, 3.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        );
        let nt = a.matmul_nt(&b);
        // bᵀ is 3x4
        let mut bt = Tensor::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                bt.set(j, i, b.get(i, j));
            }
        }
        assert_eq!(nt, a.matmul(&bt));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 4, &(0..12).map(f64::from).collect::<Vec<_>>());
        let tn = a.matmul_tn(&b);
        let mut at = Tensor::zeros(2, 3);
        for i in 0..3 {
            for j in 0..2 {
                at.set(j, i, a.get(i, j));
            }
        }
        assert_eq!(tn, at.matmul(&b));
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn add_scaled_and_sum() {
        let mut a = Tensor::zeros(2, 2);
        a.add_scaled(&Tensor::eye(2), 3.0);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn argmax_rows_picks_maxima() {
        let a = t(2, 3, &[0.1, 0.9, 0.5, 2.0, -1.0, 1.5]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn zero_sized_matmul_works() {
        let a = Tensor::zeros(0, 3);
        let b = Tensor::zeros(3, 2);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (0, 2));
    }
}
