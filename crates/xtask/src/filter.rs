//! Test-region detection: which tokens of a source file belong to
//! test-only code.
//!
//! The panic-freedom lint applies to *library* code only, but this repo
//! keeps unit tests inline in `src/` files behind `#[cfg(test)]`. This
//! module computes a per-token mask: a token is test-only when it sits
//! inside an item annotated `#[test]`, `#[cfg(test)]` (also via `any(…)`
//! / `all(…)` combinators, but not under `not(…)`), or inside a file
//! whose inner attributes gate the whole module on `cfg(test)`.

use crate::lexer::{Token, TokenKind};

/// Returns a mask parallel to `tokens`: `true` = test-only code.
#[must_use]
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    let mut pending_test_attr = false;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            let inner = matches!(tokens.get(i + 1), Some(t) if t.is_punct('!'));
            let open = i + 1 + usize::from(inner);
            if matches!(tokens.get(open), Some(t) if t.is_punct('[')) {
                let close = match matching(tokens, open, '[', ']') {
                    Some(close) => close,
                    None => break,
                };
                let is_test = attr_gates_test(&tokens[open + 1..close]);
                if inner && is_test {
                    // `#![cfg(test)]`: the whole file is test-only.
                    mask.fill(true);
                    return mask;
                }
                if is_test {
                    pending_test_attr = true;
                    for slot in &mut mask[i..=close] {
                        *slot = true;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        if pending_test_attr && !tokens[i].is_comment() && !tokens[i].is_punct('#') {
            let end = item_end(tokens, i).unwrap_or(tokens.len() - 1);
            for slot in &mut mask[i..=end] {
                *slot = true;
            }
            pending_test_attr = false;
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether an attribute's tokens (between `[` and `]`) gate the item on
/// test builds: `test`, `cfg(test)`, `cfg(any(test, …))` — but not
/// `cfg(not(test))`.
fn attr_gates_test(attr: &[Token]) -> bool {
    let mut scopes: Vec<String> = Vec::new();
    let mut prev_ident: Option<&str> = None;
    for token in attr {
        match token.kind {
            TokenKind::Punct if token.is_punct('(') => {
                scopes.push(prev_ident.unwrap_or("").to_string());
                prev_ident = None;
            }
            TokenKind::Punct if token.is_punct(')') => {
                scopes.pop();
                prev_ident = None;
            }
            TokenKind::Ident => {
                if token.text == "test" && !scopes.iter().any(|s| s == "not") {
                    return true;
                }
                prev_ident = Some(&token.text);
            }
            _ => prev_ident = None,
        }
    }
    false
}

/// The index of the last token of the item starting at `start`: the
/// matching `}` of the first brace block encountered outside
/// parens/brackets, or the first `;` at nesting depth zero, whichever
/// comes first.
fn item_end(tokens: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.chars().next() {
                Some('(' | '[') => depth += 1,
                Some(')' | ']') => depth -= 1,
                Some('{') if depth == 0 => return matching(tokens, i, '{', '}'),
                Some(';') if depth == 0 => return Some(i),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Index of the punct matching the opener at `open`.
pub fn matching(tokens: &[Token], open: usize, opener: char, closer: char) -> Option<usize> {
    let mut depth = 0usize;
    for (offset, token) in tokens[open..].iter().enumerate() {
        if token.is_punct(opener) {
            depth += 1;
        } else if token.is_punct(closer) {
            depth -= 1;
            if depth == 0 {
                return Some(open + offset);
            }
        }
    }
    None
}
