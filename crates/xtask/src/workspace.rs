//! Workspace discovery: which crates and source files the audit scans.
//!
//! The scan set is every workspace member's `src/` tree (the umbrella
//! crate at the repo root included). `vendor/` is excluded — the
//! proptest/criterion shims mirror external APIs — and `tests/`,
//! `benches/`, and `examples/` trees are out of scope: the lints police
//! *shipped* code, and test code is recognised and skipped even inside
//! `src/` files (see [`crate::filter`]).

use std::path::{Path, PathBuf};

/// One scanned crate: its name and the `.rs` files under its `src/`.
#[derive(Debug)]
pub struct CrateSrc {
    /// The crate directory name (`hdvec`, `parallel`, …; the umbrella
    /// crate at the repo root is `graphhd_suite`).
    pub name: String,
    /// All `.rs` files under `src/`, sorted for deterministic reports.
    pub files: Vec<PathBuf>,
}

/// Discovers every scanned crate under `root` (the repo root).
///
/// # Errors
///
/// Returns a message if a directory cannot be read.
pub fn discover(root: &Path) -> Result<Vec<CrateSrc>, String> {
    let mut crates = Vec::new();
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        crates.push(CrateSrc {
            name: "graphhd_suite".to_string(),
            files: rust_files(&umbrella)?,
        });
    }
    let crates_dir = root.join("crates");
    let mut names = Vec::new();
    for entry in read_dir(&crates_dir)? {
        let path = entry
            .map_err(|e| format!("cannot list crates/: {e}"))?
            .path();
        if path.join("src").is_dir() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    for name in names {
        let src = crates_dir.join(&name).join("src");
        crates.push(CrateSrc {
            name,
            files: rust_files(&src)?,
        });
    }
    Ok(crates)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in read_dir(&current)? {
            let path = entry
                .map_err(|e| format!("cannot list {}: {e}", current.display()))?
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn read_dir(dir: &Path) -> Result<std::fs::ReadDir, String> {
    std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))
}

/// Reads a file to a string with a path-labelled error.
///
/// # Errors
///
/// Returns a message if the file cannot be read.
pub fn read_file(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// `path` relative to `root`, with `/` separators, for stable report
/// lines and allowlist keys.
#[must_use]
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
