//! **xtask** — the repo's own static-analysis suite, run as
//! `cargo xtask audit`.
//!
//! The GraphHD workspace trades safety for speed in exactly two places
//! (the `std::arch` SIMD kernels and the work-stealing pool's lifetime
//! erasure) and leans on conventions everywhere else: `SAFETY:`
//! comments on unsafe sites, panic-free library code, documented public
//! surfaces, and a registry of environment knobs. Conventions rot
//! unless a machine checks them, so this crate is a dependency-free
//! source analyzer — a small Rust [lexer] that understands
//! comments, strings and attributes, plus repo-specific [lints]:
//!
//! - [`unsafe-safety`](lints::safety) — every `unsafe` block/fn carries
//!   an adjacent `// SAFETY:` comment (or `# Safety` doc section), and
//!   crates using `unsafe` deny `unsafe_op_in_unsafe_fn`;
//! - [`no-panic`](lints::panics) — no `unwrap` / `expect` / `panic!` /
//!   `unreachable!` in non-test library code, with a justified
//!   [allowlist] (`docs/audit-allowlist.txt`);
//! - [`env-registry`](lints::envreg) — every `std::env::var` read names
//!   a variable registered in `docs/ENV.md`;
//! - [`deprecated-milestone`](lints::deprecated) — `#[deprecated]`
//!   shims name a removal milestone;
//! - [`pub-docs`](lints::pubdocs) — public items in `hdvec`,
//!   `parallel`, `engine`, `graphhd`, `telemetry` and `faultpoint` are
//!   documented.
//!
//! CI runs `cargo xtask audit` as a gate; the analyzer's own test suite
//! drives every lint over pass/fail fixtures and asserts the live
//! workspace stays clean.

pub mod allowlist;
pub mod filter;
pub mod lexer;
pub mod lints;
pub mod workspace;

use std::path::Path;

/// Crates whose public items must be documented.
const DOCUMENTED_CRATES: [&str; 7] = [
    "hdvec",
    "parallel",
    "engine",
    "graphhd",
    "telemetry",
    "faultpoint",
    "netserve",
];

/// Crates exempt from the `no-panic` lint: benchmark binaries are leaf
/// applications where `unwrap` on setup is idiomatic.
const PANIC_EXEMPT_CRATES: [&str; 1] = ["bench"];

/// Repo-relative path of the env-var registry.
pub const ENV_REGISTRY: &str = "docs/ENV.md";

/// Repo-relative path of the audit allowlist.
pub const ALLOWLIST: &str = "docs/audit-allowlist.txt";

/// One lint finding: where, which lint, and what to do about it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The lint that fired.
    pub lint: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The allowlist key: the offending token, env-var name, or item
    /// identifier.
    pub item: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Runs every lint over the workspace rooted at `root` and returns the
/// surviving findings (allowlist applied, stale entries reported),
/// sorted by file and line.
///
/// # Errors
///
/// Returns a message when the workspace cannot be walked or the
/// allowlist is malformed.
pub fn audit(root: &Path) -> Result<Vec<Finding>, String> {
    let registry = workspace::read_file(&root.join(ENV_REGISTRY)).ok();
    let allow_text = workspace::read_file(&root.join(ALLOWLIST)).unwrap_or_default();
    let entries = allowlist::parse(&allow_text)?;

    let mut findings = Vec::new();
    for crate_src in workspace::discover(root)? {
        let mut crate_uses_unsafe = false;
        let mut root_denies_unsafe_op = false;
        for path in &crate_src.files {
            let rel = workspace::relative(root, path);
            let source = workspace::read_file(path)?;
            let tokens = lexer::lex(&source);

            crate_uses_unsafe |= tokens.iter().any(|t| t.is_ident("unsafe"));
            let is_crate_root = path
                .file_name()
                .is_some_and(|n| n == "lib.rs" || n == "main.rs");
            if is_crate_root {
                root_denies_unsafe_op |=
                    tokens.iter().any(|t| t.is_ident("unsafe_op_in_unsafe_fn"));
            }

            findings.extend(lints::safety::check(&rel, &tokens));
            findings.extend(lints::envreg::check(&rel, &tokens, registry.as_deref()));
            findings.extend(lints::deprecated::check(&rel, &tokens));
            if !PANIC_EXEMPT_CRATES.contains(&crate_src.name.as_str()) {
                let mask = filter::test_mask(&tokens);
                findings.extend(lints::panics::check(&rel, &tokens, &mask));
            }
            if DOCUMENTED_CRATES.contains(&crate_src.name.as_str()) {
                findings.extend(lints::pubdocs::check(&rel, path, &tokens));
            }
        }
        if crate_uses_unsafe && !root_denies_unsafe_op {
            findings.push(Finding {
                lint: "unsafe-safety",
                file: format!("crates/{}/src/lib.rs", crate_src.name),
                line: 1,
                item: "unsafe_op_in_unsafe_fn".to_string(),
                message: format!(
                    "crate `{}` uses unsafe but its root does not carry \
                     `#![deny(unsafe_op_in_unsafe_fn)]`",
                    crate_src.name
                ),
            });
        }
    }

    let mut findings = allowlist::apply(findings, &entries, ALLOWLIST);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(findings)
}
