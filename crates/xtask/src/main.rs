//! CLI entry point: `cargo xtask audit [--root <path>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => run_audit(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask audit [--root <path>]");
            eprintln!();
            eprintln!("Runs the repo lint suite: unsafe-safety, no-panic, env-registry,");
            eprintln!("deprecated-milestone, pub-docs. Exits non-zero on any finding.");
            ExitCode::FAILURE
        }
    }
}

fn run_audit(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::audit(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("audit: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("audit: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `--root <path>` when given, else the directory
/// two levels above this crate (compile-time location), else the
/// current directory.
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(at) = args.iter().position(|a| a == "--root") {
        let path = args
            .get(at + 1)
            .ok_or_else(|| "--root needs a path".to_string())?;
        return Ok(PathBuf::from(path));
    }
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest_dir.parent().and_then(|p| p.parent()) {
        Some(root) => Ok(root.to_path_buf()),
        None => Ok(PathBuf::from(".")),
    }
}
