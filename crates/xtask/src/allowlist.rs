//! The audit allowlist: the small set of findings the repo has decided
//! to live with, each with a written justification.
//!
//! Format (`docs/audit-allowlist.txt`): one entry per line,
//!
//! ```text
//! <lint> <file> <item> -- <justification>
//! ```
//!
//! e.g. `no-panic crates/parallel/src/pool.rs expect -- poisoned lock
//! means a worker panicked; aborting is correct`. Blank lines and `#`
//! comments are ignored. An entry suppresses every finding of `<lint>`
//! in `<file>` whose item key equals `<item>`. Entries that suppress
//! nothing are themselves reported as findings — the allowlist can
//! never silently outlive the code it excuses.

use crate::Finding;

/// One parsed allowlist entry.
#[derive(Debug)]
pub struct Entry {
    /// Lint name the entry applies to.
    pub lint: String,
    /// Repo-relative file path.
    pub file: String,
    /// The finding's item key (`unwrap`, an env-var name, an item
    /// identifier, …).
    pub item: String,
    /// 1-based line in the allowlist file (for stale-entry reports).
    pub line: u32,
}

/// Parses allowlist text into entries.
///
/// # Errors
///
/// Returns a message naming the first malformed line: every entry needs
/// `lint file item` fields and a ` -- justification` tail.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (fields, justification) = line
            .split_once(" -- ")
            .ok_or_else(|| format!("allowlist line {}: missing ` -- justification`", idx + 1))?;
        if justification.trim().is_empty() {
            return Err(format!("allowlist line {}: empty justification", idx + 1));
        }
        let mut parts = fields.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(lint), Some(file), Some(item), None) => entries.push(Entry {
                lint: lint.to_string(),
                file: file.to_string(),
                item: item.to_string(),
                line: (idx + 1) as u32,
            }),
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `lint file item -- justification`",
                    idx + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Removes allowlisted findings and reports stale entries.
///
/// Returns the surviving findings plus one `allowlist` finding per
/// entry that matched nothing.
#[must_use]
pub fn apply(findings: Vec<Finding>, entries: &[Entry], allowlist_file: &str) -> Vec<Finding> {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for finding in findings {
        let matched = entries.iter().enumerate().find(|(_, e)| {
            e.lint == finding.lint && e.file == finding.file && e.item == finding.item
        });
        match matched {
            Some((idx, _)) => used[idx] = true,
            None => kept.push(finding),
        }
    }
    for (entry, used) in entries.iter().zip(used) {
        if !used {
            kept.push(Finding {
                lint: "allowlist",
                file: allowlist_file.to_string(),
                line: entry.line,
                item: entry.item.clone(),
                message: format!(
                    "stale allowlist entry `{} {} {}`: it suppresses no finding — remove it",
                    entry.lint, entry.file, entry.item
                ),
            });
        }
    }
    kept
}
