//! A minimal Rust lexer: just enough structure to tell code apart from
//! comments, string/char literals, and attributes, with source lines
//! attached to every token.
//!
//! The audit lints need exactly that much and no more — no parse tree,
//! no spans into a token interner. The hazards a naive scanner gets
//! wrong are handled here once: nested block comments, raw strings with
//! arbitrary `#` fences, byte/raw-byte literals, raw identifiers
//! (`r#match`), and the `'a` lifetime versus `'a'` char-literal
//! ambiguity.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal (lexed loosely; suffixes are included).
    Number,
    /// A `//` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// A `/* … */` comment (nesting-aware), including `/** … */`.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's full source text (comments keep their markers,
    /// strings keep their quotes and prefixes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this is an outer or inner doc comment.
    #[must_use]
    pub fn is_doc_comment(&self) -> bool {
        match self.kind {
            TokenKind::LineComment => self.text.starts_with("///") || self.text.starts_with("//!"),
            TokenKind::BlockComment => self.text.starts_with("/**") || self.text.starts_with("/*!"),
            _ => false,
        }
    }

    /// Whether this token is a comment of either flavour.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is an identifier with exactly the given text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is the given punctuation character.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(ch)
    }

    /// The contents of a string literal with prefix, fences, and quotes
    /// stripped (escape sequences are left as written). Returns the raw
    /// text for non-string tokens.
    #[must_use]
    pub fn str_value(&self) -> &str {
        if self.kind != TokenKind::Str {
            return &self.text;
        }
        let body = self.text.trim_start_matches(['b', 'r']);
        let body = body.trim_matches('#');
        body.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(body)
    }
}

/// Lexes `source` into a token stream. Whitespace is dropped; comments
/// are kept as tokens (several lints key off their placement).
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if c == '"' {
                self.string(line, String::new());
            } else if c == 'b' || c == 'r' {
                self.maybe_literal_prefix(line);
            } else if c == '\'' {
                self.char_or_lifetime(line);
            } else if is_ident_start(c) {
                self.ident(line);
            } else if c.is_ascii_digit() {
                self.number(line);
            } else {
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line);
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Handles `b` / `r` starts: byte strings, byte chars, raw strings,
    /// raw identifiers — or a plain identifier when none of those match.
    fn maybe_literal_prefix(&mut self, line: u32) {
        let c = self.peek(0);
        let next = self.peek(1);
        match (c, next) {
            (Some('b'), Some('"')) => {
                self.bump();
                self.string(line, String::from("b"));
            }
            (Some('b'), Some('\'')) => {
                self.bump(); // `b`
                self.char_literal(line, String::from("b"));
            }
            (Some('b'), Some('r')) if self.raw_string_follows(2) => {
                self.bump();
                self.bump();
                self.raw_string(line, String::from("br"));
            }
            (Some('r'), _) if self.raw_string_follows(1) => {
                self.bump();
                self.raw_string(line, String::from("r"));
            }
            (Some('r'), Some('#')) => {
                // Raw identifier `r#ident`.
                self.bump();
                self.bump();
                self.ident(line);
            }
            _ => self.ident(line),
        }
    }

    /// Whether the characters at `offset` begin the `#*"` tail of a raw
    /// string fence.
    fn raw_string_follows(&self, offset: usize) -> bool {
        let mut at = offset;
        while self.peek(at) == Some('#') {
            at += 1;
        }
        self.peek(at) == Some('"')
    }

    fn string(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn raw_string(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        let mut fences = 0usize;
        while self.peek(0) == Some('#') {
            fences += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut matched = 0;
                while matched < fences && self.peek(0) == Some('#') {
                    matched += 1;
                    text.push('#');
                    self.bump();
                }
                if matched == fences {
                    break;
                }
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Disambiguates `'a'` (char), `'\n'` (char) and `'a` / `'static`
    /// (lifetimes): after the quote, an identifier character *not*
    /// followed by a closing quote is a lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => after != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.char_literal(line, String::new());
        }
    }

    fn char_literal(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        text.push('\'');
        self.bump(); // opening quote
        match self.bump() {
            Some('\\') => {
                text.push('\\');
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                    if escaped == 'u' && self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    } else if matches!(escaped, 'x') {
                        for _ in 0..2 {
                            if let Some(c) = self.bump() {
                                text.push(c);
                            }
                        }
                    }
                }
            }
            Some(c) => text.push(c),
            None => {}
        }
        if self.peek(0) == Some('\'') {
            text.push('\'');
            self.bump();
        }
        self.push(TokenKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Number, text, line);
    }
}
