//! `deprecated-milestone`: `#[deprecated]` shims must name when they go
//! away.
//!
//! A deprecation without a removal plan lives forever. The lint
//! requires every `#[deprecated]` attribute's `note` to contain the
//! word `remove` together with a concrete milestone — `PR <n>` or a
//! `v<n>`-style version — e.g. `note = "use builder(); remove in PR 8"`.

use crate::filter::matching;
use crate::lexer::{Token, TokenKind};
use crate::Finding;

/// Runs the lint.
#[must_use]
pub fn check(file: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct('['))
            && matches!(tokens.get(i + 2), Some(t) if t.is_ident("deprecated"))
        {
            let close = matching(tokens, i + 1, '[', ']').unwrap_or(tokens.len() - 1);
            let note = note_value(&tokens[i + 2..close]);
            let ok = note.as_deref().is_some_and(has_removal_milestone);
            if !ok {
                findings.push(Finding {
                    lint: "deprecated-milestone",
                    file: file.to_string(),
                    line: tokens[i].line,
                    item: "deprecated".to_string(),
                    message: match note {
                        Some(_) => "`#[deprecated]` note names no removal milestone — say \
                                    e.g. `remove in PR 9`"
                            .to_string(),
                        None => "`#[deprecated]` without a `note` — document the replacement \
                                 and a removal milestone (e.g. `remove in PR 9`)"
                            .to_string(),
                    },
                });
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    findings
}

/// The `note = "…"` string inside a `deprecated` attribute body.
fn note_value(attr: &[Token]) -> Option<String> {
    for (i, token) in attr.iter().enumerate() {
        if token.is_ident("note") {
            let mut rest = attr[i + 1..].iter().filter(|t| !t.is_comment());
            if matches!(rest.next(), Some(t) if t.is_punct('=')) {
                if let Some(value) = rest.next() {
                    if value.kind == TokenKind::Str {
                        return Some(value.str_value().to_string());
                    }
                }
            }
        }
    }
    None
}

/// Whether the note contains `remove` plus a `PR <n>` or `v<n>`
/// milestone.
fn has_removal_milestone(note: &str) -> bool {
    let lower = note.to_lowercase();
    if !lower.contains("remove") {
        return false;
    }
    let bytes = lower.as_bytes();
    for (i, window) in bytes.windows(2).enumerate() {
        if window == b"pr" {
            let mut rest = lower[i + 2..].chars().skip_while(|c| c.is_whitespace());
            if rest.next().is_some_and(|c| c.is_ascii_digit()) {
                return true;
            }
        }
        if window[0] == b'v' && window[1].is_ascii_digit() {
            return true;
        }
    }
    false
}
