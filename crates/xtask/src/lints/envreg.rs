//! `env-registry`: every environment variable the code reads must be
//! documented in `docs/ENV.md`.
//!
//! Runtime knobs (`GRAPHHD_THREADS`, `GRAPHHD_FORCE_SCALAR`, …) shape
//! behaviour invisibly; the registry is the single checked-in place
//! that lists them all. The lint finds `std::env::var` / `env::var_os`
//! call sites, resolves the variable name (string literal, or a `const
//! NAME: &str = "…";` defined in the same file), and requires the
//! backticked name to appear in the registry. Unresolvable names are
//! findings too — dynamic env lookups hide knobs from the registry.

use crate::lexer::{Token, TokenKind};
use crate::Finding;

/// Runs the lint. `registry` is the contents of `docs/ENV.md` (or
/// `None` when the registry file is missing).
#[must_use]
pub fn check(file: &str, tokens: &[Token], registry: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !(token.is_ident("var") || token.is_ident("var_os")) {
            continue;
        }
        // Match the `env :: var` path tail.
        let mut before = tokens[..i].iter().rev().filter(|t| !t.is_comment());
        let (c1, c2, seg) = (before.next(), before.next(), before.next());
        let path_matches = matches!(c1, Some(t) if t.is_punct(':'))
            && matches!(c2, Some(t) if t.is_punct(':'))
            && matches!(seg, Some(t) if t.is_ident("env"));
        if !path_matches {
            continue;
        }
        let mut after = tokens[i + 1..].iter().filter(|t| !t.is_comment());
        if !matches!(after.next(), Some(t) if t.is_punct('(')) {
            continue;
        }
        let name = match after.next() {
            Some(arg) if arg.kind == TokenKind::Str => Some(arg.str_value().to_string()),
            Some(arg) if arg.kind == TokenKind::Ident => resolve_const(tokens, &arg.text),
            _ => None,
        };
        match name {
            Some(name) => {
                let registered = registry.is_some_and(|text| text.contains(&format!("`{name}`")));
                if !registered {
                    findings.push(Finding {
                        lint: "env-registry",
                        file: file.to_string(),
                        line: token.line,
                        item: name.clone(),
                        message: format!(
                            "env var `{name}` is read here but not registered in docs/ENV.md"
                        ),
                    });
                }
            }
            None => findings.push(Finding {
                lint: "env-registry",
                file: file.to_string(),
                line: token.line,
                item: "<dynamic>".to_string(),
                message: "env read whose variable name cannot be resolved to a literal \
                          (use a string literal or a same-file `const NAME: &str`)"
                    .to_string(),
            }),
        }
    }
    findings
}

/// The string value of `const <name>: … = "…";` defined in this file.
fn resolve_const(tokens: &[Token], name: &str) -> Option<String> {
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_ident("const") {
            continue;
        }
        let mut rest = tokens[i + 1..].iter().filter(|t| !t.is_comment());
        if !matches!(rest.next(), Some(t) if t.is_ident(name)) {
            continue;
        }
        // Scan a short window for the initializer literal.
        for t in rest.take(8) {
            if t.kind == TokenKind::Str {
                return Some(t.str_value().to_string());
            }
            if t.is_punct(';') {
                break;
            }
        }
    }
    None
}
