//! `no-panic`: library code must not contain panicking escape hatches.
//!
//! Flags `.unwrap()` / `.expect(…)` (and their `_err` twins) plus the
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros in
//! non-test library code. Test code — `#[cfg(test)]` modules, `#[test]`
//! functions — is exempt (see [`crate::filter`]), as are `assert!`-family
//! macros (contract checks are welcome). The few justified sites go in
//! the allowlist with a written reason; everything else should return
//! `graphhd::Error`-style results instead.

use crate::lexer::Token;
use crate::Finding;

/// Panicking methods (must be preceded by `.`).
const METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Panicking macros (must be followed by `!`).
const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the lint. `test_mask[i]` marks test-only tokens.
#[must_use]
pub fn check(file: &str, tokens: &[Token], test_mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false)
            || token.kind != crate::lexer::TokenKind::Ident
        {
            continue;
        }
        let name = token.text.as_str();
        let hit = if METHODS.contains(&name) {
            matches!(prev_code(tokens, i), Some(t) if t.is_punct('.'))
        } else if MACROS.contains(&name) {
            matches!(next_code(tokens, i), Some(t) if t.is_punct('!'))
        } else {
            false
        };
        if hit {
            findings.push(Finding {
                lint: "no-panic",
                file: file.to_string(),
                line: token.line,
                item: name.to_string(),
                message: format!(
                    "`{name}` in library code — return an error (or allowlist it with a reason)"
                ),
            });
        }
    }
    findings
}

fn prev_code(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[..i].iter().rev().find(|t| !t.is_comment())
}

fn next_code(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[i + 1..].iter().find(|t| !t.is_comment())
}
