//! `unsafe-safety`: every `unsafe` site must explain itself.
//!
//! - `unsafe { … }` blocks and `unsafe impl`/`unsafe trait` items need a
//!   comment containing `SAFETY:` within the five preceding source
//!   lines.
//! - `unsafe fn` declarations need either a doc comment with a
//!   `# Safety` section or an adjacent `SAFETY:` comment.
//! - A crate that uses `unsafe` at all must carry
//!   `#![deny(unsafe_op_in_unsafe_fn)]` on its root, so unsafe
//!   operations inside unsafe fns still need their own documented
//!   blocks (checked crate-wide in [`crate::audit`]).

use crate::lexer::Token;
use crate::Finding;

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const ADJACENCY_LINES: u32 = 5;

/// Runs the per-file part of the lint.
#[must_use]
pub fn check(file: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_ident("unsafe") {
            continue;
        }
        let next = tokens[i + 1..].iter().find(|t| !t.is_comment());
        let is_fn = matches!(next, Some(t) if t.is_ident("fn") || t.is_ident("extern"));
        let ok = if is_fn {
            has_safety_doc(tokens, i) || has_safety_comment(tokens, i, token.line)
        } else {
            has_safety_comment(tokens, i, token.line)
        };
        if !ok {
            let what = if is_fn { "fn" } else { "block" };
            findings.push(Finding {
                lint: "unsafe-safety",
                file: file.to_string(),
                line: token.line,
                item: "unsafe".to_string(),
                message: format!(
                    "`unsafe` {what} without an adjacent `// SAFETY:` comment{}",
                    if is_fn {
                        " (or a `# Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
    findings
}

/// Whether the nearest comment block above `line` (scanning tokens
/// before index `at`, allowing up to [`ADJACENCY_LINES`] of intervening
/// code — the start of the annotated statement) contains `SAFETY:`. A
/// contiguous run of comment lines counts as one block, however long.
fn has_safety_comment(tokens: &[Token], at: usize, line: u32) -> bool {
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if t.is_comment() {
            // Scan the whole contiguous comment run above this point.
            let mut j = i;
            loop {
                if tokens[j].text.contains("SAFETY:") {
                    return true;
                }
                if j == 0 || !tokens[j - 1].is_comment() {
                    return false;
                }
                j -= 1;
            }
        }
        if t.line + ADJACENCY_LINES < line {
            return false;
        }
    }
    false
}

/// Whether the doc comment block introducing the item at `at` has a
/// `# Safety` section. Walks back over attributes, comments and the
/// usual visibility/modifier tokens.
fn has_safety_doc(tokens: &[Token], at: usize) -> bool {
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if t.is_doc_comment() && t.text.contains("# Safety") {
            return true;
        }
        let skippable = t.is_comment()
            || t.is_ident("pub")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_punct('(')
            || t.is_punct(')')
            || t.is_punct(']')
            || t.is_punct('#')
            || within_attribute(tokens, i);
        if !skippable {
            return false;
        }
    }
    false
}

/// Whether token `i` sits inside an attribute (`#[ … ]`) — approximated
/// by looking back for an unclosed `[` preceded by `#`.
fn within_attribute(tokens: &[Token], i: usize) -> bool {
    let mut depth = 0isize;
    for t in tokens[..=i].iter().rev() {
        if t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('[') {
            if depth == 0 {
                return true;
            }
            depth -= 1;
        }
    }
    false
}
