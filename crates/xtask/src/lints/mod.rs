//! The audit's lint implementations. Each lint is a pure function from
//! a lexed file (plus whatever registry context it needs) to a list of
//! [`crate::Finding`]s; `crate::audit` wires them to the workspace and
//! the allowlist.

pub mod deprecated;
pub mod envreg;
pub mod panics;
pub mod pubdocs;
pub mod safety;
