//! `pub-docs`: the serving-surface crates must document every public
//! item.
//!
//! Applies to `hdvec`, `parallel`, `engine` and `graphhd` (the crates
//! other code builds against). An item is flagged when it is `pub`
//! (unrestricted), every enclosing module is `pub` too (or it sits at
//! the crate root), and no doc comment or `#[doc …]` attribute
//! introduces it. `pub use` re-exports and trait-body items are exempt;
//! `pub mod name;` declarations are satisfied by inner `//!` docs in the
//! referenced file.

use crate::filter::matching;
use crate::lexer::{Token, TokenKind};
use crate::Finding;
use std::path::Path;

/// Item-level contexts the walker descends into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// A `mod` block; `true` = the module itself is public.
    Mod(bool),
    /// An `impl` block.
    Impl,
}

/// A block the walker is currently inside: its context and the token
/// index of its closing brace.
#[derive(Debug)]
struct Scope {
    ctx: Ctx,
    close: usize,
}

/// What one item intro parsed to.
#[derive(Debug)]
struct Item {
    has_doc: bool,
    is_pub: bool,
    kind: String,
    name: String,
    line: u32,
    /// Index of the body's `{` (to descend or skip), if any.
    body_open: Option<usize>,
    /// First token index after the whole item.
    next: usize,
}

/// Runs the lint on one file. `file_path` is the on-disk path (used to
/// resolve `pub mod name;` targets), `file` the repo-relative label.
#[must_use]
pub fn check(file: &str, file_path: &Path, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(top) = scopes.last() {
            if i == top.close {
                scopes.pop();
                i += 1;
                continue;
            }
        }
        let item = match parse_item(tokens, i) {
            Some(item) => item,
            None => {
                i += 1;
                continue;
            }
        };
        let mods_public = scopes.iter().all(|s| !matches!(s.ctx, Ctx::Mod(false)));
        let effective_pub = item.is_pub && mods_public;
        let needs_doc = matches!(
            item.kind.as_str(),
            "fn" | "struct" | "enum" | "union" | "trait" | "type" | "const" | "static" | "mod"
        );
        if effective_pub && needs_doc && !item.has_doc && !mod_decl_has_inner_docs(&item, file_path)
        {
            findings.push(Finding {
                lint: "pub-docs",
                file: file.to_string(),
                line: item.line,
                item: item.name.clone(),
                message: format!("public {} `{}` has no doc comment", item.kind, item.name),
            });
        }
        match (item.kind.as_str(), item.body_open) {
            ("mod", Some(open)) => {
                if let Some(close) = matching(tokens, open, '{', '}') {
                    scopes.push(Scope {
                        ctx: Ctx::Mod(item.is_pub),
                        close,
                    });
                    i = open + 1;
                    continue;
                }
            }
            ("impl", Some(open)) => {
                if let Some(close) = matching(tokens, open, '{', '}') {
                    scopes.push(Scope {
                        ctx: Ctx::Impl,
                        close,
                    });
                    i = open + 1;
                    continue;
                }
            }
            _ => {}
        }
        i = item.next;
    }
    findings
}

/// Whether a `pub mod name;` declaration's target file opens with inner
/// (`//!`) docs.
fn mod_decl_has_inner_docs(item: &Item, file_path: &Path) -> bool {
    if item.kind != "mod" || item.body_open.is_some() {
        return false;
    }
    let dir = match file_path.parent() {
        Some(dir) => dir,
        None => return false,
    };
    let candidates = [
        dir.join(format!("{}.rs", item.name)),
        dir.join(&item.name).join("mod.rs"),
    ];
    candidates.iter().any(|path| {
        std::fs::read_to_string(path)
            .map(|text| text.trim_start().starts_with("//!"))
            .unwrap_or(false)
    })
}

/// Keywords that modify an item without being its kind.
const MODIFIERS: [&str; 5] = ["const", "async", "unsafe", "default", "extern"];

/// Item kinds the walker understands. `const` doubles as a modifier
/// (`const fn`) and is only the kind when no kind keyword follows.
const KINDS: [&str; 14] = [
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "type",
    "mod",
    "use",
    "impl",
    "const",
    "static",
    "macro",
    "macro_rules",
    "extern",
];

/// Parses one item intro starting at `start` (comments, attributes,
/// visibility, modifiers, kind keyword, name), and locates its body.
/// Returns `None` when `start` does not begin an item.
fn parse_item(tokens: &[Token], start: usize) -> Option<Item> {
    let mut i = start;
    let mut has_doc = false;
    // Leading trivia: doc comments and attributes.
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            has_doc |= t.is_doc_comment();
            i += 1;
        } else if t.is_punct('#') {
            let open = i + 1 + usize::from(matches!(tokens.get(i + 1), Some(n) if n.is_punct('!')));
            if !matches!(tokens.get(open), Some(n) if n.is_punct('[')) {
                return None;
            }
            let close = matching(tokens, open, '[', ']')?;
            has_doc |= tokens[open + 1..close].iter().any(|t| t.is_ident("doc"));
            i = close + 1;
        } else {
            break;
        }
    }
    // Anchor findings to the first non-trivia token, not to leading
    // comments that merely precede the item.
    let line = tokens.get(i)?.line;
    // Visibility.
    let mut is_pub = false;
    if matches!(tokens.get(i), Some(t) if t.is_ident("pub")) {
        is_pub = true;
        i += 1;
        if matches!(tokens.get(i), Some(t) if t.is_punct('(')) {
            // `pub(crate)` / `pub(super)` / `pub(in …)`: restricted.
            is_pub = false;
            i = matching(tokens, i, '(', ')')? + 1;
        }
    }
    // Modifiers, then the kind keyword. A `const` is only a modifier
    // when a kind keyword follows (`const fn` vs `const NAME`).
    let mut kind: Option<String> = None;
    while i < tokens.len() {
        let t = tokens.get(i)?;
        if t.kind != TokenKind::Ident {
            return None;
        }
        let word = t.text.as_str();
        let next_is_kind = matches!(
            tokens.get(i + 1),
            Some(n) if n.kind == TokenKind::Ident
                && (KINDS.contains(&n.text.as_str()) || MODIFIERS.contains(&n.text.as_str()))
        ) || matches!(
            (word, tokens.get(i + 1)),
            ("extern", Some(n)) if n.kind == TokenKind::Str
        );
        if MODIFIERS.contains(&word) && next_is_kind {
            i += 1;
            // `extern "C" fn`: skip the ABI string.
            if matches!(tokens.get(i), Some(n) if n.kind == TokenKind::Str) {
                i += 1;
            }
            continue;
        }
        if KINDS.contains(&word) {
            kind = Some(word.to_string());
            i += 1;
            break;
        }
        return None;
    }
    let kind = kind?;
    // Name (impl and use have none we need).
    let name = match kind.as_str() {
        "impl" | "use" | "extern" => String::new(),
        _ => {
            let t = tokens.get(i)?;
            if kind == "macro_rules" && t.is_punct('!') {
                tokens.get(i + 1)?.text.clone()
            } else if t.kind == TokenKind::Ident {
                t.text.clone()
            } else {
                String::new()
            }
        }
    };
    // Body: `type`/`const`/`static`/`use` end at `;` (skipping brace
    // groups in initializers); everything else ends at the first `{`
    // outside parens/brackets, or at `;` for declarations.
    let value_like = matches!(kind.as_str(), "type" | "const" | "static" | "use");
    let mut depth = 0isize;
    let mut j = i;
    let mut body_open = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.chars().next() {
                Some('(' | '[') => depth += 1,
                Some(')' | ']') => depth -= 1,
                Some('{') if depth == 0 => {
                    if value_like {
                        // Initializer expression block: skip it.
                        j = matching(tokens, j, '{', '}')?;
                    } else {
                        body_open = Some(j);
                        break;
                    }
                }
                Some(';') if depth == 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    let next = match body_open {
        Some(open) => matching(tokens, open, '{', '}').map_or(tokens.len(), |c| c + 1),
        None => j + 1,
    };
    Some(Item {
        has_doc,
        is_pub,
        kind,
        name,
        line,
        body_open,
        next,
    })
}
