//! Self-check: the live workspace must be clean under its own audit.
//!
//! This is the same check CI runs as `cargo xtask audit`; keeping it as
//! a test means `cargo test` alone catches regressions.

use std::path::Path;

#[test]
fn live_workspace_passes_its_own_audit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root");
    let findings = xtask::audit(root).expect("audit runs");
    assert!(
        findings.is_empty(),
        "audit found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
