// Fixture: every unsafe site here must be flagged by `unsafe-safety`.

pub fn undocumented_block(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

pub unsafe fn undocumented_fn(ptr: *const u8) -> u8 {
    *ptr
}

/// Documented, but the docs never explain the contract.
pub unsafe fn doc_without_safety_section(ptr: *const u8) -> u8 {
    *ptr
}

pub fn comment_too_far(ptr: *const u8) -> u8 {
    // SAFETY: this comment is stranded too many lines above the site,
    // with a full statement in between, so adjacency must not credit
    // it.
    let _unrelated = 1;
    let _also_unrelated = 2;
    let _more = 3;
    let _and_more = 4;
    let _padding = 5;
    let _final = 6;
    unsafe { *ptr }
}
