// Fixture: nothing here may trip `no-panic` — panics live only in test
// code, near-miss identifiers, comments, and strings.

/// `unwrap_or` and friends are not `unwrap`.
pub fn near_miss_idents(v: Option<u32>) -> u32 {
    let out = v.unwrap_or(0);
    let out = Some(out).unwrap_or_else(|| 0);
    Some(out).unwrap_or_default()
}

/// Mentions of panic!("…") and .unwrap() in comments are fine.
pub fn decoys() -> &'static str {
    // A comment saying x.unwrap() or panic!("no") must not count.
    "a string with .unwrap() and panic!(\"no\") inside"
}

/// `panic` as a path segment (no `!`) is not the macro.
pub fn panic_path() {
    let _ = std::panic::catch_unwind(|| 1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        v.expect("fine in tests");
        if false {
            panic!("fine in tests");
        }
    }
}

#[test]
fn top_level_test_may_unwrap() {
    let v: Option<u32> = Some(2);
    assert_eq!(v.unwrap(), 2);
}

#[cfg(not(test))]
pub fn not_test_is_library_code(v: Option<u32>) -> u32 {
    // This item is NOT test-gated (`not(test)`), so it stays library
    // code — but it contains no panics, keeping this a pass fixture.
    v.unwrap_or(7)
}
