// Fixture: everything public is documented (or exempt); `pub-docs`
// must stay quiet.

/// A documented function.
pub fn documented_fn() {}

/// A documented struct.
pub struct Documented;

impl Documented {
    /// A documented method.
    pub fn documented_method(&self) {}

    fn private_method(&self) {}
}

/// A documented module.
pub mod documented_mod {
    /// Nested and documented.
    pub fn nested() {}
}

mod private_mod {
    // Public-in-private is not part of the crate surface.
    pub fn not_really_public() {}
}

pub(crate) fn crate_visible() {}

#[doc = "Attribute docs count too."]
pub fn attr_documented() {}

pub use std::collections::HashMap;

/// Trait bodies are exempt from per-item doc checks.
pub trait DocumentedTrait {
    fn method(&self);
}
