// Fixture: every unsafe site here is documented; `unsafe-safety` must
// stay quiet.

pub fn documented_block(ptr: *const u8) -> u8 {
    // SAFETY: the caller upholds `ptr` validity; see fixture contract.
    unsafe { *ptr }
}

/// Reads one byte.
///
/// # Safety
///
/// `ptr` must be valid for reads.
pub unsafe fn documented_fn(ptr: *const u8) -> u8 {
    // SAFETY: validity is the caller's documented obligation.
    unsafe { *ptr }
}

pub fn multi_line_safety_block(ptr: *const u8) -> u8 {
    // SAFETY: a long argument can span many lines; the marker sits on
    // the first line of the run but the whole contiguous comment block
    // must count, even when the annotated statement itself adds a line
    // or two between the comment and the `unsafe` keyword — exactly
    // the `let x = unsafe { … }` shape below.
    let value = unsafe { *ptr };
    value
}

pub fn string_and_comment_decoys() -> &'static str {
    // The word below appears only in string/comment positions, so the
    // lint must not treat it as a keyword: "unsafe".
    "unsafe { not_code() }"
}
