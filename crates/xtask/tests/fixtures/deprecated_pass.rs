// Fixture: deprecations with concrete removal milestones;
// `deprecated-milestone` must stay quiet.

/// Milestone as a PR number.
#[deprecated(since = "0.1.0", note = "use `shiny` instead; remove in PR 9")]
pub fn pr_milestone() {}

/// Milestone as a version.
#[deprecated(note = "superseded by `better`; remove after v0.2 ships")]
pub fn version_milestone() {}
