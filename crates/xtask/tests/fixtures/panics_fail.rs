// Fixture: every panic site here is in library code and must be
// flagged by `no-panic`.

pub fn uses_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn uses_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn uses_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn uses_unreachable(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn uses_todo() {
    todo!()
}
