// Fixture: deprecations that must be flagged by `deprecated-milestone`.

/// No note at all.
#[deprecated]
pub fn bare() {}

/// A note that names the replacement but no removal milestone.
#[deprecated(since = "0.1.0", note = "use `shiny` instead")]
pub fn no_milestone() {}

/// Says "remove" but never says when.
#[deprecated(note = "will be removed eventually")]
pub fn vague_removal() {}
