// Fixture: env reads that must be flagged by `env-registry` (against a
// registry that only knows `GRAPHHD_REGISTERED`).

/// Reads a variable the registry has never heard of.
pub fn unregistered() -> Option<String> {
    std::env::var("GRAPHHD_UNREGISTERED").ok()
}

/// Reads through a same-file const that resolves to an unregistered
/// name.
pub const SECRET_ENV: &str = "GRAPHHD_SECRET_KNOB";

pub fn unregistered_via_const() -> Option<String> {
    std::env::var(SECRET_ENV).ok()
}

/// A dynamic name can never be checked against the registry.
pub fn dynamic(name: &str) -> Option<std::ffi::OsString> {
    std::env::var_os(name)
}
