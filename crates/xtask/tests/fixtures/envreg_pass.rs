// Fixture: env reads the registry (`GRAPHHD_REGISTERED`) covers, plus
// decoys that are not env reads at all.

/// Environment variable documented in the fixture registry.
pub const REGISTERED_ENV: &str = "GRAPHHD_REGISTERED";

/// Literal read of a registered name.
pub fn registered_literal() -> Option<String> {
    std::env::var("GRAPHHD_REGISTERED").ok()
}

/// Const-resolved read of a registered name.
pub fn registered_const() -> Option<std::ffi::OsString> {
    std::env::var_os(REGISTERED_ENV)
}

/// `env!` is a compile-time macro, not a runtime env read.
pub fn compile_time() -> &'static str {
    env!("CARGO_PKG_NAME")
}

/// A method named `var` on something that is not `env` is unrelated.
pub fn var_method_decoy(map: &std::collections::HashMap<String, f64>) -> f64 {
    struct Stats;
    impl Stats {
        fn var(&self, _: usize) -> f64 {
            0.0
        }
    }
    let _ = map;
    Stats.var(3)
}
