// Fixture: public items without docs; every one must be flagged by
// `pub-docs`.

pub fn undocumented_fn() {}

pub struct UndocumentedStruct;

pub enum UndocumentedEnum {
    A,
}

pub const UNDOCUMENTED_CONST: usize = 1;

pub mod undocumented_mod {
    pub fn undocumented_nested() {}
}

/// Documented wrapper type.
pub struct Wrapper;

impl Wrapper {
    pub fn undocumented_method(&self) {}
}
