//! Fixture tests: every lint must fire on its fail fixture (at the
//! expected sites) and stay quiet on its pass fixture.

use std::path::{Path, PathBuf};
use xtask::lexer::{self, Token};
use xtask::{filter, lints};

fn fixture(name: &str) -> (PathBuf, Vec<Token>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("fixture exists");
    let tokens = lexer::lex(&source);
    (path, tokens)
}

#[test]
fn safety_lint_fires_on_every_undocumented_site() {
    let (_, tokens) = fixture("safety_fail.rs");
    let findings = lints::safety::check("safety_fail.rs", &tokens);
    assert_eq!(
        findings.len(),
        4,
        "one finding per undocumented unsafe site: {findings:?}"
    );
    assert!(findings.iter().all(|f| f.lint == "unsafe-safety"));
}

#[test]
fn safety_lint_accepts_documented_sites_and_decoys() {
    let (_, tokens) = fixture("safety_pass.rs");
    let findings = lints::safety::check("safety_pass.rs", &tokens);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn panic_lint_fires_on_every_panicking_site() {
    let (_, tokens) = fixture("panics_fail.rs");
    let mask = filter::test_mask(&tokens);
    let findings = lints::panics::check("panics_fail.rs", &tokens, &mask);
    let items: Vec<&str> = findings.iter().map(|f| f.item.as_str()).collect();
    assert_eq!(
        items,
        ["unwrap", "expect", "panic", "unreachable", "todo"],
        "{findings:?}"
    );
}

#[test]
fn panic_lint_ignores_tests_near_misses_and_decoys() {
    let (_, tokens) = fixture("panics_pass.rs");
    let mask = filter::test_mask(&tokens);
    let findings = lints::panics::check("panics_pass.rs", &tokens, &mask);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn env_lint_fires_on_unregistered_and_dynamic_reads() {
    let (_, tokens) = fixture("envreg_fail.rs");
    let registry = "| `GRAPHHD_REGISTERED` | a knob |";
    let findings = lints::envreg::check("envreg_fail.rs", &tokens, Some(registry));
    let items: Vec<&str> = findings.iter().map(|f| f.item.as_str()).collect();
    assert_eq!(
        items,
        ["GRAPHHD_UNREGISTERED", "GRAPHHD_SECRET_KNOB", "<dynamic>"],
        "{findings:?}"
    );
}

#[test]
fn env_lint_accepts_registered_reads_and_decoys() {
    let (_, tokens) = fixture("envreg_pass.rs");
    let registry = "| `GRAPHHD_REGISTERED` | a knob |";
    let findings = lints::envreg::check("envreg_pass.rs", &tokens, Some(registry));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn env_lint_flags_everything_when_registry_is_missing() {
    let (_, tokens) = fixture("envreg_pass.rs");
    let findings = lints::envreg::check("envreg_pass.rs", &tokens, None);
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn deprecated_lint_fires_without_milestone() {
    let (_, tokens) = fixture("deprecated_fail.rs");
    let findings = lints::deprecated::check("deprecated_fail.rs", &tokens);
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn deprecated_lint_accepts_concrete_milestones() {
    let (_, tokens) = fixture("deprecated_pass.rs");
    let findings = lints::deprecated::check("deprecated_pass.rs", &tokens);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn pubdocs_lint_fires_on_every_undocumented_public_item() {
    let (path, tokens) = fixture("pubdocs_fail.rs");
    let findings = lints::pubdocs::check("pubdocs_fail.rs", &path, &tokens);
    let items: Vec<&str> = findings.iter().map(|f| f.item.as_str()).collect();
    assert_eq!(
        items,
        [
            "undocumented_fn",
            "UndocumentedStruct",
            "UndocumentedEnum",
            "UNDOCUMENTED_CONST",
            "undocumented_mod",
            "undocumented_nested",
            "undocumented_method",
        ],
        "{findings:?}"
    );
}

#[test]
fn pubdocs_lint_accepts_documented_restricted_and_private_items() {
    let (path, tokens) = fixture("pubdocs_pass.rs");
    let findings = lints::pubdocs::check("pubdocs_pass.rs", &path, &tokens);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn allowlist_suppresses_and_reports_stale_entries() {
    let (_, tokens) = fixture("panics_fail.rs");
    let mask = filter::test_mask(&tokens);
    let findings = lints::panics::check("panics_fail.rs", &tokens, &mask);
    let entries = xtask::allowlist::parse(
        "no-panic panics_fail.rs unwrap -- fixture justification\n\
         no-panic panics_fail.rs never_matches -- stale entry\n",
    )
    .expect("well-formed allowlist");
    let surviving = xtask::allowlist::apply(findings, &entries, "allow.txt");
    // `unwrap` suppressed; 4 original findings survive plus 1 stale
    // report.
    assert_eq!(surviving.len(), 5, "{surviving:?}");
    assert!(surviving.iter().any(|f| f.lint == "allowlist"));
    assert!(!surviving.iter().any(|f| f.item == "unwrap"));
}

#[test]
fn allowlist_rejects_malformed_lines() {
    assert!(xtask::allowlist::parse("no-panic file.rs unwrap").is_err());
    assert!(xtask::allowlist::parse("no-panic file.rs --  \n").is_err());
}

#[test]
fn lexer_handles_the_classic_hazards() {
    let tokens = lexer::lex(
        r##"
        // comment with "quote and unsafe
        let s = "str with // not a comment";
        let r = r#"raw "quoted" string"#;
        let b = b"bytes";
        let c = 'x';
        let esc = '\n';
        let lt: &'static str = "life";
        /* block /* nested */ still comment */
        let n = 0x1f_u64;
        "##,
    );
    let strings: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == lexer::TokenKind::Str)
        .map(|t| t.str_value())
        .collect();
    assert_eq!(
        strings,
        [
            "str with // not a comment",
            r#"raw "quoted" string"#,
            "bytes",
            "life"
        ]
    );
    assert!(tokens.iter().any(|t| t.kind == lexer::TokenKind::Lifetime));
    assert_eq!(
        tokens
            .iter()
            .filter(|t| t.kind == lexer::TokenKind::Char)
            .count(),
        2
    );
    assert_eq!(
        tokens
            .iter()
            .filter(|t| t.kind == lexer::TokenKind::BlockComment)
            .count(),
        1
    );
    assert!(!tokens.iter().any(|t| t.is_ident("unsafe")));
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let tokens = lexer::lex("let a = 1;\n/* two\nlines */\nlet b = 2;\n");
    let b_token = tokens
        .iter()
        .find(|t| t.is_ident("b"))
        .expect("token for b");
    assert_eq!(b_token.line, 4);
}
