//! Vertex-label-aware encoding (future-work direction 2 of Section VII).
//!
//! The baseline GraphHD deliberately ignores vertex labels to stay
//! uniform across datasets. Where labels exist, this extension binds each
//! vertex's *rank* hypervector with a *label* hypervector drawn from an
//! independent item memory:
//!
//! ```text
//! Enc_v(v) = H_rank(rank(v)) × H_label(label(v))
//! ```
//!
//! so two vertices must agree on both topology role *and* label to share
//! an encoding.

use crate::{Error, GraphEncoder, GraphHdConfig};
use graphcore::Graph;
use hdvec::{BitSliceAccumulator, Hypervector, ItemMemory};
use prng::mix_seed;

/// Encoder combining centrality ranks with vertex labels.
///
/// # Examples
///
/// ```
/// use graphhd::labeled::LabeledGraphEncoder;
/// use graphhd::GraphHdConfig;
/// use graphcore::generate;
///
/// let encoder = LabeledGraphEncoder::new(GraphHdConfig::default())?;
/// let graph = generate::cycle(6);
/// let uniform = vec![0u32; 6];
/// let alternating: Vec<u32> = (0..6).map(|v| v % 2).collect();
/// let a = encoder.encode(&graph, &uniform)?;
/// let b = encoder.encode(&graph, &alternating)?;
/// // Same topology, different labels: encodings diverge.
/// assert!(a.cosine(&b) < 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LabeledGraphEncoder {
    inner: GraphEncoder,
    label_memory: ItemMemory,
}

/// Error produced when the label vector does not match the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelCountError {
    /// Vertices in the graph.
    pub vertices: usize,
    /// Labels supplied.
    pub labels: usize,
}

impl core::fmt::Display for LabelCountError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "graph has {} vertices but {} labels were supplied",
            self.vertices, self.labels
        )
    }
}

impl std::error::Error for LabelCountError {}

impl LabeledGraphEncoder {
    /// Creates a label-aware encoder; the label memory uses an
    /// independent stream derived from the base seed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroDimension`] if `config.dim == 0`.
    pub fn new(config: GraphHdConfig) -> Result<Self, Error> {
        Ok(Self {
            label_memory: ItemMemory::new(config.dim, mix_seed(config.seed, 0x1A_BE1))
                .map_err(Error::from)?,
            inner: GraphEncoder::new(config)?,
        })
    }

    /// The underlying structural encoder.
    #[must_use]
    pub fn structural(&self) -> &GraphEncoder {
        &self.inner
    }

    /// Encodes a graph with per-vertex labels.
    ///
    /// # Errors
    ///
    /// Returns [`LabelCountError`] if `labels.len()` differs from the
    /// vertex count.
    pub fn encode(&self, graph: &Graph, labels: &[u32]) -> Result<Hypervector, LabelCountError> {
        if labels.len() != graph.vertex_count() {
            return Err(LabelCountError {
                vertices: graph.vertex_count(),
                labels: labels.len(),
            });
        }
        let config = self.inner.config();
        let ranks = self.inner.vertex_ranks(graph);
        // Same fast path as the structural encoder: bit-sliced bundling
        // and a reused edge buffer instead of per-edge allocations.
        let mut acc =
            BitSliceAccumulator::new(config.dim).expect("dimension validated at construction");
        let mut cache: Vec<Option<Hypervector>> = vec![None; graph.vertex_count()];
        let mut edge = Hypervector::positive(config.dim).expect("dimension validated");
        for (u, v) in graph.edges() {
            let (u, v) = (u as usize, v as usize);
            for w in [u, v] {
                if cache[w].is_none() {
                    let rank_hv = self.inner.memory().hypervector(u64::from(ranks[w]));
                    let label_hv = self.label_memory.hypervector(u64::from(labels[w]));
                    cache[w] = Some(rank_hv.bind(&label_hv));
                }
            }
            edge.clone_from(cache[u].as_ref().expect("filled above"));
            edge.bind_assign(cache[v].as_ref().expect("filled above"));
            acc.add(&edge);
        }
        Ok(acc.to_accumulator().to_hypervector(config.tie_break))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn encoder() -> LabeledGraphEncoder {
        LabeledGraphEncoder::new(
            GraphHdConfig::builder()
                .dim(4096)
                .build()
                .expect("valid dimension"),
        )
        .expect("valid dimension")
    }

    #[test]
    fn validates_label_count() {
        let e = encoder();
        let g = generate::path(4);
        assert_eq!(
            e.encode(&g, &[0, 1]).unwrap_err(),
            LabelCountError {
                vertices: 4,
                labels: 2
            }
        );
    }

    #[test]
    fn deterministic_and_label_sensitive() {
        let e = encoder();
        let g = generate::cycle(8);
        let l1 = vec![0u32; 8];
        let l2: Vec<u32> = (0..8u32).map(|v| v % 2).collect();
        assert_eq!(e.encode(&g, &l1).unwrap(), e.encode(&g, &l1).unwrap());
        let a = e.encode(&g, &l1).unwrap();
        let b = e.encode(&g, &l2).unwrap();
        assert!(a.cosine(&b) < 0.9, "cosine {}", a.cosine(&b));
    }

    #[test]
    fn uniform_labels_cancel_under_binding() {
        // A known property of multiplicative binding: the edge encoding
        // (r_u × l_u) × (r_v × l_v) reduces to r_u × r_v whenever
        // l_u = l_v, because binding is self-inverse. Hence *uniform*
        // labelings — any label value — collapse to the structural
        // encoding; only label *variation along edges* is visible.
        let e = encoder();
        let g = generate::cycle(6);
        let structural = e.structural().encode(&g);
        let all_zero = e.encode(&g, &[0u32; 6]).unwrap();
        let all_one = e.encode(&g, &[1u32; 6]).unwrap();
        assert_eq!(all_zero, structural);
        assert_eq!(all_one, structural);
    }

    #[test]
    fn separates_label_patterns_in_a_model_setting() {
        // Same topology (cycle), classes differ only in label pattern.
        let e = encoder();
        let g = generate::cycle(10);
        let uniform = vec![0u32; 10];
        let alternating: Vec<u32> = (0..10u32).map(|v| v % 2).collect();
        let enc_uniform = e.encode(&g, &uniform).unwrap();
        let enc_alternating = e.encode(&g, &alternating).unwrap();
        // A nearest-class-vector rule built from one example per class
        // classifies both patterns correctly.
        let query_u = e.encode(&g, &uniform).unwrap();
        assert!(query_u.cosine(&enc_uniform) > query_u.cosine(&enc_alternating));
    }
}
