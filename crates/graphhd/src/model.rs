//! GraphHD training (Algorithm 1) and inference, plus the retraining
//! extension (future-work direction 1 of Section VII).

use crate::{GraphEncoder, GraphHdConfig};
use graphcore::Graph;
use hdvec::{Accumulator, Hypervector};

/// Errors produced when fitting a [`GraphHdModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Graph and label counts differ.
    LengthMismatch {
        /// Number of graphs supplied.
        graphs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label was `>= num_classes`.
    LabelOutOfRange {
        /// Index of the offending sample.
        index: usize,
        /// The label value.
        label: u32,
        /// Declared class count.
        num_classes: usize,
    },
    /// `num_classes` was zero.
    ZeroClasses,
    /// The configured hypervector dimension was zero.
    ZeroDimension,
}

impl core::fmt::Display for TrainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "cannot train on zero graphs"),
            TrainError::LengthMismatch { graphs, labels } => {
                write!(f, "{graphs} graphs but {labels} labels")
            }
            TrainError::LabelOutOfRange {
                index,
                label,
                num_classes,
            } => write!(
                f,
                "label {label} at index {index} out of range for {num_classes} classes"
            ),
            TrainError::ZeroClasses => write!(f, "need at least one class"),
            TrainError::ZeroDimension => write!(f, "hypervector dimension must be positive"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Outcome of a [`GraphHdModel::retrain`] run: mistakes per epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrainReport {
    /// Number of misclassified training samples in each epoch.
    pub epoch_errors: Vec<usize>,
}

impl RetrainReport {
    /// Whether the final epoch made no mistakes (training converged).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.epoch_errors.last().is_some_and(|&e| e == 0)
    }
}

/// A trained GraphHD model: one class vector per class (Section III-B /
/// Algorithm 1), with the underlying integer accumulators retained so the
/// retraining extension can update them.
///
/// A usage example lives in the [crate documentation](crate).
#[derive(Debug, Clone)]
pub struct GraphHdModel {
    encoder: GraphEncoder,
    class_accumulators: Vec<Accumulator>,
    class_vectors: Vec<Hypervector>,
}

impl GraphHdModel {
    /// Trains per Algorithm 1: encode every training graph, bundle the
    /// graph hypervectors of each class into its class vector.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] for inconsistent inputs.
    pub fn fit(
        config: GraphHdConfig,
        graphs: &[&Graph],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Self, TrainError> {
        let encoder = GraphEncoder::new(config).map_err(|_| TrainError::ZeroDimension)?;
        let encodings = Self::validate_and_encode(&encoder, graphs, labels, num_classes)?;
        Ok(Self::fit_encoded(encoder, &encodings, labels, num_classes))
    }

    /// Trains from precomputed graph hypervectors (exposed so pipelines
    /// that already hold encodings — retraining loops, ablations — skip
    /// the redundant encode pass).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or labels are out of range (callers
    /// going through [`fit`](Self::fit) are validated with errors).
    #[must_use]
    pub fn fit_encoded(
        encoder: GraphEncoder,
        encodings: &[Hypervector],
        labels: &[u32],
        num_classes: usize,
    ) -> Self {
        assert_eq!(encodings.len(), labels.len(), "encoding/label mismatch");
        let dim = encoder.config().dim;
        let mut class_accumulators: Vec<Accumulator> = (0..num_classes)
            .map(|_| Accumulator::new(dim).expect("validated dimension"))
            .collect();
        for (hv, &label) in encodings.iter().zip(labels) {
            class_accumulators[label as usize].add(hv);
        }
        let tie = encoder.config().tie_break;
        let class_vectors = class_accumulators
            .iter()
            .map(|acc| acc.to_hypervector(tie))
            .collect();
        Self {
            encoder,
            class_accumulators,
            class_vectors,
        }
    }

    fn validate_and_encode(
        encoder: &GraphEncoder,
        graphs: &[&Graph],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Vec<Hypervector>, TrainError> {
        if num_classes == 0 {
            return Err(TrainError::ZeroClasses);
        }
        if graphs.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        if graphs.len() != labels.len() {
            return Err(TrainError::LengthMismatch {
                graphs: graphs.len(),
                labels: labels.len(),
            });
        }
        if let Some((index, &label)) = labels
            .iter()
            .enumerate()
            .find(|(_, &l)| l as usize >= num_classes)
        {
            return Err(TrainError::LabelOutOfRange {
                index,
                label,
                num_classes,
            });
        }
        Ok(encoder.encode_all(graphs))
    }

    /// The encoder (shared between training and inference, as the paper
    /// requires).
    #[must_use]
    pub fn encoder(&self) -> &GraphEncoder {
        &self.encoder
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.class_vectors.len()
    }

    /// The trained class vectors.
    #[must_use]
    pub fn class_vectors(&self) -> &[Hypervector] {
        &self.class_vectors
    }

    /// Cosine similarity of an already-encoded query to every class.
    #[must_use]
    pub fn scores_encoded(&self, query: &Hypervector) -> Vec<f64> {
        self.class_vectors.iter().map(|c| c.cosine(query)).collect()
    }

    /// Cosine similarity of a graph to every class vector.
    #[must_use]
    pub fn scores(&self, graph: &Graph) -> Vec<f64> {
        self.scores_encoded(&self.encoder.encode(graph))
    }

    /// Predicts the class of an already-encoded query (ties go to the
    /// lower class id).
    #[must_use]
    pub fn predict_encoded(&self, query: &Hypervector) -> u32 {
        let scores = self.scores_encoded(query);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Predicts the class of a graph — `pred(y)` of Section III-C.
    #[must_use]
    pub fn predict(&self, graph: &Graph) -> u32 {
        self.predict_encoded(&self.encoder.encode(graph))
    }

    /// Predicts many graphs, encoding in parallel.
    #[must_use]
    pub fn predict_all(&self, graphs: &[&Graph]) -> Vec<u32> {
        self.encoder
            .encode_all(graphs)
            .iter()
            .map(|hv| self.predict_encoded(hv))
            .collect()
    }

    /// The retraining extension (Section VII, direction 1): perceptron-
    /// style refinement. For each epoch, every mispredicted training
    /// sample is *added* to its true class accumulator and *subtracted*
    /// from the wrongly predicted one; class vectors are re-thresholded
    /// after each mistake.
    ///
    /// Returns the per-epoch mistake counts. Stops early when an epoch is
    /// mistake-free.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a label is out of range.
    pub fn retrain(
        &mut self,
        encodings: &[Hypervector],
        labels: &[u32],
        epochs: usize,
    ) -> RetrainReport {
        assert_eq!(encodings.len(), labels.len(), "encoding/label mismatch");
        assert!(
            labels.iter().all(|&l| (l as usize) < self.num_classes()),
            "label out of range"
        );
        let tie = self.encoder.config().tie_break;
        let mut epoch_errors = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut errors = 0usize;
            for (hv, &label) in encodings.iter().zip(labels) {
                let predicted = self.predict_encoded(hv);
                if predicted != label {
                    errors += 1;
                    self.class_accumulators[label as usize].add(hv);
                    self.class_accumulators[predicted as usize].sub(hv);
                    self.class_vectors[label as usize] =
                        self.class_accumulators[label as usize].to_hypervector(tie);
                    self.class_vectors[predicted as usize] =
                        self.class_accumulators[predicted as usize].to_hypervector(tie);
                }
            }
            epoch_errors.push(errors);
            if errors == 0 {
                break;
            }
        }
        RetrainReport { epoch_errors }
    }

    /// Replaces every class vector with a noisy copy (each bit flipped
    /// independently with probability `rate`) — the fault-injection hook
    /// behind the robustness experiment A3.
    #[must_use]
    pub fn with_noisy_class_vectors<R: prng::WordRng>(&self, rate: f64, rng: &mut R) -> Self {
        let mut noisy = self.clone();
        for class_vector in &mut noisy.class_vectors {
            class_vector.add_noise(rate, rng);
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;
    use prng::Xoshiro256PlusPlus;

    fn toy() -> (Vec<Graph>, Vec<u32>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..16 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn fit_toy(dim: usize) -> (GraphHdModel, Vec<Graph>, Vec<u32>) {
        let (graphs, labels) = toy();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let model = GraphHdModel::fit(GraphHdConfig::with_dim(dim), &refs, &labels, 2)
            .expect("valid inputs");
        (model, graphs, labels)
    }

    #[test]
    fn fit_validates_inputs() {
        let g = generate::path(3);
        let config = GraphHdConfig::default();
        assert_eq!(
            GraphHdModel::fit(config, &[], &[], 2).unwrap_err(),
            TrainError::EmptyTrainingSet
        );
        assert_eq!(
            GraphHdModel::fit(config, &[&g], &[], 2).unwrap_err(),
            TrainError::LengthMismatch {
                graphs: 1,
                labels: 0
            }
        );
        assert_eq!(
            GraphHdModel::fit(config, &[&g], &[7], 2).unwrap_err(),
            TrainError::LabelOutOfRange {
                index: 0,
                label: 7,
                num_classes: 2
            }
        );
        assert_eq!(
            GraphHdModel::fit(config, &[&g], &[0], 0).unwrap_err(),
            TrainError::ZeroClasses
        );
        assert_eq!(
            GraphHdModel::fit(GraphHdConfig::with_dim(0), &[&g], &[0], 1).unwrap_err(),
            TrainError::ZeroDimension
        );
    }

    #[test]
    fn separable_task_is_learned() {
        let (model, graphs, labels) = fit_toy(10_000);
        let refs: Vec<&Graph> = graphs.iter().collect();
        let predictions = model.predict_all(&refs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "training accuracy {accuracy}");
        // Held-out sizes generalise.
        assert_eq!(model.predict(&generate::complete(20)), 0);
        assert_eq!(model.predict(&generate::path(20)), 1);
    }

    #[test]
    fn scores_align_with_prediction() {
        let (model, _, _) = fit_toy(4096);
        let g = generate::complete(11);
        let scores = model.scores(&g);
        assert_eq!(scores.len(), 2);
        let predicted = model.predict(&g);
        assert!(scores[predicted as usize] >= scores[1 - predicted as usize]);
    }

    #[test]
    fn training_is_deterministic() {
        let (a, _, _) = fit_toy(2048);
        let (b, _, _) = fit_toy(2048);
        assert_eq!(a.class_vectors(), b.class_vectors());
    }

    #[test]
    fn retrain_reduces_errors_on_hard_task() {
        // A harder task: same density, different motif structure.
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for i in 0..40 {
            let base = generate::erdos_renyi(20, 0.15, &mut rng).expect("valid p");
            if i % 2 == 0 {
                graphs.push(base);
                labels.push(0u32);
            } else {
                graphs.push(generate::with_planted_triangles(&base, 6, &mut rng).expect("n >= 3"));
                labels.push(1u32);
            }
        }
        let refs: Vec<&Graph> = graphs.iter().collect();
        let config = GraphHdConfig::with_dim(4096);
        let encoder = GraphEncoder::new(config).expect("valid config");
        let encodings = encoder.encode_all(&refs);
        let mut model = GraphHdModel::fit_encoded(encoder, &encodings, &labels, 2);

        let before: usize = encodings
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict_encoded(hv) != l)
            .count();
        let report = model.retrain(&encodings, &labels, 20);
        let after: usize = encodings
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict_encoded(hv) != l)
            .count();
        assert!(
            after <= before,
            "retraining must not increase training errors ({before} -> {after})"
        );
        assert!(!report.epoch_errors.is_empty());
    }

    #[test]
    fn retrain_converged_flag() {
        let (mut model, graphs, labels) = fit_toy(4096);
        let refs: Vec<&Graph> = graphs.iter().collect();
        let encodings = model.encoder().encode_all(&refs);
        let report = model.retrain(&encodings, &labels, 50);
        assert!(report.converged(), "separable task should converge");
    }

    #[test]
    fn noise_injection_keeps_dimensions() {
        let (model, _, _) = fit_toy(1024);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let noisy = model.with_noisy_class_vectors(0.2, &mut rng);
        assert_eq!(noisy.num_classes(), model.num_classes());
        for (a, b) in noisy.class_vectors().iter().zip(model.class_vectors()) {
            assert_eq!(a.dim(), b.dim());
            assert_ne!(a, b, "20% noise should change the vectors");
        }
    }

    #[test]
    fn robustness_to_moderate_noise() {
        // The HDC robustness claim: 10% of flipped class-vector bits
        // barely moves accuracy on a separable task.
        let (model, graphs, labels) = fit_toy(10_000);
        let refs: Vec<&Graph> = graphs.iter().collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let noisy = model.with_noisy_class_vectors(0.10, &mut rng);
        let predictions = noisy.predict_all(&refs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "accuracy under noise {accuracy}");
    }
}
