//! GraphHD training (Algorithm 1) and inference, plus the retraining
//! extension (future-work direction 1 of Section VII).

use crate::select::argmax_tie_low;
use crate::{Error, GraphEncoder, GraphHdConfig};
use graphcore::Graph;
use hdvec::{Accumulator, ClassMemory, Hypervector};
use parallel::Pool;
use std::borrow::Borrow;
use std::sync::Arc;

/// Below this many samples per chunk, sharding the class accumulators
/// costs more (one `num_classes × dim` counter block per chunk) than the
/// parallel bundling saves.
const FIT_MIN_CHUNK: usize = 16;

/// Scoring one query against the class vectors is cheap (a few popcount
/// sweeps), so prediction maps batch several queries per stealable unit.
const PREDICT_MIN_CHUNK: usize = 8;

/// Outcome of a [`GraphHdModel::retrain`] run: mistakes per epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrainReport {
    /// Number of misclassified training samples in each epoch.
    pub epoch_errors: Vec<usize>,
}

impl RetrainReport {
    /// Whether the final epoch made no mistakes (training converged).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.epoch_errors.last().is_some_and(|&e| e == 0)
    }
}

/// A trained GraphHD model: one class vector per class (Section III-B /
/// Algorithm 1), with the underlying integer accumulators retained so the
/// retraining extension can update them.
///
/// A usage example lives in the [crate documentation](crate).
#[derive(Debug, Clone)]
pub struct GraphHdModel {
    encoder: GraphEncoder,
    class_accumulators: Vec<Accumulator>,
    /// The single store of the trained class vectors: contiguous copies
    /// for per-vector access plus the word-interleaved lanes the blocked
    /// multi-query scoring runs on. Retraining rewrites the affected
    /// entries in place via [`ClassMemory::set`].
    class_memory: ClassMemory,
}

impl GraphHdModel {
    /// Trains per Algorithm 1: encode every training graph, bundle the
    /// graph hypervectors of each class into its class vector. Accepts
    /// both `&[Graph]` and `&[&Graph]`.
    ///
    /// Encoding and bundling run on the global pool; see
    /// [`fit_with_encoder`](Self::fit_with_encoder) to pin a pool. The
    /// result is bit-identical to a serial fit at every thread count
    /// (bundling is order-independent integer addition).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for inconsistent inputs.
    pub fn fit<G: Borrow<Graph> + Sync>(
        config: GraphHdConfig,
        graphs: &[G],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Self, Error> {
        let encoder = GraphEncoder::new(config)?;
        Self::fit_with_encoder(encoder, graphs, labels, num_classes)
    }

    /// As [`fit`](Self::fit), but training through an existing encoder —
    /// the entry point for pinning an explicit
    /// [`Pool`](parallel::Pool) via
    /// [`GraphEncoder::with_pool`]: the fitted model inherits the
    /// encoder's pool for all batch operations.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for inconsistent inputs.
    pub fn fit_with_encoder<G: Borrow<Graph> + Sync>(
        encoder: GraphEncoder,
        graphs: &[G],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Self, Error> {
        let encodings = Self::validate_and_encode(&encoder, graphs, labels, num_classes)?;
        Ok(Self::fit_encoded(encoder, &encodings, labels, num_classes))
    }

    /// As [`fit_with_encoder`](Self::fit_with_encoder), followed by
    /// `epochs` perceptron [`retrain`](Self::retrain) epochs over the
    /// training set — encoded **once** and reused, since encoding
    /// dominates training cost. The single owner of the encode-once
    /// retraining sequence shared by the harness classifier and the
    /// serving engine builder.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for inconsistent inputs.
    pub fn fit_with_retraining<G: Borrow<Graph> + Sync>(
        encoder: GraphEncoder,
        graphs: &[G],
        labels: &[u32],
        num_classes: usize,
        epochs: usize,
    ) -> Result<Self, Error> {
        Self::validate_inputs(graphs.len(), labels, num_classes)?;
        let encodings = encoder.encode_all(graphs);
        let mut model = Self::fit_encoded(encoder, &encodings, labels, num_classes);
        if epochs > 0 {
            let _ = model.retrain(&encodings, labels, epochs);
        }
        Ok(model)
    }

    /// Trains from precomputed graph hypervectors (exposed so pipelines
    /// that already hold encodings — retraining loops, ablations — skip
    /// the redundant encode pass).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, labels are out of range, or
    /// `num_classes == 0` (a model needs at least one class-memory lane;
    /// callers going through [`fit`](Self::fit) are validated with
    /// errors).
    #[must_use]
    pub fn fit_encoded(
        encoder: GraphEncoder,
        encodings: &[Hypervector],
        labels: &[u32],
        num_classes: usize,
    ) -> Self {
        assert_eq!(encodings.len(), labels.len(), "encoding/label mismatch");
        crate::metrics::metrics().fits.inc();
        let _fit_span = crate::metrics::metrics().fit_ns.start_span();
        let dim = encoder.config().dim;
        let fresh = || -> Vec<Accumulator> {
            (0..num_classes)
                .map(|_| Accumulator::new(dim).expect("validated dimension"))
                .collect()
        };
        // Sharded parallel bundling: each chunk folds its samples into its
        // own set of class accumulators, and the shards are merged with
        // `Accumulator::merge` in chunk order. Bundling is integer
        // addition, so the merged counters — and therefore the class
        // vectors — are bit-identical to the serial loop at every thread
        // count.
        let class_accumulators = encoder.pool().par_fold_reduce(
            encodings,
            FIT_MIN_CHUNK,
            fresh,
            |mut shard, index, hv| {
                shard[labels[index] as usize].add(hv);
                shard
            },
            |mut left, right| {
                for (acc, other) in left.iter_mut().zip(&right) {
                    acc.merge(other);
                }
                left
            },
        );
        let tie = encoder.config().tie_break;
        let class_vectors: Vec<Hypervector> = class_accumulators
            .iter()
            .map(|acc| acc.to_hypervector(tie))
            .collect();
        let class_memory =
            ClassMemory::from_vectors(&class_vectors).expect("at least one validated class");
        Self {
            encoder,
            class_accumulators,
            class_memory,
        }
    }

    /// Rebuilds a model from already-thresholded class vectors — the
    /// snapshot load path. The integer accumulators restart from the
    /// stored vectors (each counted once), so predictions are
    /// bit-identical to the saved model while a subsequent
    /// [`retrain`](Self::retrain) starts from ±1 counters rather than
    /// the original training counts (snapshots store the deployable
    /// artifact, not the training state).
    pub(crate) fn from_class_vectors(
        encoder: GraphEncoder,
        class_vectors: &[Hypervector],
    ) -> Result<Self, Error> {
        if class_vectors.is_empty() {
            return Err(Error::ZeroClasses);
        }
        let dim = encoder.config().dim;
        let mut class_accumulators = Vec::with_capacity(class_vectors.len());
        for hv in class_vectors {
            if hv.dim() != dim {
                return Err(Error::Hdv(hdvec::HdvError::DimensionMismatch {
                    left: dim,
                    right: hv.dim(),
                }));
            }
            let mut acc = Accumulator::new(dim)?;
            acc.add(hv);
            class_accumulators.push(acc);
        }
        let class_memory = ClassMemory::from_vectors(class_vectors)?;
        Ok(Self {
            encoder,
            class_accumulators,
            class_memory,
        })
    }

    /// Pins all batch operations of this model to an explicit pool —
    /// the serving-engine hook for running a loaded snapshot on a
    /// dedicated thread pool instead of the process-wide global one.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.encoder = self.encoder.clone().with_pool(pool);
        self
    }

    /// The validation half of [`fit`](Self::fit), shared with callers
    /// (e.g. the harness classifier) that encode themselves and go
    /// through [`fit_encoded`](Self::fit_encoded).
    pub(crate) fn validate_inputs(
        graph_count: usize,
        labels: &[u32],
        num_classes: usize,
    ) -> Result<(), Error> {
        crate::validate_fit_inputs(graph_count, labels, num_classes)
    }

    fn validate_and_encode<G: Borrow<Graph> + Sync>(
        encoder: &GraphEncoder,
        graphs: &[G],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Vec<Hypervector>, Error> {
        Self::validate_inputs(graphs.len(), labels, num_classes)?;
        Ok(encoder.encode_all(graphs))
    }

    /// The encoder (shared between training and inference, as the paper
    /// requires).
    #[must_use]
    pub fn encoder(&self) -> &GraphEncoder {
        &self.encoder
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.class_memory.len()
    }

    /// The trained class vectors.
    #[must_use]
    pub fn class_vectors(&self) -> &[Hypervector] {
        self.class_memory.vectors()
    }

    /// Cosine similarity of an already-encoded query to every class.
    ///
    /// Runs on the blocked [`ClassMemory`] engine: each query word is
    /// read once per 8-class block instead of once per class, and the
    /// XOR+popcount kernel underneath is SIMD-dispatched. Bit-identical
    /// to the naive per-class [`Hypervector::cosine`] loop.
    #[must_use]
    pub fn scores_encoded(&self, query: &Hypervector) -> Vec<f64> {
        self.class_memory.cosine_many(query)
    }

    /// As [`scores_encoded`](Self::scores_encoded), writing into a
    /// caller-provided buffer — the allocation-free entry point for
    /// serving loops that score many queries against one model.
    pub fn scores_encoded_into(&self, query: &Hypervector, out: &mut Vec<f64>) {
        self.class_memory.cosine_many_into(query, out);
    }

    /// Cosine similarity of a graph to every class vector.
    #[must_use]
    pub fn scores(&self, graph: &Graph) -> Vec<f64> {
        self.scores_encoded(&self.encoder.encode(graph))
    }

    /// Predicts the class of an already-encoded query (ties go to the
    /// lower class id).
    #[must_use]
    pub fn predict_encoded(&self, query: &Hypervector) -> u32 {
        crate::metrics::metrics().predictions.inc();
        argmax_tie_low(&self.scores_encoded(query)).expect("models always have >= 1 class") as u32
    }

    /// Predicts the class of a graph — `pred(y)` of Section III-C.
    #[must_use]
    pub fn predict(&self, graph: &Graph) -> u32 {
        self.predict_encoded(&self.encoder.encode(graph))
    }

    /// Predicts many graphs: encoding and scoring both run in parallel on
    /// the model's pool. Accepts both `&[Graph]` and `&[&Graph]`; the
    /// result is identical to mapping [`predict`](Self::predict).
    #[must_use]
    pub fn predict_all<G: Borrow<Graph> + Sync>(&self, graphs: &[G]) -> Vec<u32> {
        let encodings = self.encoder.encode_all(graphs);
        self.predict_encoded_all(&encodings)
    }

    /// Predicts a batch of owned graphs — the ergonomic entry point for
    /// callers holding a `Vec<Graph>`, who previously had to build a
    /// `Vec<&Graph>` just to call [`predict_all`](Self::predict_all).
    #[must_use]
    pub fn predict_batch(&self, graphs: &[Graph]) -> Vec<u32> {
        self.predict_all(graphs)
    }

    /// Scores and classifies many already-encoded queries: parallel over
    /// queries on the model's pool, blocked+SIMD within each query via
    /// [`ClassMemory`].
    #[must_use]
    pub fn predict_encoded_all(&self, queries: &[Hypervector]) -> Vec<u32> {
        self.encoder
            .pool()
            .par_map_chunked(queries, PREDICT_MIN_CHUNK, |hv| self.predict_encoded(hv))
    }

    /// The retraining extension (Section VII, direction 1): perceptron-
    /// style refinement. For each epoch, every mispredicted training
    /// sample is *added* to its true class accumulator and *subtracted*
    /// from the wrongly predicted one; class vectors are re-thresholded
    /// after each mistake.
    ///
    /// The training loop is inherently sequential (each update changes
    /// the model the next sample is scored against), so parallelism here
    /// is *speculative*: a block of queries is scored concurrently against
    /// the frozen model, the predictions are consumed in order, and on the
    /// first mistake the rest of the block is discarded and re-scored
    /// against the updated model. The block size adapts — it resets to 1
    /// after a block containing a mistake and doubles after each clean
    /// block — so dense-error phases (early epochs) cost the same as the
    /// plain serial loop while sparse-error phases speculate at full
    /// width; on a 1-thread pool the width is pinned to 1 (speculation
    /// can never pay there). The sequence of updates — and therefore the
    /// report and the final model — is bit-identical to the serial loop
    /// at every thread count.
    ///
    /// Returns the per-epoch mistake counts. Stops early when an epoch is
    /// mistake-free.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a label is out of range.
    pub fn retrain(
        &mut self,
        encodings: &[Hypervector],
        labels: &[u32],
        epochs: usize,
    ) -> RetrainReport {
        assert_eq!(encodings.len(), labels.len(), "encoding/label mismatch");
        assert!(
            labels.iter().all(|&l| (l as usize) < self.num_classes()),
            "label out of range"
        );
        let tie = self.encoder.config().tie_break;
        let threads = self.encoder.pool().threads();
        let max_speculation = if threads <= 1 {
            1
        } else {
            (threads * PREDICT_MIN_CHUNK).max(16)
        };
        let mut epoch_errors = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut errors = 0usize;
            let mut index = 0usize;
            // Window of 1 is exactly the serial loop; it widens only while
            // predictions keep coming back correct.
            let mut window = 1usize;
            while index < encodings.len() {
                let end = usize::min(index + window, encodings.len());
                let predictions = self.predict_encoded_all(&encodings[index..end]);
                let mut advanced = end;
                let mut block_was_clean = true;
                for (offset, predicted) in predictions.into_iter().enumerate() {
                    let sample = index + offset;
                    let label = labels[sample];
                    if predicted != label {
                        errors += 1;
                        let hv = &encodings[sample];
                        self.class_accumulators[label as usize].add(hv);
                        self.class_accumulators[predicted as usize].sub(hv);
                        // Re-threshold the two touched classes and write
                        // them back into their scoring lanes.
                        self.class_memory.set(
                            label as usize,
                            &self.class_accumulators[label as usize].to_hypervector(tie),
                        );
                        self.class_memory.set(
                            predicted as usize,
                            &self.class_accumulators[predicted as usize].to_hypervector(tie),
                        );
                        // The model changed: predictions speculated past
                        // this sample are stale. Resume after it.
                        advanced = sample + 1;
                        block_was_clean = false;
                        break;
                    }
                }
                window = if block_was_clean {
                    (window * 2).min(max_speculation)
                } else {
                    1
                };
                index = advanced;
            }
            crate::metrics::metrics().retrain_epochs.inc();
            crate::metrics::metrics()
                .retrain_epoch_errors
                .record(errors as u64);
            epoch_errors.push(errors);
            if errors == 0 {
                break;
            }
        }
        RetrainReport { epoch_errors }
    }

    /// Replaces every class vector with a noisy copy (each bit flipped
    /// independently with probability `rate`) — the fault-injection hook
    /// behind the robustness experiment A3.
    #[must_use]
    pub fn with_noisy_class_vectors<R: prng::WordRng>(&self, rate: f64, rng: &mut R) -> Self {
        let mut noisy = self.clone();
        for class in 0..noisy.num_classes() {
            let mut class_vector = noisy.class_memory.get(class).clone();
            class_vector.add_noise(rate, rng);
            noisy.class_memory.set(class, &class_vector);
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;
    use prng::Xoshiro256PlusPlus;

    fn toy() -> (Vec<Graph>, Vec<u32>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..16 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn fit_toy(dim: usize) -> (GraphHdModel, Vec<Graph>, Vec<u32>) {
        let (graphs, labels) = toy();
        let model = GraphHdModel::fit(
            GraphHdConfig::builder()
                .dim(dim)
                .build()
                .expect("valid dimension"),
            &graphs,
            &labels,
            2,
        )
        .expect("valid inputs");
        (model, graphs, labels)
    }

    #[test]
    fn fit_validates_inputs() {
        let g = generate::path(3);
        let config = GraphHdConfig::default();
        assert_eq!(
            GraphHdModel::fit::<&Graph>(config, &[], &[], 2).unwrap_err(),
            Error::EmptyTrainingSet
        );
        assert_eq!(
            GraphHdModel::fit(config, &[&g], &[], 2).unwrap_err(),
            Error::LengthMismatch {
                graphs: 1,
                labels: 0
            }
        );
        assert_eq!(
            GraphHdModel::fit(config, &[&g], &[7], 2).unwrap_err(),
            Error::LabelOutOfRange {
                index: 0,
                label: 7,
                num_classes: 2
            }
        );
        assert_eq!(
            GraphHdModel::fit(config, &[&g], &[0], 0).unwrap_err(),
            Error::ZeroClasses
        );
        assert_eq!(
            GraphHdModel::fit(
                GraphHdConfig {
                    dim: 0,
                    ..GraphHdConfig::default()
                },
                &[&g],
                &[0],
                1
            )
            .unwrap_err(),
            Error::ZeroDimension
        );
    }

    #[test]
    fn separable_task_is_learned() {
        let (model, graphs, labels) = fit_toy(10_000);
        let predictions = model.predict_batch(&graphs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "training accuracy {accuracy}");
        // Held-out sizes generalise.
        assert_eq!(model.predict(&generate::complete(20)), 0);
        assert_eq!(model.predict(&generate::path(20)), 1);
    }

    #[test]
    fn scores_align_with_prediction() {
        let (model, _, _) = fit_toy(4096);
        let g = generate::complete(11);
        let scores = model.scores(&g);
        assert_eq!(scores.len(), 2);
        let predicted = model.predict(&g);
        assert!(scores[predicted as usize] >= scores[1 - predicted as usize]);
    }

    #[test]
    fn training_is_deterministic() {
        let (a, _, _) = fit_toy(2048);
        let (b, _, _) = fit_toy(2048);
        assert_eq!(a.class_vectors(), b.class_vectors());
    }

    #[test]
    fn retrain_reduces_errors_on_hard_task() {
        // A harder task: same density, different motif structure.
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for i in 0..40 {
            let base = generate::erdos_renyi(20, 0.15, &mut rng).expect("valid p");
            if i % 2 == 0 {
                graphs.push(base);
                labels.push(0u32);
            } else {
                graphs.push(generate::with_planted_triangles(&base, 6, &mut rng).expect("n >= 3"));
                labels.push(1u32);
            }
        }
        let config = GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension");
        let encoder = GraphEncoder::new(config).expect("valid config");
        let encodings = encoder.encode_all(&graphs);
        let mut model = GraphHdModel::fit_encoded(encoder, &encodings, &labels, 2);

        let before: usize = encodings
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict_encoded(hv) != l)
            .count();
        let report = model.retrain(&encodings, &labels, 20);
        let after: usize = encodings
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict_encoded(hv) != l)
            .count();
        assert!(
            after <= before,
            "retraining must not increase training errors ({before} -> {after})"
        );
        assert!(!report.epoch_errors.is_empty());
    }

    #[test]
    fn retrain_converged_flag() {
        let (mut model, graphs, labels) = fit_toy(4096);
        let encodings = model.encoder().encode_all(&graphs);
        let report = model.retrain(&encodings, &labels, 50);
        assert!(report.converged(), "separable task should converge");
    }

    #[test]
    fn predict_batch_equals_predict_all_refs() {
        let (model, graphs, _) = fit_toy(2048);
        let refs: Vec<&Graph> = graphs.iter().collect();
        assert_eq!(model.predict_batch(&graphs), model.predict_all(&refs));
        let serial: Vec<u32> = graphs.iter().map(|g| model.predict(g)).collect();
        assert_eq!(model.predict_batch(&graphs), serial);
    }

    #[test]
    fn fit_and_predict_are_bit_identical_across_thread_counts() {
        use parallel::Pool;
        use std::sync::Arc;
        let (graphs, labels) = toy();
        let config = GraphHdConfig::builder()
            .dim(2048)
            .build()
            .expect("valid dimension");
        let fit_at = |threads: usize| {
            let encoder = crate::GraphEncoder::new(config)
                .expect("valid config")
                .with_pool(Arc::new(Pool::with_threads(threads)));
            GraphHdModel::fit_with_encoder(encoder, &graphs, &labels, 2).expect("valid inputs")
        };
        let serial = fit_at(1);
        let serial_predictions = serial.predict_batch(&graphs);
        for threads in [2usize, 3, 8] {
            let parallel = fit_at(threads);
            assert_eq!(
                parallel.class_vectors(),
                serial.class_vectors(),
                "fit diverged at {threads} threads"
            );
            assert_eq!(
                parallel.predict_batch(&graphs),
                serial_predictions,
                "predict diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn speculative_retrain_matches_serial_reference() {
        use parallel::Pool;
        use std::sync::Arc;
        // A hard (non-separable at this dimension) task so retraining
        // makes many updates — the worst case for speculation.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let base = generate::erdos_renyi(16, 0.2, &mut rng).expect("valid p");
            if i % 2 == 0 {
                graphs.push(base);
                labels.push(0u32);
            } else {
                graphs.push(generate::with_planted_triangles(&base, 4, &mut rng).expect("n >= 3"));
                labels.push(1u32);
            }
        }
        let config = GraphHdConfig::builder()
            .dim(1024)
            .build()
            .expect("valid dimension");
        let encoder = crate::GraphEncoder::new(config).expect("valid config");
        let encodings = encoder.encode_all(&graphs);

        // Serial reference: the pre-speculation perceptron loop, verbatim.
        let mut reference = GraphHdModel::fit_encoded(encoder.clone(), &encodings, &labels, 2);
        let tie = config.tie_break;
        let mut reference_errors = Vec::new();
        for _ in 0..8 {
            let mut errors = 0usize;
            for (hv, &label) in encodings.iter().zip(&labels) {
                let predicted = reference.predict_encoded(hv);
                if predicted != label {
                    errors += 1;
                    reference.class_accumulators[label as usize].add(hv);
                    reference.class_accumulators[predicted as usize].sub(hv);
                    reference.class_memory.set(
                        label as usize,
                        &reference.class_accumulators[label as usize].to_hypervector(tie),
                    );
                    reference.class_memory.set(
                        predicted as usize,
                        &reference.class_accumulators[predicted as usize].to_hypervector(tie),
                    );
                }
            }
            reference_errors.push(errors);
            if errors == 0 {
                break;
            }
        }

        for threads in [1usize, 2, 3, 8] {
            let pooled = encoder
                .clone()
                .with_pool(Arc::new(Pool::with_threads(threads)));
            let mut model = GraphHdModel::fit_encoded(pooled, &encodings, &labels, 2);
            let report = model.retrain(&encodings, &labels, 8);
            assert_eq!(
                report.epoch_errors, reference_errors,
                "epoch errors diverged at {threads} threads"
            );
            assert_eq!(
                model.class_vectors(),
                reference.class_vectors(),
                "class vectors diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn scores_encoded_matches_naive_cosine_loop() {
        // The blocked ClassMemory engine must be bit-identical to the
        // per-class cosine loop at 1, 2 and 23 classes (partial block,
        // exact block boundary crossed at 8/16, odd tail).
        use hdvec::ItemMemory;
        for &classes in &[1usize, 2, 23] {
            let dim = 1024;
            let items = ItemMemory::new(dim, 77).expect("valid dimension");
            let encodings: Vec<Hypervector> = (0..4 * classes as u64)
                .map(|i| items.hypervector(i))
                .collect();
            let labels: Vec<u32> = (0..encodings.len()).map(|i| (i % classes) as u32).collect();
            let encoder = GraphEncoder::new(
                GraphHdConfig::builder()
                    .dim(dim)
                    .build()
                    .expect("valid dimension"),
            )
            .expect("valid config");
            let model = GraphHdModel::fit_encoded(encoder, &encodings, &labels, classes);
            let query = items.hypervector(1_000_000);
            let naive: Vec<f64> = model
                .class_vectors()
                .iter()
                .map(|c| c.cosine(&query))
                .collect();
            assert_eq!(model.scores_encoded(&query), naive, "classes {classes}");
            let mut buffer = Vec::new();
            model.scores_encoded_into(&query, &mut buffer);
            assert_eq!(buffer, naive, "into-variant classes {classes}");
            // First-maximum scan: the documented tie-to-lower-id rule.
            let mut expected = 0usize;
            for (i, &s) in naive.iter().enumerate().skip(1) {
                if s > naive[expected] {
                    expected = i;
                }
            }
            assert_eq!(model.predict_encoded(&query), expected as u32);
        }
    }

    #[test]
    fn noise_injection_keeps_dimensions() {
        let (model, _, _) = fit_toy(1024);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let noisy = model.with_noisy_class_vectors(0.2, &mut rng);
        assert_eq!(noisy.num_classes(), model.num_classes());
        for (a, b) in noisy.class_vectors().iter().zip(model.class_vectors()) {
            assert_eq!(a.dim(), b.dim());
            assert_ne!(a, b, "20% noise should change the vectors");
        }
    }

    #[test]
    fn robustness_to_moderate_noise() {
        // The HDC robustness claim: 10% of flipped class-vector bits
        // barely moves accuracy on a separable task.
        let (model, graphs, labels) = fit_toy(10_000);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let noisy = model.with_noisy_class_vectors(0.10, &mut rng);
        let predictions = noisy.predict_batch(&graphs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "accuracy under noise {accuracy}");
    }
}
