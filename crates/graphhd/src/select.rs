//! Deterministic winner selection over similarity scores.

/// Index of the maximum score, with ties resolved to the **lowest**
/// index — the one argmax rule every GraphHD decision path
/// (`predict_encoded`, batch prediction, retraining, multi-prototype
/// inference) funnels through, so the tie-break semantics cannot drift
/// between the naive and the blocked scoring engines.
///
/// Returns `None` only for an empty slice. Comparison is the historical
/// strict `>` scan: a NaN never *displaces* the running best (every
/// comparison against NaN is false), which also means a NaN in the first
/// slot is never displaced — cosine scores are always finite, so this
/// edge exists only to pin the semantics.
#[must_use]
pub fn argmax_tie_low(scores: &[f64]) -> Option<usize> {
    let mut indices = 0..scores.len();
    let mut best = indices.next()?;
    for i in indices {
        if scores[i] > scores[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_winner() {
        assert_eq!(argmax_tie_low(&[]), None);
    }

    #[test]
    fn single_element_wins() {
        assert_eq!(argmax_tie_low(&[-3.5]), Some(0));
    }

    #[test]
    fn maximum_wins() {
        assert_eq!(argmax_tie_low(&[0.1, 0.9, 0.4]), Some(1));
        assert_eq!(argmax_tie_low(&[2.0, -1.0, 0.0]), Some(0));
    }

    #[test]
    fn ties_go_to_the_lower_index() {
        assert_eq!(argmax_tie_low(&[0.5, 0.7, 0.7, 0.7]), Some(1));
        assert_eq!(argmax_tie_low(&[0.7, 0.7]), Some(0));
    }

    #[test]
    fn nan_never_displaces_the_running_best() {
        assert_eq!(argmax_tie_low(&[0.1, f64::NAN, 0.05]), Some(0));
        // A leading NaN is likewise never displaced (strict `>` is false
        // both ways); pinned for determinism, unreachable from cosine.
        assert_eq!(argmax_tie_low(&[f64::NAN, 0.1, 0.2]), Some(0));
    }

    #[test]
    fn negative_infinity_loses_to_anything_comparable() {
        assert_eq!(argmax_tie_low(&[f64::NEG_INFINITY, -1e308]), Some(1));
    }
}
