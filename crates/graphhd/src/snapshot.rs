//! Versioned binary snapshots: a trained [`GraphHdModel`] as a
//! deployable artifact.
//!
//! The VS-Graph and FPGA-GraphHD follow-ups both treat the trained
//! associative memory as the thing you ship; this module gives the suite
//! the same property without external dependencies. A snapshot stores the
//! full configuration (the basis item memory is a pure function of
//! `(seed, dim)`, so it is *not* stored), plus the packed class vectors.
//! Every multi-byte field is written little-endian regardless of host, so
//! snapshots are bit-portable across machines; a magic and a format
//! version make foreign or future files fail loudly instead of decoding
//! into garbage.
//!
//! Layout of format version 2 (all integers little-endian):
//!
//! ```text
//! [0..8)    magic            b"GRAPHHD\0"
//! [8..12)   format version   u32 (currently 2)
//! [12..20)  dim              u64
//! [20..28)  item-memory seed u64
//! [28]      centrality tag   u8  (0 PageRank, 1 Degree, 2 VertexId)
//! [29]      tie-break tag    u8  (0 Positive, 1 Negative, 2 Seeded)
//! [30..38)  tie-break seed   u64 (0 unless tag is Seeded)
//! [38..46)  pagerank iters   u64
//! [46..54)  pagerank damping f64 (IEEE-754 bits)
//! [54]      encoder tag      u8  (0 Centrality, 1 VertexSimilarity,
//!                                 2 EdgeWeighted)
//! [55..63)  encoder param    u64 (0 / levels / weight cap)
//! [63..71)  num_classes      u64
//! [71..)    class vectors    num_classes × ⌈dim/64⌉ × u64 packed words
//! ```
//!
//! Version 1 files — identical except that the two encoder fields are
//! absent (`num_classes` starts at offset 54) — still load, and decode
//! as the GraphHD centrality strategy, the only encoder that existed
//! when they were written.
//!
//! # Crash safety
//!
//! [`save`](GraphHdModel::save) never writes the destination in place:
//! it writes a temporary sibling, fsyncs it, atomically renames it over
//! the destination, and fsyncs the containing directory, so a crash at
//! any instant leaves either the complete old file or the complete new
//! file — never a torn one. [`save_version`](GraphHdModel::save_version)
//! and [`load_latest`](GraphHdModel::load_latest) build rollback on top:
//! each save publishes a fresh `model.v{N}.ghd` sibling (pruned to the
//! last K), and loading scans versions newest-first, falling back past
//! any snapshot that fails validation. The `snapshot.write` and
//! `snapshot.rename` fail points (see `docs/RESILIENCE.md`) let the
//! chaos suite kill a save at each boundary and prove the recovery
//! claim.

use crate::error::SnapshotError;
use crate::{CentralityKind, EncoderKind, Error, GraphEncoder, GraphHdConfig, GraphHdModel};
use faultpoint::fail_point;
use graphcore::PageRankConfig;
use hdvec::{Hypervector, TieBreak};
use std::ffi::OsString;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The 8-byte magic every GraphHD snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GRAPHHD\0";

/// The snapshot format version this build writes. Version 1 files (the
/// pre-strategy format without encoder fields) are still readable.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The pre-strategy snapshot format, accepted on load for backward
/// compatibility.
const SNAPSHOT_VERSION_V1: u32 = 1;

fn centrality_tag(kind: CentralityKind) -> u8 {
    match kind {
        CentralityKind::PageRank => 0,
        CentralityKind::Degree => 1,
        CentralityKind::VertexId => 2,
    }
}

fn centrality_from_tag(tag: u8) -> Result<CentralityKind, SnapshotError> {
    match tag {
        0 => Ok(CentralityKind::PageRank),
        1 => Ok(CentralityKind::Degree),
        2 => Ok(CentralityKind::VertexId),
        _ => Err(SnapshotError::Corrupt {
            what: "centrality tag",
        }),
    }
}

fn encoder_fields(kind: EncoderKind) -> (u8, u64) {
    match kind {
        EncoderKind::Centrality => (0, 0),
        EncoderKind::VertexSimilarity { levels } => (1, u64::from(levels)),
        EncoderKind::EdgeWeighted { weight_cap } => (2, u64::from(weight_cap)),
    }
}

fn encoder_from_fields(tag: u8, param: u64) -> Result<EncoderKind, SnapshotError> {
    let corrupt = SnapshotError::Corrupt {
        what: "encoder fields",
    };
    let kind = match tag {
        // A non-zero parameter on the parameterless strategy means the
        // header bytes are shifted or damaged; refuse, as for tie-breaks.
        0 if param == 0 => EncoderKind::Centrality,
        0 => return Err(corrupt),
        1 => EncoderKind::VertexSimilarity {
            levels: u32::try_from(param).map_err(|_| corrupt)?,
        },
        2 => EncoderKind::EdgeWeighted {
            weight_cap: u32::try_from(param).map_err(|_| corrupt)?,
        },
        _ => {
            return Err(SnapshotError::Corrupt {
                what: "encoder tag",
            })
        }
    };
    // Out-of-range parameters (levels < 2, zero weight cap) fail the
    // same strategy validation the config builder applies.
    kind.validate().map_err(|_| corrupt)?;
    Ok(kind)
}

fn tie_break_fields(tie: TieBreak) -> (u8, u64) {
    match tie {
        TieBreak::Positive => (0, 0),
        TieBreak::Negative => (1, 0),
        TieBreak::Seeded(seed) => (2, seed),
    }
}

fn tie_break_from_fields(tag: u8, seed: u64) -> Result<TieBreak, SnapshotError> {
    match (tag, seed) {
        (0, 0) => Ok(TieBreak::Positive),
        (1, 0) => Ok(TieBreak::Negative),
        (2, seed) => Ok(TieBreak::Seeded(seed)),
        // A non-zero seed on a seedless policy means the header bytes are
        // shifted or damaged; refuse rather than silently dropping state.
        _ => Err(SnapshotError::Corrupt {
            what: "tie-break fields",
        }),
    }
}

/// Reads exactly `N` bytes, mapping a clean EOF to
/// [`SnapshotError::Truncated`] and any other failure to [`Error::Io`].
fn read_array<const N: usize, R: Read>(reader: &mut R) -> Result<[u8; N], Error> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Snapshot(SnapshotError::Truncated)
        } else {
            Error::from(e)
        }
    })?;
    Ok(buf)
}

fn read_u8<R: Read>(reader: &mut R) -> Result<u8, Error> {
    Ok(read_array::<1, _>(reader)?[0])
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, Error> {
    Ok(u32::from_le_bytes(read_array::<4, _>(reader)?))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, Error> {
    Ok(u64::from_le_bytes(read_array::<8, _>(reader)?))
}

/// A `u64` header field that must fit in `usize` (snapshots written on a
/// 64-bit host must fail cleanly, not wrap, on a 32-bit one).
fn read_len<R: Read>(reader: &mut R, what: &'static str) -> Result<usize, Error> {
    usize::try_from(read_u64(reader)?).map_err(|_| Error::Snapshot(SnapshotError::Corrupt { what }))
}

/// The error an armed `error`-action fail point injects into a save.
fn injected_io(point: &str) -> Error {
    Error::Io {
        kind: std::io::ErrorKind::Other,
        message: format!("faultpoint: injected error at `{point}`"),
    }
}

/// A unique temporary sibling of `path` (same directory, so the final
/// rename never crosses a filesystem boundary). Uniqueness comes from
/// the pid plus a process-wide sequence number, so concurrent saves to
/// the same destination never clobber each other's partial writes.
fn temp_sibling(path: &Path) -> PathBuf {
    static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map_or_else(|| OsString::from("snapshot"), OsString::from);
    name.push(format!(".tmp-{}-{seq}", std::process::id()));
    path.with_file_name(name)
}

/// Makes the rename that published `path` durable: fsync the containing
/// directory, so a power cut cannot roll the directory entry back.
#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> Result<(), Error> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()?;
    Ok(())
}

/// Non-unix stand-in: directories cannot portably be opened for
/// syncing; the atomic rename still guarantees old-or-new contents.
#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> Result<(), Error> {
    Ok(())
}

/// File-name shape of versioned snapshots: `model.v{N}.ghd`.
const VERSION_PREFIX: &str = "model.v";
/// Extension of versioned snapshots (shared with plain `.ghd` saves).
const VERSION_SUFFIX: &str = ".ghd";

fn version_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("{VERSION_PREFIX}{version}{VERSION_SUFFIX}"))
}

/// Parses `model.v{N}.ghd` back to `N`; anything else is not a
/// versioned snapshot (temp siblings, foreign files) and is ignored.
fn version_of(name: &str) -> Option<u64> {
    let digits = name
        .strip_prefix(VERSION_PREFIX)?
        .strip_suffix(VERSION_SUFFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every snapshot version present in `dir`, ascending.
fn list_versions(dir: &Path) -> Result<Vec<u64>, Error> {
    let mut versions = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        if let Some(v) = entry?.file_name().to_str().and_then(version_of) {
            versions.push(v);
        }
    }
    versions.sort_unstable();
    Ok(versions)
}

impl GraphHdModel {
    /// Serialises the model into `writer` in the versioned binary
    /// format (layout documented at the top of
    /// `crates/graphhd/src/snapshot.rs`; magic [`SNAPSHOT_MAGIC`],
    /// version [`SNAPSHOT_VERSION`], then config + packed class
    /// vectors, all little-endian).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if writing fails.
    pub fn save_to<W: Write>(&self, writer: &mut W) -> Result<(), Error> {
        let config = self.encoder().config();
        let (tie_tag, tie_seed) = tie_break_fields(config.tie_break);
        let (encoder_tag, encoder_param) = encoder_fields(config.encoder);
        writer.write_all(&SNAPSHOT_MAGIC)?;
        writer.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        writer.write_all(&(config.dim as u64).to_le_bytes())?;
        writer.write_all(&config.seed.to_le_bytes())?;
        writer.write_all(&[centrality_tag(config.centrality), tie_tag])?;
        writer.write_all(&tie_seed.to_le_bytes())?;
        writer.write_all(&(config.pagerank.iterations as u64).to_le_bytes())?;
        writer.write_all(&config.pagerank.damping.to_bits().to_le_bytes())?;
        writer.write_all(&[encoder_tag])?;
        writer.write_all(&encoder_param.to_le_bytes())?;
        writer.write_all(&(self.num_classes() as u64).to_le_bytes())?;
        for class_vector in self.class_vectors() {
            for &word in class_vector.words() {
                writer.write_all(&word.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Saves the model to a file (see [`save_to`](Self::save_to))
    /// **atomically**: the bytes go to a temporary sibling that is
    /// fsynced, renamed over `path`, and sealed with a directory fsync.
    /// A crash at any point leaves either the old file or the new file
    /// intact — never a torn mixture — and failed saves clean up their
    /// temporary.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be created, written,
    /// synced or renamed.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), Error> {
        let path = path.as_ref();
        let tmp = temp_sibling(path);
        self.write_and_swap(path, &tmp).inspect_err(|_| {
            // Never leave a partial temp sibling behind; removal of a
            // file that was never created is not a second failure.
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// The crash-ordered write sequence behind [`save`](Self::save):
    /// data must be durable before the rename publishes it, and the
    /// rename must be durable before the save reports success.
    fn write_and_swap(&self, path: &Path, tmp: &Path) -> Result<(), Error> {
        let file = File::create(tmp)?;
        fail_point!("snapshot.write", injected_io("snapshot.write"));
        let mut writer = BufWriter::new(&file);
        self.save_to(&mut writer)?;
        writer.flush()?;
        file.sync_all()?;
        fail_point!("snapshot.rename", injected_io("snapshot.rename"));
        std::fs::rename(tmp, path)?;
        sync_parent_dir(path)
    }

    /// Publishes the model as the next versioned snapshot in `dir`
    /// (`model.v{N}.ghd`, `N` one past the highest version present) and
    /// prunes all but the newest `keep` versions. `keep` of zero means
    /// never prune. Returns the version just written.
    ///
    /// Each version is written with the atomic [`save`](Self::save)
    /// sequence, and pruning is best-effort (a failed unlink never
    /// un-publishes the save), so a reader using
    /// [`load_latest`](Self::load_latest) always finds a complete
    /// model. Together they give rollback semantics: keep K versions,
    /// fall back to `N-1` when `N` is bad.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the directory cannot be scanned or the
    /// snapshot cannot be written, and [`Error::Internal`] if the
    /// version counter would overflow `u64` (practically unreachable).
    pub fn save_version<P: AsRef<Path>>(&self, dir: P, keep: usize) -> Result<u64, Error> {
        let dir = dir.as_ref();
        let versions = list_versions(dir)?;
        let next = match versions.last() {
            None => 1,
            Some(&latest) => latest.checked_add(1).ok_or(Error::Internal {
                what: "snapshot version counter overflow",
            })?,
        };
        self.save(version_path(dir, next))?;
        if keep > 0 {
            // `versions` predates the save, so it holds the candidates
            // for pruning; the newest keep-1 of them stay alongside the
            // version just written.
            for &stale in versions.iter().rev().skip(keep.saturating_sub(1)) {
                let _ = std::fs::remove_file(version_path(dir, stale));
            }
        }
        Ok(next)
    }

    /// Loads the newest readable versioned snapshot (`model.v{N}.ghd`)
    /// from `dir`, returning the model and its version.
    ///
    /// Versions are tried newest-first; one that fails to open or
    /// validate (e.g. a save killed between publishing and completing,
    /// or later corruption) is skipped in favour of the next-newest —
    /// the rollback path the chaos suite exercises by killing saves at
    /// the `snapshot.write`/`snapshot.rename` fail points.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] with
    /// [`NotFound`](std::io::ErrorKind::NotFound) if `dir` holds no
    /// versioned snapshot at all, and otherwise the error of the oldest
    /// candidate if every version failed to load.
    pub fn load_latest<P: AsRef<Path>>(dir: P) -> Result<(Self, u64), Error> {
        let dir = dir.as_ref();
        let mut versions = list_versions(dir)?;
        let mut last_err = Error::Io {
            kind: std::io::ErrorKind::NotFound,
            message: format!("no {VERSION_PREFIX}{{N}}{VERSION_SUFFIX} snapshot in directory"),
        };
        while let Some(version) = versions.pop() {
            match Self::load(version_path(dir, version)) {
                Ok(model) => return Ok((model, version)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Reads a model from `reader`, validating magic, version and every
    /// header field, and requiring the stream to end exactly after the
    /// declared payload.
    ///
    /// The loaded model predicts bit-identically to the saved one on any
    /// machine (the format is endian-stable and the basis item memory is
    /// re-derived from the stored seed). Its integer accumulators restart
    /// from the stored class vectors, so a subsequent
    /// [`retrain`](Self::retrain) refines the deployable artifact rather
    /// than resuming the original training counters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] for malformed input and [`Error::Io`]
    /// for read failures.
    pub fn load_from<R: Read>(reader: &mut R) -> Result<Self, Error> {
        if read_array::<8, _>(reader)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic.into());
        }
        let version = read_u32(reader)?;
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_V1 {
            return Err(SnapshotError::UnsupportedVersion { found: version }.into());
        }
        let dim = read_len(reader, "dimension")?;
        let seed = read_u64(reader)?;
        let centrality = centrality_from_tag(read_u8(reader)?)?;
        let tie_tag = read_u8(reader)?;
        let tie_break = tie_break_from_fields(tie_tag, read_u64(reader)?)?;
        let iterations = read_len(reader, "pagerank iterations")?;
        let damping = f64::from_bits(read_u64(reader)?);
        if !damping.is_finite() {
            return Err(SnapshotError::Corrupt {
                what: "pagerank damping",
            }
            .into());
        }
        // Version 1 predates the strategy layer: no encoder fields, and
        // every v1 model was the centrality encoder.
        let encoder = if version == SNAPSHOT_VERSION_V1 {
            EncoderKind::Centrality
        } else {
            let tag = read_u8(reader)?;
            encoder_from_fields(tag, read_u64(reader)?)?
        };
        let num_classes = read_len(reader, "class count")?;
        if num_classes == 0 {
            return Err(SnapshotError::Corrupt {
                what: "class count",
            }
            .into());
        }

        let config = GraphHdConfig::builder()
            .dim(dim)
            .seed(seed)
            .centrality(centrality)
            .with_encoder(encoder)
            .tie_break(tie_break)
            .pagerank(PageRankConfig {
                damping,
                iterations,
            })
            .build()
            // The encoder fields were validated above, so the only
            // builder failure left is a zero dimension.
            .map_err(|_| Error::Snapshot(SnapshotError::Corrupt { what: "dimension" }))?;

        let words_per_vector = dim.div_ceil(64);
        // The declared payload size must be computable without overflow:
        // a header whose classes × words × 8 exceeds u64 describes no
        // file that can exist, so refuse it before trusting any length
        // arithmetic derived from it.
        let payload_bytes = (num_classes as u64)
            .checked_mul(words_per_vector as u64)
            .and_then(|words| words.checked_mul(8))
            .ok_or(Error::Snapshot(SnapshotError::Corrupt {
                what: "payload size",
            }))?;
        // Bound every payload read by that declared size: even if the
        // word loop drifted out of step with the header, it could not
        // read past the payload and misdecode trailing bytes as data.
        let mut payload = reader.by_ref().take(payload_bytes);
        // Header lengths are untrusted until the payload bytes actually
        // arrive: capacity hints are clamped so a forged multi-exabyte
        // `dim`/`num_classes` surfaces as `Truncated` on the first
        // missing word instead of aborting the process in the allocator.
        const PREALLOC_CAP: usize = 1 << 16;
        let mut class_vectors = Vec::with_capacity(num_classes.min(PREALLOC_CAP));
        for _ in 0..num_classes {
            let mut words = Vec::with_capacity(words_per_vector.min(PREALLOC_CAP));
            for _ in 0..words_per_vector {
                words.push(read_u64(&mut payload)?);
            }
            // Bits past `dim` in the last word must be zero — every
            // in-memory hypervector keeps that invariant, and the word
            // kernels rely on it.
            let tail_bits = dim % 64;
            if tail_bits != 0 && words[words_per_vector - 1] >> tail_bits != 0 {
                return Err(SnapshotError::Corrupt {
                    what: "class vector tail bits",
                }
                .into());
            }
            let hv = Hypervector::from_fn(dim, |i| (words[i >> 6] >> (i & 63)) & 1 == 1)
                .map_err(Error::from)?;
            debug_assert_eq!(hv.words(), words);
            class_vectors.push(hv);
        }

        // Release the payload bound; the probe below must see the
        // underlying stream to detect trailing bytes.
        let _ = payload.into_inner();
        // The payload length is declared by the header; anything after it
        // means the file is not what the header claims.
        let mut probe = [0u8; 1];
        match reader.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => return Err(SnapshotError::TrailingBytes.into()),
            Err(e) => return Err(e.into()),
        }

        let encoder = GraphEncoder::new(config)?;
        Self::from_class_vectors(encoder, &class_vectors)
    }

    /// Loads a model from a file (see [`load_from`](Self::load_from)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be opened and
    /// [`Error::Snapshot`] if its contents are malformed.
    ///
    /// # Examples
    ///
    /// ```
    /// use graphhd::{GraphHdConfig, GraphHdModel};
    /// use graphcore::generate;
    ///
    /// let graphs = vec![generate::complete(8), generate::path(8)];
    /// let config = GraphHdConfig::builder().dim(512).build()?;
    /// let model = GraphHdModel::fit(config, &graphs, &[0, 1], 2)?;
    ///
    /// let path = std::env::temp_dir().join("graphhd-doctest.ghd");
    /// model.save(&path)?;
    /// let restored = GraphHdModel::load(&path)?;
    /// std::fs::remove_file(&path)?;
    ///
    /// assert_eq!(restored.class_vectors(), model.class_vectors());
    /// assert_eq!(
    ///     restored.predict(&generate::complete(10)),
    ///     model.predict(&generate::complete(10)),
    /// );
    /// # Ok::<(), graphhd::Error>(())
    /// ```
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, Error> {
        let mut reader = BufReader::new(File::open(path)?);
        Self::load_from(&mut reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn trained(dim: usize) -> GraphHdModel {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..14 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
            graphs.push(generate::star(n));
            labels.push(2);
        }
        let config = GraphHdConfig::builder()
            .dim(dim)
            .seed(0xBEEF)
            .tie_break(TieBreak::Seeded(17))
            .build()
            .expect("valid dimension");
        GraphHdModel::fit(config, &graphs, &labels, 3).expect("valid inputs")
    }

    fn snapshot_bytes(model: &GraphHdModel) -> Vec<u8> {
        let mut bytes = Vec::new();
        model.save_to(&mut bytes).expect("in-memory write");
        bytes
    }

    #[test]
    fn round_trip_preserves_config_and_vectors() {
        for dim in [63usize, 64, 65, 1024] {
            let model = trained(dim);
            let bytes = snapshot_bytes(&model);
            let restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid snapshot");
            assert_eq!(
                restored.encoder().config(),
                model.encoder().config(),
                "dim {dim}"
            );
            assert_eq!(restored.class_vectors(), model.class_vectors(), "dim {dim}");
            // Predictions agree on fresh graphs.
            for n in 5..20 {
                let g = generate::cycle(n);
                assert_eq!(restored.predict(&g), model.predict(&g), "dim {dim} n {n}");
            }
        }
    }

    #[test]
    fn snapshot_size_matches_declared_layout() {
        let model = trained(63);
        let bytes = snapshot_bytes(&model);
        // Header is 71 bytes; 63 dims pack into one word per class.
        assert_eq!(bytes.len(), 71 + 3 * 8);
        assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            SNAPSHOT_VERSION
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[0] ^= 0xFF;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let bytes = snapshot_bytes(&trained(65));
        // Cut inside the magic, the header (including the encoder and
        // class-count fields), and the payload.
        for cut in [3usize, 20, 40, 58, 66, bytes.len() - 1] {
            assert_eq!(
                GraphHdModel::load_from(&mut bytes[..cut].as_ref()).unwrap_err(),
                Error::Snapshot(SnapshotError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = snapshot_bytes(&trained(64));
        bytes.push(0);
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::TrailingBytes)
        );
    }

    #[test]
    fn rejects_corrupt_header_fields() {
        let model = trained(64);
        // Centrality tag out of range.
        let mut bytes = snapshot_bytes(&model);
        bytes[28] = 9;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "centrality tag"
            })
        );
        // Tie-break tag out of range.
        let mut bytes = snapshot_bytes(&model);
        bytes[29] = 7;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "tie-break fields"
            })
        );
        // Non-finite damping.
        let mut bytes = snapshot_bytes(&model);
        bytes[46..54].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "pagerank damping"
            })
        );
        // Encoder tag out of range.
        let mut bytes = snapshot_bytes(&model);
        bytes[54] = 9;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "encoder tag"
            })
        );
        // Non-zero parameter on the parameterless centrality encoder.
        let mut bytes = snapshot_bytes(&model);
        bytes[55..63].copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "encoder fields"
            })
        );
        // Vertex-similarity depth below the minimum of 2 levels.
        let mut bytes = snapshot_bytes(&model);
        bytes[54] = 1;
        bytes[55..63].copy_from_slice(&1u64.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "encoder fields"
            })
        );
        // Zero classes.
        let mut bytes = snapshot_bytes(&model);
        bytes[63..71].copy_from_slice(&0u64.to_le_bytes());
        // (payload still present -> either corrupt count or trailing data;
        // the count check fires first)
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "class count"
            })
        );
        // Zero dimension.
        let mut bytes = snapshot_bytes(&model);
        bytes[12..20].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt { what: "dimension" })
        );
    }

    #[test]
    fn forged_huge_header_lengths_fail_cleanly_not_in_the_allocator() {
        // dim = 2^60 passes the numeric header checks; the payload is
        // absent, so the load must report Truncated (after clamped,
        // harmless preallocation) rather than aborting on an
        // exabyte-scale `Vec::with_capacity`.
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[12..20].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let err = GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, Error::Snapshot(SnapshotError::Truncated));
        // Same for a forged class count.
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[63..71].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let err = GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, Error::Snapshot(SnapshotError::Truncated));
    }

    #[test]
    fn rejects_set_tail_bits() {
        let model = trained(63);
        let mut bytes = snapshot_bytes(&model);
        let last = bytes.len() - 1;
        bytes[last] |= 0x80; // bit 63 of a 63-dim vector's only word
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "class vector tail bits"
            })
        );
    }

    #[test]
    fn round_trip_preserves_every_encoder_kind() {
        let graphs = vec![generate::complete(8), generate::path(8)];
        for kind in [
            EncoderKind::Centrality,
            EncoderKind::VertexSimilarity { levels: 12 },
            EncoderKind::EdgeWeighted { weight_cap: 3 },
        ] {
            let config = GraphHdConfig::builder()
                .dim(256)
                .with_encoder(kind)
                .build()
                .expect("valid config");
            let model = GraphHdModel::fit(config, &graphs, &[0, 1], 2).expect("valid inputs");
            let bytes = snapshot_bytes(&model);
            let restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid snapshot");
            assert_eq!(restored.encoder().config().encoder, kind);
            assert_eq!(restored.class_vectors(), model.class_vectors());
        }
    }

    #[test]
    fn version_1_snapshots_load_as_the_centrality_strategy() {
        // Reconstruct the pre-strategy layout: same header minus the nine
        // encoder bytes at [54..63), with the version field set to 1.
        let model = trained(64);
        let mut bytes = snapshot_bytes(&model);
        bytes.drain(54..63);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid v1 snapshot");
        assert_eq!(restored.encoder().config(), model.encoder().config());
        assert_eq!(restored.encoder().config().encoder, EncoderKind::Centrality);
        assert_eq!(restored.class_vectors(), model.class_vectors());
    }

    #[test]
    fn overflowing_payload_size_is_corrupt_not_wrapped() {
        // A forged dim × forged class count makes classes × words × 8
        // overflow u64: the load must refuse the header arithmetic
        // itself, before any read is attempted with a wrapped length.
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[12..20].copy_from_slice(&(1u64 << 60).to_le_bytes());
        bytes[63..71].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "payload size"
            })
        );
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "graphhd-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn atomic_save_replaces_existing_file_and_leaves_no_temp() {
        let dir = temp_dir("atomic");
        let path = dir.join("model.ghd");
        let old = trained(64);
        let new = trained(128);
        old.save(&path).expect("first save");
        new.save(&path).expect("replacing save");
        let loaded = GraphHdModel::load(&path).expect("valid snapshot");
        assert_eq!(loaded.class_vectors(), new.class_vectors());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("model.ghd")]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn versioned_saves_number_sequentially_and_prune_to_keep() {
        let dir = temp_dir("versions");
        let model = trained(64);
        for expect in 1..=5u64 {
            assert_eq!(model.save_version(&dir, 3).expect("save"), expect);
        }
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .expect("list dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        names.sort();
        assert_eq!(names, ["model.v3.ghd", "model.v4.ghd", "model.v5.ghd"]);
        let (loaded, version) = GraphHdModel::load_latest(&dir).expect("latest");
        assert_eq!(version, 5);
        assert_eq!(loaded.class_vectors(), model.class_vectors());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn load_latest_falls_back_past_a_corrupt_newest_version() {
        let dir = temp_dir("fallback");
        let good = trained(64);
        good.save_version(&dir, 0).expect("v1");
        good.save_version(&dir, 0).expect("v2");
        // Corrupt v2 as a torn write would: truncate it mid-payload.
        let v2 = dir.join("model.v2.ghd");
        let bytes = std::fs::read(&v2).expect("read v2");
        std::fs::write(&v2, &bytes[..bytes.len() - 3]).expect("truncate v2");
        let (loaded, version) = GraphHdModel::load_latest(&dir).expect("fallback");
        assert_eq!(version, 1);
        assert_eq!(loaded.class_vectors(), good.class_vectors());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn load_latest_on_an_empty_directory_reports_not_found() {
        let dir = temp_dir("empty");
        match GraphHdModel::load_latest(&dir).unwrap_err() {
            Error::Io { kind, .. } => assert_eq!(kind, std::io::ErrorKind::NotFound),
            other => panic!("expected Io/NotFound, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn loaded_model_supports_retraining() {
        let model = trained(256);
        let bytes = snapshot_bytes(&model);
        let mut restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid snapshot");
        let graphs: Vec<_> = (6..14)
            .flat_map(|n| [generate::complete(n), generate::path(n)])
            .collect();
        let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
        let encodings = restored.encoder().encode_all(&graphs);
        let report = restored.retrain(&encodings, &labels, 5);
        assert!(!report.epoch_errors.is_empty());
    }
}
