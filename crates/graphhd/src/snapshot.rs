//! Versioned binary snapshots: a trained [`GraphHdModel`] as a
//! deployable artifact.
//!
//! The VS-Graph and FPGA-GraphHD follow-ups both treat the trained
//! associative memory as the thing you ship; this module gives the suite
//! the same property without external dependencies. A snapshot stores the
//! full configuration (the basis item memory is a pure function of
//! `(seed, dim)`, so it is *not* stored), plus the packed class vectors.
//! Every multi-byte field is written little-endian regardless of host, so
//! snapshots are bit-portable across machines; a magic and a format
//! version make foreign or future files fail loudly instead of decoding
//! into garbage.
//!
//! Layout of format version 2 (all integers little-endian):
//!
//! ```text
//! [0..8)    magic            b"GRAPHHD\0"
//! [8..12)   format version   u32 (currently 2)
//! [12..20)  dim              u64
//! [20..28)  item-memory seed u64
//! [28]      centrality tag   u8  (0 PageRank, 1 Degree, 2 VertexId)
//! [29]      tie-break tag    u8  (0 Positive, 1 Negative, 2 Seeded)
//! [30..38)  tie-break seed   u64 (0 unless tag is Seeded)
//! [38..46)  pagerank iters   u64
//! [46..54)  pagerank damping f64 (IEEE-754 bits)
//! [54]      encoder tag      u8  (0 Centrality, 1 VertexSimilarity,
//!                                 2 EdgeWeighted)
//! [55..63)  encoder param    u64 (0 / levels / weight cap)
//! [63..71)  num_classes      u64
//! [71..)    class vectors    num_classes × ⌈dim/64⌉ × u64 packed words
//! ```
//!
//! Version 1 files — identical except that the two encoder fields are
//! absent (`num_classes` starts at offset 54) — still load, and decode
//! as the GraphHD centrality strategy, the only encoder that existed
//! when they were written.

use crate::error::SnapshotError;
use crate::{CentralityKind, EncoderKind, Error, GraphEncoder, GraphHdConfig, GraphHdModel};
use graphcore::PageRankConfig;
use hdvec::{Hypervector, TieBreak};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The 8-byte magic every GraphHD snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GRAPHHD\0";

/// The snapshot format version this build writes. Version 1 files (the
/// pre-strategy format without encoder fields) are still readable.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The pre-strategy snapshot format, accepted on load for backward
/// compatibility.
const SNAPSHOT_VERSION_V1: u32 = 1;

fn centrality_tag(kind: CentralityKind) -> u8 {
    match kind {
        CentralityKind::PageRank => 0,
        CentralityKind::Degree => 1,
        CentralityKind::VertexId => 2,
    }
}

fn centrality_from_tag(tag: u8) -> Result<CentralityKind, SnapshotError> {
    match tag {
        0 => Ok(CentralityKind::PageRank),
        1 => Ok(CentralityKind::Degree),
        2 => Ok(CentralityKind::VertexId),
        _ => Err(SnapshotError::Corrupt {
            what: "centrality tag",
        }),
    }
}

fn encoder_fields(kind: EncoderKind) -> (u8, u64) {
    match kind {
        EncoderKind::Centrality => (0, 0),
        EncoderKind::VertexSimilarity { levels } => (1, u64::from(levels)),
        EncoderKind::EdgeWeighted { weight_cap } => (2, u64::from(weight_cap)),
    }
}

fn encoder_from_fields(tag: u8, param: u64) -> Result<EncoderKind, SnapshotError> {
    let corrupt = SnapshotError::Corrupt {
        what: "encoder fields",
    };
    let kind = match tag {
        // A non-zero parameter on the parameterless strategy means the
        // header bytes are shifted or damaged; refuse, as for tie-breaks.
        0 if param == 0 => EncoderKind::Centrality,
        0 => return Err(corrupt),
        1 => EncoderKind::VertexSimilarity {
            levels: u32::try_from(param).map_err(|_| corrupt)?,
        },
        2 => EncoderKind::EdgeWeighted {
            weight_cap: u32::try_from(param).map_err(|_| corrupt)?,
        },
        _ => {
            return Err(SnapshotError::Corrupt {
                what: "encoder tag",
            })
        }
    };
    // Out-of-range parameters (levels < 2, zero weight cap) fail the
    // same strategy validation the config builder applies.
    kind.validate().map_err(|_| corrupt)?;
    Ok(kind)
}

fn tie_break_fields(tie: TieBreak) -> (u8, u64) {
    match tie {
        TieBreak::Positive => (0, 0),
        TieBreak::Negative => (1, 0),
        TieBreak::Seeded(seed) => (2, seed),
    }
}

fn tie_break_from_fields(tag: u8, seed: u64) -> Result<TieBreak, SnapshotError> {
    match (tag, seed) {
        (0, 0) => Ok(TieBreak::Positive),
        (1, 0) => Ok(TieBreak::Negative),
        (2, seed) => Ok(TieBreak::Seeded(seed)),
        // A non-zero seed on a seedless policy means the header bytes are
        // shifted or damaged; refuse rather than silently dropping state.
        _ => Err(SnapshotError::Corrupt {
            what: "tie-break fields",
        }),
    }
}

/// Reads exactly `N` bytes, mapping a clean EOF to
/// [`SnapshotError::Truncated`] and any other failure to [`Error::Io`].
fn read_array<const N: usize, R: Read>(reader: &mut R) -> Result<[u8; N], Error> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Snapshot(SnapshotError::Truncated)
        } else {
            Error::from(e)
        }
    })?;
    Ok(buf)
}

fn read_u8<R: Read>(reader: &mut R) -> Result<u8, Error> {
    Ok(read_array::<1, _>(reader)?[0])
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, Error> {
    Ok(u32::from_le_bytes(read_array::<4, _>(reader)?))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, Error> {
    Ok(u64::from_le_bytes(read_array::<8, _>(reader)?))
}

/// A `u64` header field that must fit in `usize` (snapshots written on a
/// 64-bit host must fail cleanly, not wrap, on a 32-bit one).
fn read_len<R: Read>(reader: &mut R, what: &'static str) -> Result<usize, Error> {
    usize::try_from(read_u64(reader)?).map_err(|_| Error::Snapshot(SnapshotError::Corrupt { what }))
}

impl GraphHdModel {
    /// Serialises the model into `writer` in the versioned binary
    /// format (layout documented at the top of
    /// `crates/graphhd/src/snapshot.rs`; magic [`SNAPSHOT_MAGIC`],
    /// version [`SNAPSHOT_VERSION`], then config + packed class
    /// vectors, all little-endian).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if writing fails.
    pub fn save_to<W: Write>(&self, writer: &mut W) -> Result<(), Error> {
        let config = self.encoder().config();
        let (tie_tag, tie_seed) = tie_break_fields(config.tie_break);
        let (encoder_tag, encoder_param) = encoder_fields(config.encoder);
        writer.write_all(&SNAPSHOT_MAGIC)?;
        writer.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        writer.write_all(&(config.dim as u64).to_le_bytes())?;
        writer.write_all(&config.seed.to_le_bytes())?;
        writer.write_all(&[centrality_tag(config.centrality), tie_tag])?;
        writer.write_all(&tie_seed.to_le_bytes())?;
        writer.write_all(&(config.pagerank.iterations as u64).to_le_bytes())?;
        writer.write_all(&config.pagerank.damping.to_bits().to_le_bytes())?;
        writer.write_all(&[encoder_tag])?;
        writer.write_all(&encoder_param.to_le_bytes())?;
        writer.write_all(&(self.num_classes() as u64).to_le_bytes())?;
        for class_vector in self.class_vectors() {
            for &word in class_vector.words() {
                writer.write_all(&word.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Saves the model to a file (see [`save_to`](Self::save_to)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be created or written.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), Error> {
        let mut writer = BufWriter::new(File::create(path)?);
        self.save_to(&mut writer)?;
        writer.flush()?;
        Ok(())
    }

    /// Reads a model from `reader`, validating magic, version and every
    /// header field, and requiring the stream to end exactly after the
    /// declared payload.
    ///
    /// The loaded model predicts bit-identically to the saved one on any
    /// machine (the format is endian-stable and the basis item memory is
    /// re-derived from the stored seed). Its integer accumulators restart
    /// from the stored class vectors, so a subsequent
    /// [`retrain`](Self::retrain) refines the deployable artifact rather
    /// than resuming the original training counters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] for malformed input and [`Error::Io`]
    /// for read failures.
    pub fn load_from<R: Read>(reader: &mut R) -> Result<Self, Error> {
        if read_array::<8, _>(reader)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic.into());
        }
        let version = read_u32(reader)?;
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_V1 {
            return Err(SnapshotError::UnsupportedVersion { found: version }.into());
        }
        let dim = read_len(reader, "dimension")?;
        let seed = read_u64(reader)?;
        let centrality = centrality_from_tag(read_u8(reader)?)?;
        let tie_tag = read_u8(reader)?;
        let tie_break = tie_break_from_fields(tie_tag, read_u64(reader)?)?;
        let iterations = read_len(reader, "pagerank iterations")?;
        let damping = f64::from_bits(read_u64(reader)?);
        if !damping.is_finite() {
            return Err(SnapshotError::Corrupt {
                what: "pagerank damping",
            }
            .into());
        }
        // Version 1 predates the strategy layer: no encoder fields, and
        // every v1 model was the centrality encoder.
        let encoder = if version == SNAPSHOT_VERSION_V1 {
            EncoderKind::Centrality
        } else {
            let tag = read_u8(reader)?;
            encoder_from_fields(tag, read_u64(reader)?)?
        };
        let num_classes = read_len(reader, "class count")?;
        if num_classes == 0 {
            return Err(SnapshotError::Corrupt {
                what: "class count",
            }
            .into());
        }

        let config = GraphHdConfig::builder()
            .dim(dim)
            .seed(seed)
            .centrality(centrality)
            .with_encoder(encoder)
            .tie_break(tie_break)
            .pagerank(PageRankConfig {
                damping,
                iterations,
            })
            .build()
            // The encoder fields were validated above, so the only
            // builder failure left is a zero dimension.
            .map_err(|_| Error::Snapshot(SnapshotError::Corrupt { what: "dimension" }))?;

        let words_per_vector = dim.div_ceil(64);
        // Header lengths are untrusted until the payload bytes actually
        // arrive: capacity hints are clamped so a forged multi-exabyte
        // `dim`/`num_classes` surfaces as `Truncated` on the first
        // missing word instead of aborting the process in the allocator.
        const PREALLOC_CAP: usize = 1 << 16;
        let mut class_vectors = Vec::with_capacity(num_classes.min(PREALLOC_CAP));
        for _ in 0..num_classes {
            let mut words = Vec::with_capacity(words_per_vector.min(PREALLOC_CAP));
            for _ in 0..words_per_vector {
                words.push(read_u64(reader)?);
            }
            // Bits past `dim` in the last word must be zero — every
            // in-memory hypervector keeps that invariant, and the word
            // kernels rely on it.
            let tail_bits = dim % 64;
            if tail_bits != 0 && words[words_per_vector - 1] >> tail_bits != 0 {
                return Err(SnapshotError::Corrupt {
                    what: "class vector tail bits",
                }
                .into());
            }
            let hv = Hypervector::from_fn(dim, |i| (words[i >> 6] >> (i & 63)) & 1 == 1)
                .map_err(Error::from)?;
            debug_assert_eq!(hv.words(), words);
            class_vectors.push(hv);
        }

        // The payload length is declared by the header; anything after it
        // means the file is not what the header claims.
        let mut probe = [0u8; 1];
        match reader.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => return Err(SnapshotError::TrailingBytes.into()),
            Err(e) => return Err(e.into()),
        }

        let encoder = GraphEncoder::new(config)?;
        Self::from_class_vectors(encoder, &class_vectors)
    }

    /// Loads a model from a file (see [`load_from`](Self::load_from)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be opened and
    /// [`Error::Snapshot`] if its contents are malformed.
    ///
    /// # Examples
    ///
    /// ```
    /// use graphhd::{GraphHdConfig, GraphHdModel};
    /// use graphcore::generate;
    ///
    /// let graphs = vec![generate::complete(8), generate::path(8)];
    /// let config = GraphHdConfig::builder().dim(512).build()?;
    /// let model = GraphHdModel::fit(config, &graphs, &[0, 1], 2)?;
    ///
    /// let path = std::env::temp_dir().join("graphhd-doctest.ghd");
    /// model.save(&path)?;
    /// let restored = GraphHdModel::load(&path)?;
    /// std::fs::remove_file(&path)?;
    ///
    /// assert_eq!(restored.class_vectors(), model.class_vectors());
    /// assert_eq!(
    ///     restored.predict(&generate::complete(10)),
    ///     model.predict(&generate::complete(10)),
    /// );
    /// # Ok::<(), graphhd::Error>(())
    /// ```
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, Error> {
        let mut reader = BufReader::new(File::open(path)?);
        Self::load_from(&mut reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn trained(dim: usize) -> GraphHdModel {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..14 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
            graphs.push(generate::star(n));
            labels.push(2);
        }
        let config = GraphHdConfig::builder()
            .dim(dim)
            .seed(0xBEEF)
            .tie_break(TieBreak::Seeded(17))
            .build()
            .expect("valid dimension");
        GraphHdModel::fit(config, &graphs, &labels, 3).expect("valid inputs")
    }

    fn snapshot_bytes(model: &GraphHdModel) -> Vec<u8> {
        let mut bytes = Vec::new();
        model.save_to(&mut bytes).expect("in-memory write");
        bytes
    }

    #[test]
    fn round_trip_preserves_config_and_vectors() {
        for dim in [63usize, 64, 65, 1024] {
            let model = trained(dim);
            let bytes = snapshot_bytes(&model);
            let restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid snapshot");
            assert_eq!(
                restored.encoder().config(),
                model.encoder().config(),
                "dim {dim}"
            );
            assert_eq!(restored.class_vectors(), model.class_vectors(), "dim {dim}");
            // Predictions agree on fresh graphs.
            for n in 5..20 {
                let g = generate::cycle(n);
                assert_eq!(restored.predict(&g), model.predict(&g), "dim {dim} n {n}");
            }
        }
    }

    #[test]
    fn snapshot_size_matches_declared_layout() {
        let model = trained(63);
        let bytes = snapshot_bytes(&model);
        // Header is 71 bytes; 63 dims pack into one word per class.
        assert_eq!(bytes.len(), 71 + 3 * 8);
        assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            SNAPSHOT_VERSION
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[0] ^= 0xFF;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let bytes = snapshot_bytes(&trained(65));
        // Cut inside the magic, the header (including the encoder and
        // class-count fields), and the payload.
        for cut in [3usize, 20, 40, 58, 66, bytes.len() - 1] {
            assert_eq!(
                GraphHdModel::load_from(&mut bytes[..cut].as_ref()).unwrap_err(),
                Error::Snapshot(SnapshotError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = snapshot_bytes(&trained(64));
        bytes.push(0);
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::TrailingBytes)
        );
    }

    #[test]
    fn rejects_corrupt_header_fields() {
        let model = trained(64);
        // Centrality tag out of range.
        let mut bytes = snapshot_bytes(&model);
        bytes[28] = 9;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "centrality tag"
            })
        );
        // Tie-break tag out of range.
        let mut bytes = snapshot_bytes(&model);
        bytes[29] = 7;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "tie-break fields"
            })
        );
        // Non-finite damping.
        let mut bytes = snapshot_bytes(&model);
        bytes[46..54].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "pagerank damping"
            })
        );
        // Encoder tag out of range.
        let mut bytes = snapshot_bytes(&model);
        bytes[54] = 9;
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "encoder tag"
            })
        );
        // Non-zero parameter on the parameterless centrality encoder.
        let mut bytes = snapshot_bytes(&model);
        bytes[55..63].copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "encoder fields"
            })
        );
        // Vertex-similarity depth below the minimum of 2 levels.
        let mut bytes = snapshot_bytes(&model);
        bytes[54] = 1;
        bytes[55..63].copy_from_slice(&1u64.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "encoder fields"
            })
        );
        // Zero classes.
        let mut bytes = snapshot_bytes(&model);
        bytes[63..71].copy_from_slice(&0u64.to_le_bytes());
        // (payload still present -> either corrupt count or trailing data;
        // the count check fires first)
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "class count"
            })
        );
        // Zero dimension.
        let mut bytes = snapshot_bytes(&model);
        bytes[12..20].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt { what: "dimension" })
        );
    }

    #[test]
    fn forged_huge_header_lengths_fail_cleanly_not_in_the_allocator() {
        // dim = 2^60 passes the numeric header checks; the payload is
        // absent, so the load must report Truncated (after clamped,
        // harmless preallocation) rather than aborting on an
        // exabyte-scale `Vec::with_capacity`.
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[12..20].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let err = GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, Error::Snapshot(SnapshotError::Truncated));
        // Same for a forged class count.
        let mut bytes = snapshot_bytes(&trained(64));
        bytes[63..71].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let err = GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, Error::Snapshot(SnapshotError::Truncated));
    }

    #[test]
    fn rejects_set_tail_bits() {
        let model = trained(63);
        let mut bytes = snapshot_bytes(&model);
        let last = bytes.len() - 1;
        bytes[last] |= 0x80; // bit 63 of a 63-dim vector's only word
        assert_eq!(
            GraphHdModel::load_from(&mut bytes.as_slice()).unwrap_err(),
            Error::Snapshot(SnapshotError::Corrupt {
                what: "class vector tail bits"
            })
        );
    }

    #[test]
    fn round_trip_preserves_every_encoder_kind() {
        let graphs = vec![generate::complete(8), generate::path(8)];
        for kind in [
            EncoderKind::Centrality,
            EncoderKind::VertexSimilarity { levels: 12 },
            EncoderKind::EdgeWeighted { weight_cap: 3 },
        ] {
            let config = GraphHdConfig::builder()
                .dim(256)
                .with_encoder(kind)
                .build()
                .expect("valid config");
            let model = GraphHdModel::fit(config, &graphs, &[0, 1], 2).expect("valid inputs");
            let bytes = snapshot_bytes(&model);
            let restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid snapshot");
            assert_eq!(restored.encoder().config().encoder, kind);
            assert_eq!(restored.class_vectors(), model.class_vectors());
        }
    }

    #[test]
    fn version_1_snapshots_load_as_the_centrality_strategy() {
        // Reconstruct the pre-strategy layout: same header minus the nine
        // encoder bytes at [54..63), with the version field set to 1.
        let model = trained(64);
        let mut bytes = snapshot_bytes(&model);
        bytes.drain(54..63);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid v1 snapshot");
        assert_eq!(restored.encoder().config(), model.encoder().config());
        assert_eq!(restored.encoder().config().encoder, EncoderKind::Centrality);
        assert_eq!(restored.class_vectors(), model.class_vectors());
    }

    #[test]
    fn loaded_model_supports_retraining() {
        let model = trained(256);
        let bytes = snapshot_bytes(&model);
        let mut restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid snapshot");
        let graphs: Vec<_> = (6..14)
            .flat_map(|n| [generate::complete(n), generate::path(n)])
            .collect();
        let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
        let encodings = restored.encoder().encode_all(&graphs);
        let report = restored.retrain(&encodings, &labels, 5);
        assert!(!report.epoch_errors.is_empty());
    }
}
