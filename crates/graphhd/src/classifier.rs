//! GraphHD under the suite-wide [`GraphClassifier`] harness.

use crate::{GraphEncoder, GraphHdConfig, GraphHdModel};
use datasets::harness::GraphClassifier;
use datasets::GraphDataset;
use graphcore::Graph;
use parallel::{Pool, PoolHandle};
use std::sync::Arc;

/// GraphHD as a [`GraphClassifier`], with optional retraining epochs (the
/// paper's future-work extension, off by default to match the baseline
/// protocol of Section V).
///
/// # Examples
///
/// ```
/// use datasets::harness::{evaluate_cv, CvProtocol, GraphClassifier};
/// use datasets::surrogate;
/// use graphhd::GraphHdClassifier;
///
/// let dataset = surrogate::generate_surrogate_sized(
///     surrogate::spec_by_name("MUTAG").expect("known"),
///     7,
///     40,
/// );
/// let mut clf = GraphHdClassifier::default();
/// let protocol = CvProtocol { folds: 4, repetitions: 1, seed: 1 };
/// let report = evaluate_cv(&mut clf, &dataset, &protocol)?;
/// assert_eq!(report.method, "GraphHD");
/// # Ok::<(), datasets::SplitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphHdClassifier {
    config: GraphHdConfig,
    retrain_epochs: usize,
    pool: PoolHandle,
    model: Option<GraphHdModel>,
}

impl GraphHdClassifier {
    /// Creates a classifier with the given GraphHD configuration.
    #[must_use]
    pub fn new(config: GraphHdConfig) -> Self {
        Self {
            config,
            retrain_epochs: 0,
            pool: PoolHandle::Global,
            model: None,
        }
    }

    /// Enables the retraining extension with the given epoch budget.
    #[must_use]
    pub fn with_retraining(mut self, epochs: usize) -> Self {
        self.retrain_epochs = epochs;
        self
    }

    /// Pins training and inference to an explicit [`Pool`] (the default
    /// is the process-wide global pool). Results are bit-identical either
    /// way; this only controls the parallelism degree.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = PoolHandle::Owned(pool);
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &GraphHdConfig {
        &self.config
    }

    /// The trained model, if fitted.
    #[must_use]
    pub fn model(&self) -> Option<&GraphHdModel> {
        self.model.as_ref()
    }
}

impl Default for GraphHdClassifier {
    fn default() -> Self {
        Self::new(GraphHdConfig::default())
    }
}

impl GraphClassifier for GraphHdClassifier {
    fn name(&self) -> &str {
        if self.retrain_epochs > 0 {
            "GraphHD+retrain"
        } else {
            "GraphHD"
        }
    }

    fn fit(&mut self, dataset: &GraphDataset, train: &[usize]) {
        let graphs: Vec<&Graph> = train.iter().map(|&i| dataset.graph(i)).collect();
        let labels: Vec<u32> = train.iter().map(|&i| dataset.label(i)).collect();
        let encoder = GraphEncoder::new(self.config)
            .expect("harness supplies valid configurations")
            .with_pool_handle(self.pool.clone());
        let model = if self.retrain_epochs > 0 {
            // Encode once and reuse the encodings for the retraining
            // epochs — encoding dominates training cost, so routing the
            // retrain path through `fit_with_encoder` would pay it twice.
            // Validation stays identical to the non-retraining branch.
            GraphHdModel::validate_inputs(graphs.len(), &labels, dataset.num_classes())
                .expect("harness supplies consistent datasets");
            let encodings = encoder.encode_all(&graphs);
            let mut model =
                GraphHdModel::fit_encoded(encoder, &encodings, &labels, dataset.num_classes());
            let _ = model.retrain(&encodings, &labels, self.retrain_epochs);
            model
        } else {
            GraphHdModel::fit_with_encoder(encoder, &graphs, &labels, dataset.num_classes())
                .expect("harness supplies consistent datasets")
        };
        self.model = Some(model);
    }

    fn predict(&self, dataset: &GraphDataset, indices: &[usize]) -> Vec<u32> {
        let model = self
            .model
            .as_ref()
            .expect("fit must be called before predict");
        let graphs: Vec<&Graph> = indices.iter().map(|&i| dataset.graph(i)).collect();
        model.predict_all(&graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::harness::{evaluate_cv, CvProtocol};
    use datasets::surrogate;

    #[test]
    fn beats_chance_on_surrogate() {
        let spec = surrogate::spec_by_name("NCI1").expect("known dataset");
        let dataset = surrogate::generate_surrogate_sized(spec, 3, 150);
        let mut clf = GraphHdClassifier::new(GraphHdConfig::with_dim(4096));
        let protocol = CvProtocol {
            folds: 3,
            repetitions: 1,
            seed: 11,
        };
        let report = evaluate_cv(&mut clf, &dataset, &protocol).expect("splittable");
        let chance = 1.0 / dataset.num_classes() as f64;
        let accuracy = report.accuracy().mean;
        assert!(
            accuracy > chance + 0.10,
            "accuracy {accuracy} vs chance {chance}"
        );
    }

    #[test]
    #[should_panic(expected = "harness supplies consistent datasets")]
    fn retraining_fit_validates_like_the_plain_path() {
        // Regression: the encode-once retraining branch must reject bad
        // input (here: an empty training selection) exactly like the
        // validated non-retraining branch, not silently fit a noise model.
        let dataset = surrogate::generate_surrogate_sized(
            surrogate::spec_by_name("MUTAG").expect("known"),
            4,
            12,
        );
        let mut clf = GraphHdClassifier::default().with_retraining(2);
        clf.fit(&dataset, &[]);
    }

    #[test]
    fn retraining_variant_renames_itself() {
        let clf = GraphHdClassifier::default().with_retraining(5);
        assert_eq!(clf.name(), "GraphHD+retrain");
        assert_eq!(GraphHdClassifier::default().name(), "GraphHD");
    }

    #[test]
    #[should_panic(expected = "fit must be called")]
    fn predict_before_fit_panics() {
        let dataset = surrogate::generate_surrogate_sized(
            surrogate::spec_by_name("MUTAG").expect("known"),
            1,
            10,
        );
        let clf = GraphHdClassifier::default();
        let _ = clf.predict(&dataset, &[0]);
    }
}
