//! The suite-wide classifier interface and GraphHD's implementation of
//! it.
//!
//! [`GraphClassifier`] used to live in `datasets::harness`, which meant
//! serving code had to pull in the whole benchmark layer to program
//! against "a thing that classifies graphs". It now lives here, next to
//! the model it abstracts, speaking plain graph slices; `datasets`
//! re-exports it for compatibility and its CV driver, the serving
//! engine, baselines and examples all program against this one trait.

use crate::{EncoderKind, Error, GraphEncoder, GraphHdConfig, GraphHdModel};
use graphcore::Graph;
use parallel::{Pool, PoolHandle};
use std::sync::Arc;

/// A graph classification method under the paper's protocol.
///
/// `fit` trains **from scratch** — implementations must discard any state
/// from a previous call, because the CV driver reuses one instance across
/// folds. Both methods speak `&[&Graph]`, so callers select subsets
/// (folds, batches) without cloning graphs and without this crate
/// depending on any dataset container.
pub trait GraphClassifier {
    /// Human-readable method name (used in tables, e.g. `"GraphHD"`).
    fn name(&self) -> &str;

    /// Trains on `graphs`/`labels` with labels in `0..num_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for inconsistent inputs (empty training set,
    /// length mismatch, out-of-range labels, zero classes).
    fn fit(&mut self, graphs: &[&Graph], labels: &[u32], num_classes: usize) -> Result<(), Error>;

    /// Predicts class labels for `graphs`. Called only after a
    /// successful `fit`; implementations may panic otherwise.
    fn predict(&self, graphs: &[&Graph]) -> Vec<u32>;
}

/// Shared input validation for [`GraphClassifier::fit`]
/// implementations: every classifier in the suite (and any downstream
/// one) rejects inconsistent training sets with identical errors.
///
/// # Errors
///
/// [`Error::ZeroClasses`], [`Error::EmptyTrainingSet`],
/// [`Error::LengthMismatch`] or [`Error::LabelOutOfRange`], checked in
/// that order.
pub fn validate_fit_inputs(
    graph_count: usize,
    labels: &[u32],
    num_classes: usize,
) -> Result<(), Error> {
    if num_classes == 0 {
        return Err(Error::ZeroClasses);
    }
    if graph_count == 0 {
        return Err(Error::EmptyTrainingSet);
    }
    if graph_count != labels.len() {
        return Err(Error::LengthMismatch {
            graphs: graph_count,
            labels: labels.len(),
        });
    }
    if let Some((index, &label)) = labels
        .iter()
        .enumerate()
        .find(|(_, &l)| l as usize >= num_classes)
    {
        return Err(Error::LabelOutOfRange {
            index,
            label,
            num_classes,
        });
    }
    Ok(())
}

/// GraphHD as a [`GraphClassifier`], with optional retraining epochs (the
/// paper's future-work extension, off by default to match the baseline
/// protocol of Section V).
///
/// # Examples
///
/// ```
/// use graphcore::generate;
/// use graphhd::{GraphClassifier, GraphHdClassifier, GraphHdConfig};
///
/// let graphs: Vec<_> = (6..14)
///     .flat_map(|n| [generate::complete(n), generate::path(n)])
///     .collect();
/// let refs: Vec<&_> = graphs.iter().collect();
/// let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
///
/// let config = GraphHdConfig::builder().dim(2048).build()?;
/// let mut clf = GraphHdClassifier::new(config);
/// clf.fit(&refs, &labels, 2)?;
/// assert_eq!(clf.predict(&refs[..2]), vec![0, 1]);
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphHdClassifier {
    config: GraphHdConfig,
    retrain_epochs: usize,
    pool: PoolHandle,
    model: Option<GraphHdModel>,
    name: String,
}

/// Table name for a configuration: the plain centrality recipe keeps the
/// paper's `"GraphHD"` label, the alternative strategies get a bracketed
/// suffix, and retraining appends `+retrain` as before.
fn display_name(config: &GraphHdConfig, retrain_epochs: usize) -> String {
    let base = match config.encoder {
        EncoderKind::Centrality => "GraphHD",
        EncoderKind::VertexSimilarity { .. } => "GraphHD[vs]",
        EncoderKind::EdgeWeighted { .. } => "GraphHD[ew]",
    };
    if retrain_epochs > 0 {
        format!("{base}+retrain")
    } else {
        base.to_owned()
    }
}

impl GraphHdClassifier {
    /// Creates a classifier with the given GraphHD configuration.
    #[must_use]
    pub fn new(config: GraphHdConfig) -> Self {
        Self {
            config,
            retrain_epochs: 0,
            pool: PoolHandle::Global,
            model: None,
            name: display_name(&config, 0),
        }
    }

    /// Enables the retraining extension with the given epoch budget.
    #[must_use]
    pub fn with_retraining(mut self, epochs: usize) -> Self {
        self.retrain_epochs = epochs;
        self.name = display_name(&self.config, epochs);
        self
    }

    /// Pins training and inference to an explicit [`Pool`] (the default
    /// is the process-wide global pool). Results are bit-identical either
    /// way; this only controls the parallelism degree.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = PoolHandle::Owned(pool);
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &GraphHdConfig {
        &self.config
    }

    /// The trained model, if fitted.
    #[must_use]
    pub fn model(&self) -> Option<&GraphHdModel> {
        self.model.as_ref()
    }
}

impl Default for GraphHdClassifier {
    fn default() -> Self {
        Self::new(GraphHdConfig::default())
    }
}

impl GraphClassifier for GraphHdClassifier {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, graphs: &[&Graph], labels: &[u32], num_classes: usize) -> Result<(), Error> {
        let encoder = GraphEncoder::new(self.config)?.with_pool_handle(self.pool.clone());
        let model = GraphHdModel::fit_with_retraining(
            encoder,
            graphs,
            labels,
            num_classes,
            self.retrain_epochs,
        )?;
        self.model = Some(model);
        Ok(())
    }

    fn predict(&self, graphs: &[&Graph]) -> Vec<u32> {
        let model = self
            .model
            .as_ref()
            .expect("fit must be called before predict");
        model.predict_all(graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn toy() -> (Vec<Graph>, Vec<u32>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..16 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
        }
        (graphs, labels)
    }

    #[test]
    fn fit_and_predict_through_the_trait() {
        let (graphs, labels) = toy();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let config = GraphHdConfig::builder()
            .dim(4096)
            .build()
            .expect("valid dimension");
        let mut clf = GraphHdClassifier::new(config);
        clf.fit(&refs, &labels, 2).expect("consistent inputs");
        let predictions = clf.predict(&refs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "training accuracy {accuracy}");
        // The trait predictions match the underlying model's.
        let model = clf.model().expect("fitted");
        assert_eq!(predictions, model.predict_batch(&graphs));
    }

    #[test]
    fn fit_surfaces_validation_errors_instead_of_panicking() {
        // Regression (reshaped from the old panic-based test): both the
        // plain and the encode-once retraining branches reject bad input
        // through the unified error surface.
        let mut plain = GraphHdClassifier::default();
        assert_eq!(plain.fit(&[], &[], 2).unwrap_err(), Error::EmptyTrainingSet);
        let mut retraining = GraphHdClassifier::default().with_retraining(2);
        assert_eq!(
            retraining.fit(&[], &[], 2).unwrap_err(),
            Error::EmptyTrainingSet
        );
        let g = generate::path(3);
        assert_eq!(
            retraining.fit(&[&g], &[7], 2).unwrap_err(),
            Error::LabelOutOfRange {
                index: 0,
                label: 7,
                num_classes: 2
            }
        );
        assert!(retraining.model().is_none());
    }

    #[test]
    fn retraining_variant_renames_itself() {
        let clf = GraphHdClassifier::default().with_retraining(5);
        assert_eq!(clf.name(), "GraphHD+retrain");
        assert_eq!(GraphHdClassifier::default().name(), "GraphHD");
    }

    #[test]
    fn alternative_strategies_rename_the_classifier() {
        let vs = GraphHdConfig::builder()
            .with_encoder(EncoderKind::vertex_similarity())
            .build()
            .expect("valid config");
        assert_eq!(GraphHdClassifier::new(vs).name(), "GraphHD[vs]");
        let ew = GraphHdConfig::builder()
            .with_encoder(EncoderKind::edge_weighted())
            .build()
            .expect("valid config");
        assert_eq!(
            GraphHdClassifier::new(ew).with_retraining(3).name(),
            "GraphHD[ew]+retrain"
        );
    }

    #[test]
    #[should_panic(expected = "fit must be called")]
    fn predict_before_fit_panics() {
        let clf = GraphHdClassifier::default();
        let _ = clf.predict(&[]);
    }
}
