//! GraphHD configuration and its fluent builder.

use crate::{EncoderKind, Error};
use graphcore::PageRankConfig;
use hdvec::TieBreak;

/// Which centrality metric supplies the vertex identifiers (ranks).
///
/// The paper proposes PageRank (Section IV-C); the alternatives exist for
/// the suite's ablation experiment A1, which quantifies how much the
/// choice matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CentralityKind {
    /// PageRank centrality — the paper's choice.
    #[default]
    PageRank,
    /// Degree centrality — a cheaper structural identifier.
    Degree,
    /// Raw vertex ids — *no* topological correspondence between graphs;
    /// the "naive random hypervector per vertex" strawman the paper argues
    /// against in Section IV-C.
    VertexId,
}

impl CentralityKind {
    /// Human-readable name for experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CentralityKind::PageRank => "pagerank",
            CentralityKind::Degree => "degree",
            CentralityKind::VertexId => "vertex-id",
        }
    }
}

/// Configuration of the GraphHD pipeline. The defaults reproduce the
/// paper's experimental setup (Section V): 10,000-dimensional bipolar
/// hypervectors and 10 PageRank iterations.
///
/// Non-default configurations are built through the validating fluent
/// [`builder`](Self::builder); the struct fields stay public for
/// inspection and for struct-update syntax in existing code.
///
/// # Examples
///
/// ```
/// use graphhd::GraphHdConfig;
///
/// let config = GraphHdConfig::default();
/// assert_eq!(config.dim, 10_000);
/// assert_eq!(config.pagerank.iterations, 10);
///
/// let ablation = GraphHdConfig::builder().dim(4096).seed(7).build()?;
/// assert_eq!(ablation.dim, 4096);
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphHdConfig {
    /// Hypervector dimensionality d (paper: 10,000).
    pub dim: usize,
    /// PageRank parameters (paper: 10 iterations, standard damping).
    pub pagerank: PageRankConfig,
    /// The centrality metric used for vertex identifiers.
    pub centrality: CentralityKind,
    /// The encoding strategy (paper default: [`EncoderKind::Centrality`];
    /// see [`crate::strategy`] for the alternatives).
    pub encoder: EncoderKind,
    /// Tie-break policy for bundling majorities.
    pub tie_break: TieBreak,
    /// Seed for the basis item memory (and derived randomness).
    pub seed: u64,
}

impl Default for GraphHdConfig {
    fn default() -> Self {
        Self {
            dim: hdvec::DEFAULT_DIM,
            pagerank: PageRankConfig::default(),
            centrality: CentralityKind::PageRank,
            encoder: EncoderKind::Centrality,
            tie_break: TieBreak::default(),
            seed: 0x6_12A,
        }
    }
}

impl GraphHdConfig {
    /// Starts a fluent, validating builder from the paper defaults — the
    /// one construction surface shared by ablation binaries, tests and
    /// the serving [`EngineBuilder`] that embeds it.
    ///
    /// [`EngineBuilder`]: https://docs.rs/engine
    pub fn builder() -> GraphHdConfigBuilder {
        GraphHdConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Fluent builder for [`GraphHdConfig`], created by
/// [`GraphHdConfig::builder`]. Every setter returns `self`;
/// [`build`](Self::build) validates and produces the configuration.
///
/// # Examples
///
/// ```
/// use graphhd::{CentralityKind, GraphHdConfig};
///
/// let config = GraphHdConfig::builder()
///     .dim(2048)
///     .centrality(CentralityKind::Degree)
///     .seed(99)
///     .build()?;
/// assert_eq!(config.dim, 2048);
/// assert_eq!(config.centrality, CentralityKind::Degree);
///
/// // Invalid configurations are rejected at build time, not deep inside
/// // a later constructor.
/// assert!(GraphHdConfig::builder().dim(0).build().is_err());
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone, Copy)]
#[must_use = "a builder does nothing until `build()` is called"]
pub struct GraphHdConfigBuilder {
    config: GraphHdConfig,
}

impl GraphHdConfigBuilder {
    /// Sets the hypervector dimensionality d (paper: 10,000).
    pub fn dim(mut self, dim: usize) -> Self {
        self.config.dim = dim;
        self
    }

    /// Sets the PageRank parameters (paper: 10 iterations, damping 0.85).
    pub fn pagerank(mut self, pagerank: PageRankConfig) -> Self {
        self.config.pagerank = pagerank;
        self
    }

    /// Sets the centrality metric supplying vertex identifiers.
    pub fn centrality(mut self, centrality: CentralityKind) -> Self {
        self.config.centrality = centrality;
        self
    }

    /// Selects the encoding strategy (see [`crate::strategy`] for the
    /// available kinds). Strategy parameters are validated by
    /// [`build`](Self::build).
    pub fn with_encoder(mut self, encoder: EncoderKind) -> Self {
        self.config.encoder = encoder;
        self
    }

    /// Sets the tie-break policy for bundling majorities.
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.config.tie_break = tie_break;
        self
    }

    /// Sets the seed of the basis item memory (and derived randomness).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroDimension`] if the dimension is zero and
    /// [`Error::InvalidEncoderConfig`] if the selected encoder strategy
    /// has degenerate parameters.
    pub fn build(self) -> Result<GraphHdConfig, Error> {
        if self.config.dim == 0 {
            return Err(Error::ZeroDimension);
        }
        self.config.encoder.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_v() {
        let c = GraphHdConfig::default();
        assert_eq!(c.dim, 10_000);
        assert_eq!(c.pagerank.iterations, 10);
        assert!((c.pagerank.damping - 0.85).abs() < 1e-12);
        assert_eq!(c.centrality, CentralityKind::PageRank);
    }

    #[test]
    fn builder_overrides_single_fields() {
        let config = GraphHdConfig::builder().dim(512).build().expect("valid");
        assert_eq!(config.dim, 512);
        assert_eq!(config.seed, GraphHdConfig::default().seed);
        assert_eq!(
            GraphHdConfig::builder()
                .centrality(CentralityKind::Degree)
                .build()
                .expect("valid")
                .centrality,
            CentralityKind::Degree
        );
        assert_eq!(
            GraphHdConfig::builder()
                .seed(9)
                .build()
                .expect("valid")
                .seed,
            9
        );
    }

    #[test]
    fn builder_rejects_zero_dimension() {
        assert_eq!(
            GraphHdConfig::builder().dim(0).build().unwrap_err(),
            Error::ZeroDimension
        );
    }

    #[test]
    fn builder_sets_pagerank_and_tie_break() {
        let config = GraphHdConfig::builder()
            .pagerank(PageRankConfig {
                damping: 0.9,
                iterations: 25,
            })
            .tie_break(TieBreak::Positive)
            .build()
            .expect("valid");
        assert_eq!(config.pagerank.iterations, 25);
        assert_eq!(config.tie_break, TieBreak::Positive);
    }

    #[test]
    fn builder_selects_and_validates_encoder_strategies() {
        let config = GraphHdConfig::builder()
            .with_encoder(EncoderKind::VertexSimilarity { levels: 8 })
            .build()
            .expect("valid");
        assert_eq!(config.encoder, EncoderKind::VertexSimilarity { levels: 8 });
        // Default configs keep the paper's recipe.
        assert_eq!(GraphHdConfig::default().encoder, EncoderKind::Centrality);
        // Degenerate strategy parameters are rejected at build time.
        assert!(matches!(
            GraphHdConfig::builder()
                .with_encoder(EncoderKind::VertexSimilarity { levels: 0 })
                .build()
                .unwrap_err(),
            Error::InvalidEncoderConfig { .. }
        ));
        assert!(matches!(
            GraphHdConfig::builder()
                .with_encoder(EncoderKind::EdgeWeighted { weight_cap: 0 })
                .build()
                .unwrap_err(),
            Error::InvalidEncoderConfig { .. }
        ));
    }

    #[test]
    fn centrality_names_are_distinct() {
        let names = [
            CentralityKind::PageRank.name(),
            CentralityKind::Degree.name(),
            CentralityKind::VertexId.name(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
