//! GraphHD configuration.

use graphcore::PageRankConfig;
use hdvec::TieBreak;

/// Which centrality metric supplies the vertex identifiers (ranks).
///
/// The paper proposes PageRank (Section IV-C); the alternatives exist for
/// the suite's ablation experiment A1, which quantifies how much the
/// choice matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CentralityKind {
    /// PageRank centrality — the paper's choice.
    #[default]
    PageRank,
    /// Degree centrality — a cheaper structural identifier.
    Degree,
    /// Raw vertex ids — *no* topological correspondence between graphs;
    /// the "naive random hypervector per vertex" strawman the paper argues
    /// against in Section IV-C.
    VertexId,
}

impl CentralityKind {
    /// Human-readable name for experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CentralityKind::PageRank => "pagerank",
            CentralityKind::Degree => "degree",
            CentralityKind::VertexId => "vertex-id",
        }
    }
}

/// Configuration of the GraphHD pipeline. The defaults reproduce the
/// paper's experimental setup (Section V): 10,000-dimensional bipolar
/// hypervectors and 10 PageRank iterations.
///
/// # Examples
///
/// ```
/// use graphhd::GraphHdConfig;
///
/// let config = GraphHdConfig::default();
/// assert_eq!(config.dim, 10_000);
/// assert_eq!(config.pagerank.iterations, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphHdConfig {
    /// Hypervector dimensionality d (paper: 10,000).
    pub dim: usize,
    /// PageRank parameters (paper: 10 iterations, standard damping).
    pub pagerank: PageRankConfig,
    /// The centrality metric used for vertex identifiers.
    pub centrality: CentralityKind,
    /// Tie-break policy for bundling majorities.
    pub tie_break: TieBreak,
    /// Seed for the basis item memory (and derived randomness).
    pub seed: u64,
}

impl Default for GraphHdConfig {
    fn default() -> Self {
        Self {
            dim: hdvec::DEFAULT_DIM,
            pagerank: PageRankConfig::default(),
            centrality: CentralityKind::PageRank,
            tie_break: TieBreak::default(),
            seed: 0x6_12A,
        }
    }
}

impl GraphHdConfig {
    /// A default configuration with the given hypervector dimensionality
    /// (used by the dimensionality-ablation experiment).
    #[must_use]
    pub fn with_dim(dim: usize) -> Self {
        Self {
            dim,
            ..Self::default()
        }
    }

    /// A default configuration with a different centrality metric (used
    /// by the centrality-ablation experiment).
    #[must_use]
    pub fn with_centrality(centrality: CentralityKind) -> Self {
        Self {
            centrality,
            ..Self::default()
        }
    }

    /// A default configuration with a different seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_v() {
        let c = GraphHdConfig::default();
        assert_eq!(c.dim, 10_000);
        assert_eq!(c.pagerank.iterations, 10);
        assert!((c.pagerank.damping - 0.85).abs() < 1e-12);
        assert_eq!(c.centrality, CentralityKind::PageRank);
    }

    #[test]
    fn builders_override_single_fields() {
        assert_eq!(GraphHdConfig::with_dim(512).dim, 512);
        assert_eq!(
            GraphHdConfig::with_centrality(CentralityKind::Degree).centrality,
            CentralityKind::Degree
        );
        assert_eq!(GraphHdConfig::with_seed(9).seed, 9);
    }

    #[test]
    fn centrality_names_are_distinct() {
        let names = [
            CentralityKind::PageRank.name(),
            CentralityKind::Degree.name(),
            CentralityKind::VertexId.name(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
