//! Multiple class-vectors per class (future-work direction 1 of
//! Section VII).
//!
//! The baseline GraphHD compresses a whole class into one hypervector,
//! which blurs multi-modal classes. This extension keeps up to
//! `max_prototypes` accumulators per class: a training sample joins its
//! nearest prototype unless it is too dissimilar, in which case it seeds a
//! new prototype. Inference takes the class of the most similar prototype
//! overall.

use crate::select::argmax_tie_low;
use crate::{Error, GraphClassifier, GraphEncoder, GraphHdConfig, GraphHdModel};
use graphcore::Graph;
use hdvec::{Accumulator, ClassMemory, Hypervector};
use std::borrow::Borrow;

/// Configuration of the multi-prototype extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrototypeConfig {
    /// The underlying GraphHD configuration.
    pub base: GraphHdConfig,
    /// Maximum prototypes per class (1 reduces to baseline GraphHD).
    pub max_prototypes: usize,
    /// A sample spawns a new prototype when its cosine similarity to the
    /// nearest existing prototype of its class falls below this value.
    pub spawn_threshold: f64,
}

impl Default for PrototypeConfig {
    fn default() -> Self {
        // Encodings of same-family graphs sit around cosine 0.6–0.7 while
        // cross-family pairs sit below ~0.45 (measured on the toy
        // families of the test suite); 0.5 splits between those regimes.
        Self {
            base: GraphHdConfig::default(),
            max_prototypes: 4,
            spawn_threshold: 0.5,
        }
    }
}

/// A GraphHD model with multiple prototypes per class.
///
/// # Examples
///
/// ```
/// use graphhd::prototypes::{MultiPrototypeModel, PrototypeConfig};
/// use graphcore::generate;
///
/// // Class 0 is bimodal: cliques OR stars; class 1 is paths.
/// let mut graphs = Vec::new();
/// let mut labels = Vec::new();
/// for n in 6..12 {
///     graphs.push(generate::complete(n));
///     labels.push(0);
///     graphs.push(generate::star(n));
///     labels.push(0);
///     graphs.push(generate::path(n));
///     labels.push(1);
/// }
/// let model = MultiPrototypeModel::fit(
///     PrototypeConfig::default(), &graphs, &labels, 2,
/// )?;
/// assert_eq!(model.predict(&generate::star(14)), 0);
/// assert_eq!(model.predict(&generate::path(14)), 1);
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiPrototypeModel {
    encoder: GraphEncoder,
    config: PrototypeConfig,
    accumulators: Vec<Vec<Accumulator>>,
    /// All prototype vectors of all classes flattened (class-major) into
    /// one blocked similarity memory — the single store of the trained
    /// prototypes; `lane_class[i]` maps lane `i` back to its class.
    memory: ClassMemory,
    lane_class: Vec<u32>,
}

impl MultiPrototypeModel {
    /// Creates an untrained model shell: the encoder is constructed and
    /// validated, but no prototypes exist yet. The entry point for using
    /// the model through the [`GraphClassifier`] trait, whose `fit`
    /// populates it in place.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroPrototypes`] if `max_prototypes == 0` and
    /// [`Error::ZeroDimension`] for a zero hypervector dimension.
    pub fn untrained(config: PrototypeConfig) -> Result<Self, Error> {
        if config.max_prototypes == 0 {
            return Err(Error::ZeroPrototypes);
        }
        let encoder = GraphEncoder::new(config.base)?;
        let memory = hdvec::ClassMemory::new(config.base.dim)?;
        Ok(Self {
            encoder,
            config,
            accumulators: Vec::new(),
            memory,
            lane_class: Vec::new(),
        })
    }

    /// Trains with single-pass online prototype assignment.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for inconsistent inputs, a zero
    /// `max_prototypes`, or a zero dimension.
    pub fn fit<G: Borrow<Graph> + Sync>(
        config: PrototypeConfig,
        graphs: &[G],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Self, Error> {
        if config.max_prototypes == 0 {
            return Err(Error::ZeroPrototypes);
        }
        GraphHdModel::validate_inputs(graphs.len(), labels, num_classes)?;
        let encoder = GraphEncoder::new(config.base)?;
        let tie = config.base.tie_break;
        let encodings = encoder.encode_all(graphs);

        let mut accumulators: Vec<Vec<Accumulator>> =
            (0..num_classes).map(|_| Vec::new()).collect();
        let mut vectors: Vec<Vec<Hypervector>> = (0..num_classes).map(|_| Vec::new()).collect();

        for (hv, &label) in encodings.iter().zip(labels) {
            let class = label as usize;
            let nearest = vectors[class]
                .iter()
                .enumerate()
                .map(|(i, v)| (i, v.cosine(hv)))
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
            match nearest {
                Some((index, similarity))
                    if similarity >= config.spawn_threshold
                        || vectors[class].len() >= config.max_prototypes =>
                {
                    accumulators[class][index].add(hv);
                    vectors[class][index] = accumulators[class][index].to_hypervector(tie);
                }
                _ => {
                    let mut acc = Accumulator::new(config.base.dim)
                        .expect("dimension validated at encoder construction");
                    acc.add(hv);
                    vectors[class].push(acc.to_hypervector(tie));
                    accumulators[class].push(acc);
                }
            }
        }
        // Flatten the per-class working vectors class-major into the
        // blocked scoring memory; lane order matches the
        // class-then-prototype iteration the naive loop used, so the
        // tie-break is unchanged.
        let mut memory =
            ClassMemory::new(config.base.dim).expect("dimension validated at encoder construction");
        let mut lane_class = Vec::new();
        for (class, prototypes) in vectors.iter().enumerate() {
            for prototype in prototypes {
                memory.push(prototype);
                lane_class.push(class as u32);
            }
        }
        Ok(Self {
            encoder,
            config,
            accumulators,
            memory,
            lane_class,
        })
    }

    /// The class of the most similar prototype lane (ties to the lowest
    /// lane, i.e. the lowest class then the earliest-spawned prototype).
    fn classify(&self, query: &Hypervector) -> u32 {
        let scores = self.memory.cosine_many(query);
        let lane = argmax_tie_low(&scores).expect("training allocates >= 1 prototype");
        self.lane_class[lane]
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PrototypeConfig {
        &self.config
    }

    /// Prototypes per class actually allocated.
    #[must_use]
    pub fn prototype_counts(&self) -> Vec<usize> {
        self.accumulators.iter().map(Vec::len).collect()
    }

    /// Training samples absorbed per class (across its prototypes).
    #[must_use]
    pub fn samples_per_class(&self) -> Vec<u64> {
        self.accumulators
            .iter()
            .map(|accs| accs.iter().map(Accumulator::added).sum())
            .collect()
    }

    /// Predicts the class of a graph: the class owning the most similar
    /// prototype, scored on the blocked [`ClassMemory`] engine.
    #[must_use]
    pub fn predict(&self, graph: &Graph) -> u32 {
        self.classify(&self.encoder.encode(graph))
    }

    /// Predicts many graphs, encoding and scoring in parallel on the
    /// encoder's pool (blocked+SIMD within each query). Accepts both
    /// `&[Graph]` and `&[&Graph]`.
    #[must_use]
    pub fn predict_all<G: Borrow<Graph> + Sync>(&self, graphs: &[G]) -> Vec<u32> {
        let encodings = self.encoder.encode_all(graphs);
        self.encoder
            .pool()
            .par_map_chunked(&encodings, 8, |hv| self.classify(hv))
    }

    /// Batch prediction over owned graphs (see
    /// [`predict_all`](Self::predict_all)).
    #[must_use]
    pub fn predict_batch(&self, graphs: &[Graph]) -> Vec<u32> {
        self.predict_all(graphs)
    }
}

/// The multi-prototype model under the suite-wide trait, so the CV
/// driver and the extension experiments measure it with the exact same
/// protocol as every other method. Start from
/// [`untrained`](MultiPrototypeModel::untrained); the trait's `fit`
/// replaces the prototypes in place (training is single-pass online, so
/// the result depends on the order of `graphs` — deterministic for a
/// deterministic fold order).
impl GraphClassifier for MultiPrototypeModel {
    fn name(&self) -> &str {
        "GraphHD+prototypes"
    }

    fn fit(&mut self, graphs: &[&Graph], labels: &[u32], num_classes: usize) -> Result<(), Error> {
        *self = Self::fit(self.config, graphs, labels, num_classes)?;
        Ok(())
    }

    fn predict(&self, graphs: &[&Graph]) -> Vec<u32> {
        assert!(
            !self.lane_class.is_empty(),
            "fit must be called before predict"
        );
        self.predict_all(graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn bimodal() -> (Vec<Graph>, Vec<u32>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..14 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::star(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
        }
        (graphs, labels)
    }

    #[test]
    fn validates_inputs() {
        let g = generate::path(3);
        let bad = PrototypeConfig {
            max_prototypes: 0,
            ..PrototypeConfig::default()
        };
        assert!(MultiPrototypeModel::fit(bad, &[&g], &[0], 1).is_err());
        assert!(
            MultiPrototypeModel::fit::<&Graph>(PrototypeConfig::default(), &[], &[], 1).is_err()
        );
        assert!(MultiPrototypeModel::fit(PrototypeConfig::default(), &[&g], &[5], 2).is_err());
    }

    #[test]
    fn single_prototype_reduces_to_baseline_shape() {
        let (graphs, labels) = bimodal();
        let config = PrototypeConfig {
            base: GraphHdConfig::builder()
                .dim(2048)
                .build()
                .expect("valid dimension"),
            max_prototypes: 1,
            spawn_threshold: -1.0,
        };
        let model = MultiPrototypeModel::fit(config, &graphs, &labels, 2).expect("valid");
        assert_eq!(model.prototype_counts(), vec![1, 1]);
    }

    #[test]
    fn bimodal_class_allocates_multiple_prototypes() {
        let (graphs, labels) = bimodal();
        let config = PrototypeConfig {
            base: GraphHdConfig::builder()
                .dim(4096)
                .build()
                .expect("valid dimension"),
            max_prototypes: 4,
            spawn_threshold: 0.5,
        };
        let model = MultiPrototypeModel::fit(config, &graphs, &labels, 2).expect("valid");
        let counts = model.prototype_counts();
        assert!(
            counts[0] >= 2,
            "bimodal class should split: counts {counts:?}"
        );
        // All samples are accounted for.
        assert_eq!(model.samples_per_class(), vec![16, 8]);
    }

    #[test]
    fn blocked_scoring_matches_naive_prototype_loop() {
        let (graphs, labels) = bimodal();
        let config = PrototypeConfig {
            base: GraphHdConfig::builder()
                .dim(4096)
                .build()
                .expect("valid dimension"),
            max_prototypes: 4,
            spawn_threshold: 0.5,
        };
        let model = MultiPrototypeModel::fit(config, &graphs, &labels, 2).expect("valid");
        for graph in &graphs {
            let query = model.encoder.encode(graph);
            // The pre-ClassMemory reference: class-major prototype scan
            // with strict-greater updates (lane order preserves it).
            let mut best_class = 0u32;
            let mut best_similarity = f64::NEG_INFINITY;
            for (lane, &class) in model.lane_class.iter().enumerate() {
                let similarity = model.memory.get(lane).cosine(&query);
                if similarity > best_similarity {
                    best_similarity = similarity;
                    best_class = class;
                }
            }
            assert_eq!(model.classify(&query), best_class);
        }
    }

    #[test]
    fn predictions_beat_single_vector_on_bimodal_task() {
        let (graphs, labels) = bimodal();
        let config = PrototypeConfig {
            base: GraphHdConfig::builder()
                .dim(4096)
                .build()
                .expect("valid dimension"),
            max_prototypes: 4,
            spawn_threshold: 0.5,
        };
        let model = MultiPrototypeModel::fit(config, &graphs, &labels, 2).expect("valid");
        let predictions = model.predict_batch(&graphs);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "accuracy {accuracy}");
        assert_eq!(model.predict(&generate::star(20)), 0);
    }

    #[test]
    fn trait_fit_matches_inherent_fit() {
        let (graphs, labels) = bimodal();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let config = PrototypeConfig {
            base: GraphHdConfig::builder()
                .dim(2048)
                .build()
                .expect("valid dimension"),
            max_prototypes: 4,
            spawn_threshold: 0.5,
        };
        let direct = MultiPrototypeModel::fit(config, &graphs, &labels, 2).expect("valid");
        let mut via_trait = MultiPrototypeModel::untrained(config).expect("valid");
        GraphClassifier::fit(&mut via_trait, &refs, &labels, 2).expect("valid");
        assert_eq!(via_trait.prototype_counts(), direct.prototype_counts());
        assert_eq!(
            GraphClassifier::predict(&via_trait, &refs),
            direct.predict_batch(&graphs)
        );
        assert_eq!(GraphClassifier::name(&via_trait), "GraphHD+prototypes");
    }

    #[test]
    fn untrained_rejects_bad_configs() {
        let bad = PrototypeConfig {
            max_prototypes: 0,
            ..PrototypeConfig::default()
        };
        assert_eq!(
            MultiPrototypeModel::untrained(bad).unwrap_err(),
            Error::ZeroPrototypes
        );
    }

    #[test]
    #[should_panic(expected = "fit must be called")]
    fn trait_predict_before_fit_panics() {
        let model = MultiPrototypeModel::untrained(PrototypeConfig::default()).expect("valid");
        let _ = GraphClassifier::predict(&model, &[]);
    }
}
