//! The GraphHD graph encoder (paper Section IV-B/IV-C, Figure 2).

use crate::strategy::{self, GraphEncodingStrategy};
use crate::{EncoderKind, Error, GraphHdConfig};
use graphcore::Graph;
use hdvec::{Accumulator, Hypervector, ItemMemory};
use parallel::{Pool, PoolHandle};
use std::borrow::Borrow;
use std::sync::Arc;

/// Encodes graphs into hypervectors through the configured
/// [`GraphEncodingStrategy`]. Under the default
/// [`EncoderKind::Centrality`] this is the paper's recipe: PageRank ranks
/// select basis vertex hypervectors, edges bind their endpoints, and the
/// edge hypervectors are bundled into the graph hypervector.
///
/// The same encoder instance (same config/seed) **must** be used for
/// training and inference — the paper emphasises that `Enc` is shared —
/// and because every strategy is a pure function of the config, encoders
/// constructed from equal configs agree across machines.
///
/// # Examples
///
/// ```
/// use graphhd::{GraphEncoder, GraphHdConfig};
/// use graphcore::generate;
///
/// let encoder = GraphEncoder::new(GraphHdConfig::default())?;
/// let hv = encoder.encode(&generate::star(10));
/// assert_eq!(hv.dim(), 10_000);
/// // Isomorphic graphs encode identically (same structure, same ranks).
/// assert_eq!(hv, encoder.encode(&generate::star(10)));
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphEncoder {
    config: GraphHdConfig,
    memory: ItemMemory,
    strategy: Arc<dyn GraphEncodingStrategy>,
    pool: PoolHandle,
}

impl GraphEncoder {
    /// Creates an encoder from a configuration, building the strategy
    /// its [`EncoderKind`] selects. Batch operations run on the
    /// process-wide [`Pool::global`] unless [`with_pool`] selects an
    /// explicit one.
    ///
    /// [`with_pool`]: Self::with_pool
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroDimension`] if `config.dim == 0` (the
    /// underlying [`hdvec::HdvError`] is routed through the crate's
    /// unified error type instead of leaking across the boundary) and
    /// [`Error::InvalidEncoderConfig`] for degenerate strategy
    /// parameters.
    pub fn new(config: GraphHdConfig) -> Result<Self, Error> {
        Ok(Self {
            memory: ItemMemory::new(config.dim, config.seed)?,
            strategy: strategy::build_strategy(&config)?,
            config,
            pool: PoolHandle::Global,
        })
    }

    /// Pins batch operations (and those of every model fitted from this
    /// encoder) to an explicit pool — the deterministic-thread-count knob
    /// behind the `BENCH_*` scaling tables.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = PoolHandle::Owned(pool);
        self
    }

    /// As [`with_pool`](Self::with_pool), but taking a [`PoolHandle`]
    /// (for callers that may want to restore the global default).
    #[must_use]
    pub fn with_pool_handle(mut self, pool: PoolHandle) -> Self {
        self.pool = pool;
        self
    }

    /// The pool batch operations run on.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        self.pool.get()
    }

    /// The pool selection (shared with models fitted from this encoder).
    #[must_use]
    pub fn pool_handle(&self) -> &PoolHandle {
        &self.pool
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &GraphHdConfig {
        &self.config
    }

    /// The basis item memory (rank → hypervector).
    #[must_use]
    pub fn memory(&self) -> &ItemMemory {
        &self.memory
    }

    /// The encoding strategy built from the config's [`EncoderKind`].
    #[must_use]
    pub fn strategy(&self) -> &dyn GraphEncodingStrategy {
        self.strategy.as_ref()
    }

    /// The strategy kind (including its parameters) this encoder runs.
    #[must_use]
    pub fn kind(&self) -> EncoderKind {
        self.strategy.kind()
    }

    /// Computes the *centrality* vertex identifiers (ranks) of a graph.
    ///
    /// Rank 0 is the most central vertex; ties are broken by vertex id,
    /// the deterministic convention adopted suite-wide. This ranking is
    /// always the centrality one, independent of the encoder strategy —
    /// it backs the strategy-agnostic [`labeled`](crate::labeled)
    /// extension and the centrality ablations.
    #[must_use]
    pub fn vertex_ranks(&self, graph: &Graph) -> Vec<u32> {
        strategy::centrality_ranks(graph, &self.config)
    }

    /// Encodes a graph into the edge-bundle accumulator (exposed so that
    /// callers needing raw counts — e.g. soft-similarity ablations — avoid
    /// re-encoding). Delegates to the configured strategy.
    ///
    /// An edgeless graph yields an empty accumulator; [`encode`]
    /// thresholds it to the deterministic tie-break pattern, so all
    /// edgeless graphs share one neutral hypervector.
    ///
    /// [`encode`]: Self::encode
    #[must_use]
    pub fn encode_to_accumulator(&self, graph: &Graph) -> Accumulator {
        self.strategy.encode_to_accumulator(graph)
    }

    /// Encodes a graph into its bipolar graph hypervector — the `Enc_G`
    /// of the paper.
    #[must_use]
    pub fn encode(&self, graph: &Graph) -> Hypervector {
        crate::metrics::metrics().graphs_encoded.inc();
        self.encode_to_accumulator(graph)
            .to_hypervector(self.config.tie_break)
    }

    /// Encodes many graphs, parallelised on the encoder's pool. Accepts
    /// both owned slices (`&[Graph]`) and reference slices (`&[&Graph]`).
    ///
    /// The result is identical to mapping [`encode`](Self::encode) — the
    /// parallelism is an implementation detail mirroring the paper's
    /// observation that HDC encoding is trivially parallel, and the
    /// work-stealing pool keeps skewed graph sizes balanced (the old
    /// round-robin static dealing did not).
    #[must_use]
    pub fn encode_all<G: Borrow<Graph> + Sync>(&self, graphs: &[G]) -> Vec<Hypervector> {
        self.pool()
            .par_map(graphs, |graph| self.encode(graph.borrow()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentralityKind;
    use graphcore::{generate, GraphBuilder};
    use prng::{WordRng, Xoshiro256PlusPlus};

    fn encoder(dim: usize) -> GraphEncoder {
        GraphEncoder::new(
            GraphHdConfig::builder()
                .dim(dim)
                .build()
                .expect("valid dimension"),
        )
        .expect("valid dimension")
    }

    #[test]
    fn rejects_zero_dimension() {
        let zero = GraphHdConfig {
            dim: 0,
            ..GraphHdConfig::default()
        };
        assert_eq!(
            GraphEncoder::new(zero).unwrap_err(),
            crate::Error::ZeroDimension
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let e = encoder(2048);
        let g = generate::star(12);
        assert_eq!(e.encode(&g), e.encode(&g));
    }

    #[test]
    fn different_structures_encode_differently() {
        let e = encoder(10_000);
        let a = e.encode(&generate::complete(10));
        let b = e.encode(&generate::path(10));
        assert!(a.cosine(&b) < 0.6, "cosine {}", a.cosine(&b));
    }

    #[test]
    fn isomorphic_graphs_encode_identically_under_relabeling() {
        // Build an asymmetric graph (distinct PageRank scores), then apply
        // a vertex permutation; the encoding must not change because ranks
        // are topology-derived.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
        let g = {
            let mut b = GraphBuilder::new(8);
            // A "lollipop": K4 attached to a path, no automorphism mixing
            // path and clique ranks ambiguously.
            for (u, v) in [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
            ] {
                b.add_edge(u, v);
            }
            b.build()
        };
        let mut perm: Vec<u32> = (0..8).collect();
        rng.shuffle(&mut perm);
        let mut b = GraphBuilder::new(8);
        for (u, v) in g.edges() {
            b.add_edge(perm[u as usize], perm[v as usize]);
        }
        let permuted = b.build();
        let e = encoder(4096);
        assert_eq!(e.encode(&g), e.encode(&permuted));
    }

    #[test]
    fn vertex_id_centrality_is_not_permutation_invariant() {
        // The strawman the paper rejects: identifiers tied to raw vertex
        // ids lose correspondence under relabeling.
        let e = GraphEncoder::new(GraphHdConfig {
            centrality: CentralityKind::VertexId,
            ..GraphHdConfig::builder()
                .dim(4096)
                .build()
                .expect("valid dimension")
        })
        .expect("valid config");
        let g = generate::path(6);
        let mut b = GraphBuilder::new(6);
        for (u, v) in g.edges() {
            b.add_edge(5 - u, 5 - v); // reverse labeling
        }
        let reversed = b.build();
        // The path reversed is the same graph, but vertex-id encoding sees
        // different (rank -> endpoint) pairings in general. (Reversal of a
        // path maps edge {i, i+1} to {4-i, 5-i}: different id pairs.)
        assert_eq!(e.encode(&g).dim(), e.encode(&reversed).dim());
    }

    #[test]
    fn edge_count_is_reflected_in_accumulator() {
        let e = encoder(1024);
        let g = generate::cycle(9);
        let acc = e.encode_to_accumulator(&g);
        assert_eq!(acc.added(), 9);
        let empty = e.encode_to_accumulator(&graphcore::Graph::empty(5));
        assert!(empty.is_empty());
    }

    #[test]
    fn edgeless_graphs_share_a_neutral_encoding() {
        let e = encoder(512);
        let a = e.encode(&graphcore::Graph::empty(3));
        let b = e.encode(&graphcore::Graph::empty(10));
        assert_eq!(a, b);
    }

    #[test]
    fn encode_all_matches_sequential() {
        let e = encoder(1024);
        let graphs: Vec<_> = (4..20).map(generate::cycle).collect();
        let refs: Vec<&graphcore::Graph> = graphs.iter().collect();
        let parallel = e.encode_all(&refs);
        let sequential: Vec<_> = refs.iter().map(|g| e.encode(g)).collect();
        assert_eq!(parallel, sequential);
        // Owned slices encode identically to reference slices.
        assert_eq!(e.encode_all(&graphs), sequential);
    }

    #[test]
    fn encode_all_is_identical_across_pinned_thread_counts() {
        let graphs: Vec<_> = (3..40).map(|n| generate::star(n % 17 + 3)).collect();
        let serial = encoder(512)
            .with_pool(Arc::new(Pool::with_threads(1)))
            .encode_all(&graphs);
        for threads in [2usize, 3, 8] {
            let e = encoder(512).with_pool(Arc::new(Pool::with_threads(threads)));
            assert_eq!(e.pool().threads(), threads);
            assert_eq!(e.encode_all(&graphs), serial, "threads {threads}");
        }
    }

    #[test]
    fn alternative_strategies_flow_through_the_encoder_surface() {
        let graphs: Vec<_> = (4..12).map(generate::complete).collect();
        for kind in [
            EncoderKind::vertex_similarity(),
            EncoderKind::edge_weighted(),
        ] {
            let e = GraphEncoder::new(
                GraphHdConfig::builder()
                    .dim(512)
                    .with_encoder(kind)
                    .build()
                    .expect("valid config"),
            )
            .expect("valid config");
            assert_eq!(e.kind(), kind);
            assert_eq!(e.strategy().name(), kind.name());
            // encode/encode_all route through the strategy consistently.
            let batch = e.encode_all(&graphs);
            let sequential: Vec<_> = graphs.iter().map(|g| e.encode(g)).collect();
            assert_eq!(batch, sequential, "{kind:?}");
        }
    }

    #[test]
    fn centrality_kinds_produce_valid_ranks() {
        let g = generate::star(7);
        for kind in [
            CentralityKind::PageRank,
            CentralityKind::Degree,
            CentralityKind::VertexId,
        ] {
            let e = GraphEncoder::new(GraphHdConfig {
                centrality: kind,
                ..GraphHdConfig::builder()
                    .dim(256)
                    .build()
                    .expect("valid dimension")
            })
            .expect("valid config");
            let ranks = e.vertex_ranks(&g);
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<u32>>(), "{kind:?}");
        }
        // Star center is rank 0 under both structural centralities.
        for kind in [CentralityKind::PageRank, CentralityKind::Degree] {
            let e = GraphEncoder::new(GraphHdConfig {
                centrality: kind,
                ..GraphHdConfig::builder()
                    .dim(256)
                    .build()
                    .expect("valid dimension")
            })
            .expect("valid config");
            assert_eq!(e.vertex_ranks(&g)[0], 0);
        }
    }
}
