//! Crate-wide model telemetry: how many graphs were encoded, how many
//! predictions served, how training and retraining behaved.
//!
//! The metrics are process-global (a [`Counter`] is an `Arc` handle, so
//! a `static` needs lazy construction) because encoding and prediction
//! happen on models and encoders that are cloned freely across threads
//! and engines — a per-model registry would fragment the counts the
//! operator actually asks about ("how many graphs has this process
//! encoded?"). Recording is one relaxed atomic op; the clock-reading
//! fit span respects the `GRAPHHD_TELEMETRY` knob.

use telemetry::{Counter, Histogram, Registry};

/// Handles to the crate's global metrics (see [`metrics`]).
#[derive(Debug)]
pub struct ModelMetrics {
    /// Graphs run through [`GraphEncoder::encode`](crate::GraphEncoder::encode)
    /// — training, serving and batch paths all funnel through it.
    pub graphs_encoded: Counter,
    /// Single-query predictions scored (every `predict*` path lands on
    /// `predict_encoded`).
    pub predictions: Counter,
    /// Models trained (`fit_encoded` completions).
    pub fits: Counter,
    /// Wall-clock nanoseconds per model fit (bundling, not encoding).
    pub fit_ns: Histogram,
    /// Retraining epochs executed across all
    /// [`retrain`](crate::GraphHdModel::retrain) calls.
    pub retrain_epochs: Counter,
    /// Distribution of per-epoch mistake counts — the epoch deltas: a
    /// falling p50 across a run means retraining is converging.
    pub retrain_epoch_errors: Histogram,
}

/// The crate's global metrics, created on first use.
#[must_use]
pub fn metrics() -> &'static ModelMetrics {
    static METRICS: std::sync::OnceLock<ModelMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ModelMetrics {
        graphs_encoded: Counter::new(),
        predictions: Counter::new(),
        fits: Counter::new(),
        fit_ns: Histogram::new(),
        retrain_epochs: Counter::new(),
        retrain_epoch_errors: Histogram::new(),
    })
}

/// Registers the crate's metrics into `registry` under `graphhd_*`
/// names (see `docs/TELEMETRY.md` for the catalog).
pub fn register_into(registry: &Registry) {
    let m = metrics();
    registry.register_counter(
        "graphhd_graphs_encoded",
        "Graphs encoded",
        &m.graphs_encoded,
    );
    registry.register_counter(
        "graphhd_predictions",
        "Single-query predictions scored",
        &m.predictions,
    );
    registry.register_counter("graphhd_fits", "Models trained", &m.fits);
    registry.register_histogram("graphhd_fit_ns", "Model fit wall-clock", &m.fit_ns);
    registry.register_counter(
        "graphhd_retrain_epochs",
        "Retraining epochs executed",
        &m.retrain_epochs,
    );
    registry.register_histogram(
        "graphhd_retrain_epoch_errors",
        "Mistakes per retraining epoch",
        &m.retrain_epoch_errors,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_are_a_singleton() {
        assert!(std::ptr::eq(metrics(), metrics()));
    }

    #[test]
    fn registration_renders_all_names() {
        let registry = Registry::new();
        register_into(&registry);
        let names = registry.names();
        for expected in [
            "graphhd_graphs_encoded",
            "graphhd_predictions",
            "graphhd_fits",
            "graphhd_fit_ns",
            "graphhd_retrain_epochs",
            "graphhd_retrain_epoch_errors",
        ] {
            assert!(names.iter().any(|n| n == expected), "{expected} missing");
        }
    }
}
