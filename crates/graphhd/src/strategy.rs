//! Pluggable graph-encoding strategies.
//!
//! GraphHD fixes one encoding recipe — PageRank-ranked vertex
//! identifiers, edges bind their endpoints, edge hypervectors bundle into
//! the graph hypervector. The follow-up literature varies exactly one
//! stage of that recipe while keeping the bind/permute/bundle substrate:
//! VS-Graph swaps the centrality ranking for *vertex similarity*
//! features, and CiliaGraph weights each edge's contribution to the
//! bundle. This module factors the recipe behind the object-safe
//! [`GraphEncodingStrategy`] trait so all three variants plug into the
//! same models, classifiers, serving engine and snapshots, selected by
//! [`EncoderKind`] on [`GraphHdConfig`].
//!
//! Every strategy is seed-deterministic (a pure function of the config
//! and the graph, bit-reproducible across machines) and parallel-safe
//! (`Send + Sync`, no interior mutability), which is what lets
//! [`GraphEncoder::encode_all`](crate::GraphEncoder::encode_all) fan a
//! batch across the pool without changing results.

use crate::{CentralityKind, Error, GraphHdConfig};
use graphcore::{degree_centrality, pagerank_ranks, ranks_by_score, similarity, Graph};
use hdvec::{Accumulator, BitSliceAccumulator, Hypervector, ItemMemory, LevelMemory};
use prng::mix_seed;
use std::sync::Arc;

/// Seed stream for the level memory of the vertex-similarity strategy,
/// independent from the basis item memory (which uses the config seed
/// directly) and from the label memory of [`crate::labeled`].
const LEVEL_SEED_STREAM: u64 = 0x1E_5E1;

/// Which encoding strategy a [`GraphHdConfig`] selects.
///
/// Strategy-specific parameters ride inline so the config stays `Copy`
/// and a snapshot header can record the full encoder identity in two
/// fields (a tag and one parameter).
///
/// # Examples
///
/// ```
/// use graphhd::{EncoderKind, GraphHdConfig};
///
/// // The default is the paper's centrality encoder.
/// assert_eq!(GraphHdConfig::default().encoder, EncoderKind::Centrality);
///
/// // Alternative strategies are selected through the builder, which
/// // validates their parameters.
/// let config = GraphHdConfig::builder()
///     .with_encoder(EncoderKind::VertexSimilarity { levels: 8 })
///     .build()?;
/// assert_eq!(config.encoder.name(), "vertex-similarity");
/// assert!(GraphHdConfig::builder()
///     .with_encoder(EncoderKind::VertexSimilarity { levels: 1 })
///     .build()
///     .is_err());
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncoderKind {
    /// The paper's GraphHD recipe: centrality-ranked vertex identifiers,
    /// unweighted edge bundling. Bit-identical to the pre-strategy
    /// encoder.
    #[default]
    Centrality,
    /// VS-Graph-style encoding: vertices are ranked by neighborhood
    /// similarity ([`graphcore::similarity`]) instead of centrality, and
    /// each vertex identifier is bound with a quantized level
    /// hypervector of its similarity score, so structurally similar
    /// vertices share correlated encodings.
    VertexSimilarity {
        /// Quantization depth of the similarity axis (≥ 2).
        levels: u32,
    },
    /// CiliaGraph-style encoding: centrality-ranked identifiers, but
    /// each edge is bundled with an integer weight — one plus its
    /// triangle support (common-neighbor count), capped — so edges
    /// inside clustered regions dominate the majority vote.
    EdgeWeighted {
        /// Upper bound on an edge's bundling weight (≥ 1). A cap of 1
        /// degenerates to unweighted bundling.
        weight_cap: u32,
    },
}

/// Default quantization depth for [`EncoderKind::VertexSimilarity`].
pub const DEFAULT_SIMILARITY_LEVELS: u32 = 16;

/// Default weight cap for [`EncoderKind::EdgeWeighted`].
pub const DEFAULT_WEIGHT_CAP: u32 = 4;

impl EncoderKind {
    /// The vertex-similarity strategy with the default quantization
    /// depth ([`DEFAULT_SIMILARITY_LEVELS`]).
    #[must_use]
    pub fn vertex_similarity() -> Self {
        EncoderKind::VertexSimilarity {
            levels: DEFAULT_SIMILARITY_LEVELS,
        }
    }

    /// The edge-weighted strategy with the default weight cap
    /// ([`DEFAULT_WEIGHT_CAP`]).
    #[must_use]
    pub fn edge_weighted() -> Self {
        EncoderKind::EdgeWeighted {
            weight_cap: DEFAULT_WEIGHT_CAP,
        }
    }

    /// Human-readable strategy name for experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EncoderKind::Centrality => "centrality",
            EncoderKind::VertexSimilarity { .. } => "vertex-similarity",
            EncoderKind::EdgeWeighted { .. } => "edge-weighted",
        }
    }

    /// Validates the strategy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEncoderConfig`] if the vertex-similarity
    /// depth is below 2 or the edge-weight cap is 0.
    pub fn validate(&self) -> Result<(), Error> {
        match self {
            EncoderKind::Centrality => Ok(()),
            EncoderKind::VertexSimilarity { levels } if *levels < 2 => {
                Err(Error::InvalidEncoderConfig {
                    what: "vertex-similarity levels must be at least 2",
                })
            }
            EncoderKind::VertexSimilarity { .. } => Ok(()),
            EncoderKind::EdgeWeighted { weight_cap } if *weight_cap == 0 => {
                Err(Error::InvalidEncoderConfig {
                    what: "edge weight cap must be positive",
                })
            }
            EncoderKind::EdgeWeighted { .. } => Ok(()),
        }
    }
}

/// A graph-encoding strategy: the pluggable stage of the GraphHD
/// pipeline.
///
/// Implementations must be **seed-deterministic** — the accumulator is a
/// pure function of the construction config and the graph, so equal
/// configs agree bit-for-bit across processes and machines — and
/// **parallel-safe** (`Send + Sync`, `&self` encoding), so one strategy
/// instance serves every pool thread concurrently. The trait is
/// object-safe: [`GraphEncoder`](crate::GraphEncoder) holds an
/// `Arc<dyn GraphEncodingStrategy>` chosen from the config at
/// construction.
pub trait GraphEncodingStrategy: std::fmt::Debug + Send + Sync {
    /// The [`EncoderKind`] this strategy was built from (including its
    /// parameters — this is what snapshots record).
    fn kind(&self) -> EncoderKind;

    /// Human-readable strategy name for experiment tables.
    fn name(&self) -> &'static str {
        // Delegating through `kind` keeps the two views consistent.
        self.kind().name()
    }

    /// Encodes a graph into the edge-bundle accumulator. An edgeless
    /// graph yields an empty accumulator.
    fn encode_to_accumulator(&self, graph: &Graph) -> Accumulator;
}

/// Builds the strategy a config selects (validating its parameters).
pub(crate) fn build_strategy(
    config: &GraphHdConfig,
) -> Result<Arc<dyn GraphEncodingStrategy>, Error> {
    config.encoder.validate()?;
    Ok(match config.encoder {
        EncoderKind::Centrality => Arc::new(CentralityStrategy::new(*config)?),
        EncoderKind::VertexSimilarity { levels } => {
            Arc::new(VertexSimilarityStrategy::new(*config, levels)?)
        }
        EncoderKind::EdgeWeighted { weight_cap } => {
            Arc::new(EdgeWeightedStrategy::new(*config, weight_cap)?)
        }
    })
}

/// The centrality ranking shared by the centrality and edge-weighted
/// strategies (and by [`crate::labeled`], which stays rank-based).
pub(crate) fn centrality_ranks(graph: &Graph, config: &GraphHdConfig) -> Vec<u32> {
    match config.centrality {
        CentralityKind::PageRank => pagerank_ranks(graph, &config.pagerank),
        CentralityKind::Degree => ranks_by_score(&degree_centrality(graph)),
        CentralityKind::VertexId => (0..graph.vertex_count() as u32).collect(),
    }
}

/// The paper's GraphHD encoder, extracted verbatim from the pre-strategy
/// `GraphEncoder::encode_to_accumulator` (the bit-identity is
/// property-tested against a re-derived reference in
/// `tests/encoder_strategies.rs`).
#[derive(Debug)]
struct CentralityStrategy {
    config: GraphHdConfig,
    memory: ItemMemory,
}

impl CentralityStrategy {
    fn new(config: GraphHdConfig) -> Result<Self, Error> {
        Ok(Self {
            memory: ItemMemory::new(config.dim, config.seed)?,
            config,
        })
    }
}

impl GraphEncodingStrategy for CentralityStrategy {
    fn kind(&self) -> EncoderKind {
        EncoderKind::Centrality
    }

    fn encode_to_accumulator(&self, graph: &Graph) -> Accumulator {
        // Bundle edge hypervectors with bit-sliced vertical counters
        // (amortized ~2 word-ops per edge per word) instead of d integer
        // adds — the "binarized bundling" optimization of Schmuck et al.
        // that the paper cites; the result is bit-identical to the naive
        // accumulation (property-tested in tests/properties.rs).
        let ranks = centrality_ranks(graph, &self.config);
        let mut acc =
            BitSliceAccumulator::new(self.config.dim).expect("dimension validated at construction");
        // Per-graph cache: rank r's basis hypervector is reused by every
        // edge incident to the vertex of rank r.
        let mut cache: Vec<Option<Hypervector>> = vec![None; graph.vertex_count()];
        let mut edge =
            Hypervector::positive(self.config.dim).expect("dimension validated at construction");
        for (u, v) in graph.edges() {
            let (u, v) = (u as usize, v as usize);
            if cache[u].is_none() {
                cache[u] = Some(self.memory.hypervector(u64::from(ranks[u])));
            }
            if cache[v].is_none() {
                cache[v] = Some(self.memory.hypervector(u64::from(ranks[v])));
            }
            edge.clone_from(cache[u].as_ref().expect("filled above"));
            edge.bind_assign(cache[v].as_ref().expect("filled above"));
            acc.add(&edge);
        }
        acc.to_accumulator()
    }
}

/// VS-Graph-style vertex-similarity encoder.
///
/// Vertex identity comes from the *similarity ranking* (most clustered
/// vertex is rank 0), and is bound with a level hypervector of the
/// quantized similarity score, so vertices with close scores share
/// correlated level components across graphs. Edges bind the
/// lower-ranked endpoint with a one-step permutation of the
/// higher-ranked one: without the permutation, two endpoints on the same
/// quantization level would cancel their level components under binding
/// (`x ⊗ x` is the identity) and regular graphs would collapse back to
/// the plain rank encoding. Rank order is topology-derived, so the
/// directed binding stays isomorphism-invariant.
#[derive(Debug)]
struct VertexSimilarityStrategy {
    config: GraphHdConfig,
    memory: ItemMemory,
    levels: LevelMemory,
}

impl VertexSimilarityStrategy {
    fn new(config: GraphHdConfig, levels: u32) -> Result<Self, Error> {
        Ok(Self {
            memory: ItemMemory::new(config.dim, config.seed)?,
            levels: LevelMemory::new(
                config.dim,
                levels as usize,
                mix_seed(config.seed, LEVEL_SEED_STREAM),
            )?,
            config,
        })
    }

    /// `H_rank(rank) ⊗ H_level(quantize(score))` — identity by
    /// similarity rank, correlation by similarity magnitude.
    fn node_hypervector(&self, rank: u32, score: f64) -> Hypervector {
        let mut hv = self.memory.hypervector(u64::from(rank));
        hv.bind_assign(self.levels.hypervector(self.levels.quantize(score)));
        hv
    }
}

impl GraphEncodingStrategy for VertexSimilarityStrategy {
    fn kind(&self) -> EncoderKind {
        EncoderKind::VertexSimilarity {
            levels: self.levels.levels() as u32,
        }
    }

    fn encode_to_accumulator(&self, graph: &Graph) -> Accumulator {
        let scores = similarity::neighborhood_similarity(graph);
        let ranks = ranks_by_score(&scores);
        let mut acc =
            BitSliceAccumulator::new(self.config.dim).expect("dimension validated at construction");
        // Two caches per vertex: the node hypervector for its role as the
        // lower-ranked endpoint, and its one-step permutation for the
        // higher-ranked role.
        let mut cache: Vec<Option<Hypervector>> = vec![None; graph.vertex_count()];
        let mut permuted: Vec<Option<Hypervector>> = vec![None; graph.vertex_count()];
        let mut edge =
            Hypervector::positive(self.config.dim).expect("dimension validated at construction");
        for (u, v) in graph.edges() {
            let (u, v) = (u as usize, v as usize);
            // Ranks are a permutation, so the order is strict; rank order
            // (not vertex id) keeps the edge orientation topology-derived.
            let (lo, hi) = if ranks[u] < ranks[v] { (u, v) } else { (v, u) };
            if cache[lo].is_none() {
                cache[lo] = Some(self.node_hypervector(ranks[lo], scores[lo]));
            }
            if permuted[hi].is_none() {
                permuted[hi] = Some(self.node_hypervector(ranks[hi], scores[hi]).permute(1));
            }
            edge.clone_from(cache[lo].as_ref().expect("filled above"));
            edge.bind_assign(permuted[hi].as_ref().expect("filled above"));
            acc.add(&edge);
        }
        acc.to_accumulator()
    }
}

/// CiliaGraph-style edge-weighted encoder.
///
/// Vertex identity is the same centrality ranking as the baseline, but
/// each edge enters the bundle with weight `1 + min(common_neighbors,
/// cap − 1)`: edges closing many triangles carry proportionally more
/// majority-vote evidence. Weighted bundling needs the integer
/// [`Accumulator`] directly (the bit-sliced counters only add ±1), so
/// this strategy trades the bit-slice speedup for the weighted vote.
#[derive(Debug)]
struct EdgeWeightedStrategy {
    config: GraphHdConfig,
    memory: ItemMemory,
    weight_cap: u32,
}

impl EdgeWeightedStrategy {
    fn new(config: GraphHdConfig, weight_cap: u32) -> Result<Self, Error> {
        Ok(Self {
            memory: ItemMemory::new(config.dim, config.seed)?,
            config,
            weight_cap,
        })
    }
}

impl GraphEncodingStrategy for EdgeWeightedStrategy {
    fn kind(&self) -> EncoderKind {
        EncoderKind::EdgeWeighted {
            weight_cap: self.weight_cap,
        }
    }

    fn encode_to_accumulator(&self, graph: &Graph) -> Accumulator {
        let ranks = centrality_ranks(graph, &self.config);
        let mut acc =
            Accumulator::new(self.config.dim).expect("dimension validated at construction");
        let mut cache: Vec<Option<Hypervector>> = vec![None; graph.vertex_count()];
        let mut edge =
            Hypervector::positive(self.config.dim).expect("dimension validated at construction");
        for (u, v) in graph.edges() {
            let support = graph.common_neighbors(u, v);
            let (u, v) = (u as usize, v as usize);
            if cache[u].is_none() {
                cache[u] = Some(self.memory.hypervector(u64::from(ranks[u])));
            }
            if cache[v].is_none() {
                cache[v] = Some(self.memory.hypervector(u64::from(ranks[v])));
            }
            edge.clone_from(cache[u].as_ref().expect("filled above"));
            edge.bind_assign(cache[v].as_ref().expect("filled above"));
            let weight = 1 + support.min(self.weight_cap as usize - 1);
            acc.add_weighted(&edge, weight as i32);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn config_with(kind: EncoderKind, dim: usize) -> GraphHdConfig {
        GraphHdConfig::builder()
            .dim(dim)
            .with_encoder(kind)
            .build()
            .expect("valid config")
    }

    fn all_kinds() -> [EncoderKind; 3] {
        [
            EncoderKind::Centrality,
            EncoderKind::vertex_similarity(),
            EncoderKind::edge_weighted(),
        ]
    }

    #[test]
    fn names_are_distinct_and_stable() {
        let names: Vec<_> = all_kinds().iter().map(|k| k.name()).collect();
        assert_eq!(names, ["centrality", "vertex-similarity", "edge-weighted"]);
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        assert_eq!(
            EncoderKind::VertexSimilarity { levels: 1 }
                .validate()
                .unwrap_err(),
            Error::InvalidEncoderConfig {
                what: "vertex-similarity levels must be at least 2"
            }
        );
        assert_eq!(
            EncoderKind::EdgeWeighted { weight_cap: 0 }
                .validate()
                .unwrap_err(),
            Error::InvalidEncoderConfig {
                what: "edge weight cap must be positive"
            }
        );
        for kind in all_kinds() {
            assert!(kind.validate().is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn strategies_report_their_kind_and_name() {
        for kind in all_kinds() {
            let strategy = build_strategy(&config_with(kind, 256)).expect("valid");
            assert_eq!(strategy.kind(), kind);
            assert_eq!(strategy.name(), kind.name());
        }
    }

    #[test]
    fn every_strategy_is_deterministic() {
        let g = generate::complete(9);
        for kind in all_kinds() {
            let config = config_with(kind, 1024);
            let a = build_strategy(&config).expect("valid");
            let b = build_strategy(&config).expect("valid");
            assert_eq!(
                a.encode_to_accumulator(&g).counts(),
                b.encode_to_accumulator(&g).counts(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn strategies_disagree_with_each_other() {
        // The three recipes are genuinely different encoders: on a graph
        // with non-trivial clustering their accumulators differ.
        let g = generate::complete(8);
        let accs: Vec<Accumulator> = all_kinds()
            .iter()
            .map(|&k| {
                build_strategy(&config_with(k, 2048))
                    .expect("valid")
                    .encode_to_accumulator(&g)
            })
            .collect();
        assert_ne!(accs[0].counts(), accs[1].counts());
        assert_ne!(accs[0].counts(), accs[2].counts());
        assert_ne!(accs[1].counts(), accs[2].counts());
    }

    #[test]
    fn edge_weighted_with_unit_cap_matches_centrality_bitwise() {
        // cap = 1 forces every weight to 1, which must reproduce the
        // unweighted centrality bundle exactly (same ranks, same basis).
        for g in [generate::complete(9), generate::star(12), generate::path(7)] {
            let unweighted = build_strategy(&config_with(EncoderKind::Centrality, 512))
                .expect("valid")
                .encode_to_accumulator(&g);
            let capped = build_strategy(&config_with(
                EncoderKind::EdgeWeighted { weight_cap: 1 },
                512,
            ))
            .expect("valid")
            .encode_to_accumulator(&g);
            assert_eq!(unweighted.counts(), capped.counts());
            assert_eq!(unweighted.added(), capped.added());
        }
    }

    #[test]
    fn edge_weighted_boosts_triangle_edges() {
        // K4 has common neighbors on every edge; the weighted bundle
        // must count more votes than edges.
        let g = generate::complete(4);
        let acc = build_strategy(&config_with(EncoderKind::edge_weighted(), 256))
            .expect("valid")
            .encode_to_accumulator(&g);
        assert!(acc.added() > g.edge_count() as u64);
        // A triangle-free star gets no boost.
        let star = build_strategy(&config_with(EncoderKind::edge_weighted(), 256))
            .expect("valid")
            .encode_to_accumulator(&generate::star(6));
        assert_eq!(star.added(), 5);
    }

    #[test]
    fn vertex_similarity_distinguishes_clustering_patterns() {
        // Complete vs path: wildly different similarity profiles.
        let config = config_with(EncoderKind::vertex_similarity(), 10_000);
        let strategy = build_strategy(&config).expect("valid");
        let a = strategy
            .encode_to_accumulator(&generate::complete(10))
            .to_hypervector(config.tie_break);
        let b = strategy
            .encode_to_accumulator(&generate::path(10))
            .to_hypervector(config.tie_break);
        assert!(a.cosine(&b) < 0.6, "cosine {}", a.cosine(&b));
    }

    #[test]
    fn edgeless_graphs_yield_empty_accumulators_under_every_strategy() {
        for kind in all_kinds() {
            let strategy = build_strategy(&config_with(kind, 128)).expect("valid");
            assert!(strategy
                .encode_to_accumulator(&graphcore::Graph::empty(4))
                .is_empty());
        }
    }
}
