//! Fault-injection utilities behind the robustness experiment (A3).
//!
//! HDC's holographic representation is claimed (Sections I–II of the
//! paper, citing Kanerva and Rahimi et al.) to degrade gracefully under
//! bit-level faults. These helpers quantify that claim for GraphHD by
//! flipping a controlled fraction of bits in class vectors and/or query
//! encodings and measuring the surviving accuracy.

use crate::GraphHdModel;
use graphcore::Graph;
use prng::{mix_seed, Xoshiro256PlusPlus};
use std::borrow::Borrow;

/// Accuracy of `model` on `(graphs, labels)` when `rate` of the class
/// vectors' bits are flipped. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `graphs.len() != labels.len()` or `rate` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use graphhd::{noise, GraphHdConfig, GraphHdModel};
/// use graphcore::generate;
///
/// let graphs: Vec<_> = (6..12)
///     .flat_map(|n| [generate::complete(n), generate::path(n)])
///     .collect();
/// let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
/// let model = GraphHdModel::fit(GraphHdConfig::default(), &graphs, &labels, 2)?;
/// let clean = noise::accuracy_under_model_noise(&model, &graphs, &labels, 0.0, 1);
/// assert_eq!(clean, 1.0);
/// # Ok::<(), graphhd::Error>(())
/// ```
#[must_use]
pub fn accuracy_under_model_noise<G: Borrow<Graph> + Sync>(
    model: &GraphHdModel,
    graphs: &[G],
    labels: &[u32],
    rate: f64,
    seed: u64,
) -> f64 {
    assert_eq!(graphs.len(), labels.len(), "graph/label count mismatch");
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(seed, 0xFA_17));
    let noisy = model.with_noisy_class_vectors(rate, &mut rng);
    let predictions = noisy.predict_all(graphs);
    correct_fraction(&predictions, labels)
}

/// Accuracy when each *query* encoding is corrupted instead (models a
/// faulty sensor/encoder rather than faulty associative memory).
///
/// # Panics
///
/// Panics if `graphs.len() != labels.len()` or `rate` is outside `[0, 1]`.
#[must_use]
pub fn accuracy_under_query_noise<G: Borrow<Graph> + Sync>(
    model: &GraphHdModel,
    graphs: &[G],
    labels: &[u32],
    rate: f64,
    seed: u64,
) -> f64 {
    assert_eq!(graphs.len(), labels.len(), "graph/label count mismatch");
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(seed, 0x9E_11));
    let encodings = model.encoder().encode_all(graphs);
    // The encodings are owned here, so corrupt them in place instead of
    // copying each one through `with_noise`.
    let predictions: Vec<u32> = encodings
        .into_iter()
        .map(|mut hv| {
            hv.add_noise(rate, &mut rng);
            model.predict_encoded(&hv)
        })
        .collect();
    correct_fraction(&predictions, labels)
}

/// Sweeps noise rates, returning `(rate, model-noise accuracy,
/// query-noise accuracy)` rows — the data series of experiment A3.
///
/// # Panics
///
/// Panics if `graphs.len() != labels.len()` or a rate is outside `[0, 1]`.
#[must_use]
pub fn noise_sweep<G: Borrow<Graph> + Sync>(
    model: &GraphHdModel,
    graphs: &[G],
    labels: &[u32],
    rates: &[f64],
    seed: u64,
) -> Vec<(f64, f64, f64)> {
    rates
        .iter()
        .map(|&rate| {
            (
                rate,
                accuracy_under_model_noise(model, graphs, labels, rate, seed),
                accuracy_under_query_noise(model, graphs, labels, rate, seed),
            )
        })
        .collect()
}

fn correct_fraction(predictions: &[u32], labels: &[u32]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count() as f64
        / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphHdConfig;
    use graphcore::generate;

    fn separable_model() -> (GraphHdModel, Vec<Graph>, Vec<u32>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..16 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
        }
        let model =
            GraphHdModel::fit(GraphHdConfig::default(), &graphs, &labels, 2).expect("valid inputs");
        (model, graphs, labels)
    }

    #[test]
    fn zero_noise_is_clean_accuracy() {
        let (model, graphs, labels) = separable_model();
        let clean = correct_fraction(&model.predict_batch(&graphs), &labels);
        assert_eq!(
            accuracy_under_model_noise(&model, &graphs, &labels, 0.0, 7),
            clean
        );
        assert_eq!(
            accuracy_under_query_noise(&model, &graphs, &labels, 0.0, 7),
            clean
        );
    }

    #[test]
    fn graceful_degradation_up_to_heavy_noise() {
        let (model, graphs, labels) = separable_model();
        let at_10 = accuracy_under_model_noise(&model, &graphs, &labels, 0.10, 7);
        let at_45 = accuracy_under_model_noise(&model, &graphs, &labels, 0.45, 7);
        assert!(at_10 >= 0.9, "10% noise accuracy {at_10}");
        // At 45% flipped bits the signal is nearly gone but must stay
        // defined; at 50% it is chance by construction.
        assert!((0.0..=1.0).contains(&at_45));
    }

    #[test]
    fn sweep_returns_aligned_rows() {
        let (model, graphs, labels) = separable_model();
        let rows = noise_sweep(&model, &graphs, &labels, &[0.0, 0.2], 3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0.0);
        assert!(rows[0].1 >= rows[1].1 - 0.2, "monotone-ish degradation");
    }

    #[test]
    fn determinism_per_seed() {
        let (model, graphs, labels) = separable_model();
        let a = accuracy_under_model_noise(&model, &graphs, &labels, 0.3, 42);
        let b = accuracy_under_model_noise(&model, &graphs, &labels, 0.3, 42);
        assert_eq!(a, b);
    }
}
