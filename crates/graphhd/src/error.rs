//! The unified fallible surface of the crate.
//!
//! Every constructor and training entry point in `graphhd` (and the
//! serving [`Engine`](https://docs.rs/engine) built on top of it) reports
//! failures through one [`Error`] enum, so callers match on a single type
//! instead of juggling `hdvec`, training, snapshot and queue errors at
//! every crate boundary.

use hdvec::HdvError;

/// Errors produced by the GraphHD construction, training, snapshot and
/// serving surfaces.
///
/// The enum is `#[non_exhaustive]`: downstream matches need a wildcard
/// arm, which lets later PRs add failure modes without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Graph and label counts differ.
    LengthMismatch {
        /// Number of graphs supplied.
        graphs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label was `>= num_classes`.
    LabelOutOfRange {
        /// Index of the offending sample.
        index: usize,
        /// The label value.
        label: u32,
        /// Declared class count.
        num_classes: usize,
    },
    /// `num_classes` was zero.
    ZeroClasses,
    /// The configured hypervector dimension was zero.
    ZeroDimension,
    /// A multi-prototype model was configured with `max_prototypes == 0`.
    ZeroPrototypes,
    /// An encoder strategy was configured with invalid parameters (e.g.
    /// a vertex-similarity quantization depth below 2).
    InvalidEncoderConfig {
        /// Which parameter was invalid.
        what: &'static str,
    },
    /// A serving queue was configured with zero capacity.
    ZeroQueueCapacity,
    /// A serving dispatcher was configured with a zero batch limit.
    ZeroBatch,
    /// A hypervector-substrate failure that has no dedicated variant.
    /// (`HdvError::ZeroDimension` maps to [`Error::ZeroDimension`]
    /// instead, so dimension checks surface uniformly.)
    Hdv(HdvError),
    /// A model snapshot could not be decoded.
    Snapshot(SnapshotError),
    /// An I/O failure while reading or writing a snapshot.
    Io {
        /// The [`std::io::ErrorKind`] of the underlying failure.
        kind: std::io::ErrorKind,
        /// The underlying error, rendered.
        message: String,
    },
    /// A dataset-layer failure (fold splitting, dataset construction)
    /// routed through the unified surface via `From` impls defined next
    /// to the source types.
    Data {
        /// Which dataset operation failed (e.g. `"stratified k-fold"`).
        context: &'static str,
        /// The underlying error, rendered.
        message: String,
    },
    /// A request was submitted to an engine that has shut down.
    ShutDown,
    /// A serving request was dropped because its batch panicked.
    TaskFailed,
    /// A serving request's deadline passed before it was served —
    /// either already expired at admission, or aged out while queued
    /// (re-checked at dispatch so stale work never reaches the pool).
    DeadlineExceeded,
    /// A serving request was refused at admission because the queue was
    /// full under a shed or bounded-wait overload policy.
    Overloaded,
    /// The engine's dispatcher crashed more times than its restart
    /// budget allows; the engine is permanently out of service and
    /// every submit fails fast.
    Poisoned,
    /// An internal invariant did not hold. Seeing this variant is a bug
    /// in this crate, not a caller mistake; it exists so invariant
    /// violations surface as request failures instead of process aborts.
    Internal {
        /// Which invariant was violated.
        what: &'static str,
    },
}

/// Ways a model snapshot can fail to decode (see
/// [`GraphHdModel::load`](crate::GraphHdModel::load) for the format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The file does not start with the GraphHD snapshot magic.
    BadMagic,
    /// The snapshot declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The stream ended before the declared payload was complete.
    Truncated,
    /// The stream continued past the declared payload.
    TrailingBytes,
    /// A header or payload field failed validation.
    Corrupt {
        /// Which field was invalid.
        what: &'static str,
    },
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a GraphHD snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            SnapshotError::Truncated => write!(f, "snapshot ends before the declared payload"),
            SnapshotError::TrailingBytes => {
                write!(f, "snapshot continues past the declared payload")
            }
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::EmptyTrainingSet => write!(f, "cannot train on zero graphs"),
            Error::LengthMismatch { graphs, labels } => {
                write!(f, "{graphs} graphs but {labels} labels")
            }
            Error::LabelOutOfRange {
                index,
                label,
                num_classes,
            } => write!(
                f,
                "label {label} at index {index} out of range for {num_classes} classes"
            ),
            Error::ZeroClasses => write!(f, "need at least one class"),
            Error::ZeroDimension => write!(f, "hypervector dimension must be positive"),
            Error::ZeroPrototypes => write!(f, "need at least one prototype per class"),
            Error::InvalidEncoderConfig { what } => {
                write!(f, "invalid encoder configuration: {what}")
            }
            Error::ZeroQueueCapacity => write!(f, "request queue capacity must be positive"),
            Error::ZeroBatch => write!(f, "dispatch batch limit must be positive"),
            Error::Hdv(e) => write!(f, "hypervector error: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::Io { kind, message } => write!(f, "i/o error ({kind:?}): {message}"),
            Error::Data { context, message } => write!(f, "{context} failed: {message}"),
            Error::ShutDown => write!(f, "engine has shut down"),
            Error::TaskFailed => write!(f, "request batch failed"),
            Error::DeadlineExceeded => write!(f, "request deadline exceeded before service"),
            Error::Overloaded => write!(f, "request shed: queue full under overload policy"),
            Error::Poisoned => {
                write!(f, "engine poisoned: dispatcher exceeded its restart budget")
            }
            Error::Internal { what } => {
                write!(f, "internal invariant violated (library bug): {what}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Hdv(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HdvError> for Error {
    /// `ZeroDimension` keeps its dedicated variant (the most common
    /// configuration mistake); everything else is wrapped.
    fn from(e: HdvError) -> Self {
        match e {
            HdvError::ZeroDimension => Error::ZeroDimension,
            other => Error::Hdv(other),
        }
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            Error::EmptyTrainingSet.to_string(),
            Error::LengthMismatch {
                graphs: 1,
                labels: 2,
            }
            .to_string(),
            Error::ZeroClasses.to_string(),
            Error::ZeroDimension.to_string(),
            Error::ZeroPrototypes.to_string(),
            Error::ZeroQueueCapacity.to_string(),
            Error::InvalidEncoderConfig {
                what: "edge weight cap must be positive",
            }
            .to_string(),
            Error::ShutDown.to_string(),
            Error::Snapshot(SnapshotError::BadMagic).to_string(),
            Error::Data {
                context: "stratified k-fold",
                message: "too few folds".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            // Suite convention: no leading capitals, no trailing period
            // (counts like "1 graphs ..." may lead with a digit).
            assert!(!m.chars().next().unwrap().is_uppercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn hdv_zero_dimension_maps_to_the_dedicated_variant() {
        assert_eq!(Error::from(HdvError::ZeroDimension), Error::ZeroDimension);
        assert_eq!(
            Error::from(HdvError::EmptyBundle),
            Error::Hdv(HdvError::EmptyBundle)
        );
    }

    #[test]
    fn io_errors_preserve_kind() {
        let e = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "missing"));
        assert!(matches!(
            e,
            Error::Io {
                kind: std::io::ErrorKind::NotFound,
                ..
            }
        ));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<Error>();
        assert_error::<SnapshotError>();
        // Sources chain to the wrapped substrate errors.
        let e = Error::Hdv(HdvError::EmptyBundle);
        assert!(std::error::Error::source(&e).is_some());
    }
}
