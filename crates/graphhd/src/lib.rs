//! **GraphHD** — graph classification with hyperdimensional computing.
//!
//! This crate is the primary contribution of the reproduced paper (Nunes,
//! Heddes, Givargis, Nicolau, Veidenbaum: *GraphHD: Efficient graph
//! classification using hyperdimensional computing*, DATE 2022). The
//! pipeline, following Section IV:
//!
//! 1. **Vertex encoding** — vertices are ranked by PageRank centrality;
//!    vertices with the same centrality rank (across different graphs!)
//!    share a random basis hypervector, giving a topology-derived symbol
//!    correspondence between graphs.
//! 2. **Edge encoding** — each edge binds its endpoint hypervectors:
//!    `Enc_e((u, v)) = Enc_v(u) × Enc_v(v)`.
//! 3. **Graph encoding** — all edge hypervectors of a graph are bundled
//!    (majority vote) into the graph hypervector.
//! 4. **Training** (Algorithm 1) — the hypervectors of each class are
//!    bundled into a class vector.
//! 5. **Inference** — a query graph is encoded with the same function and
//!    assigned the class of the most cosine-similar class vector.
//!
//! Beyond the baseline, the crate implements the paper's future-work
//! directions (Section VII): [`retrain`](model::GraphHdModel::retrain)ing,
//! [`prototypes`] (multiple class-vectors per class), and
//! [`labeled`] (vertex-label-aware encoding), plus [`noise`] utilities
//! backing the robustness claims of Sections I–II. The encoding stage
//! itself is pluggable: [`strategy`] defines the
//! [`GraphEncodingStrategy`] trait with the paper's centrality recipe
//! plus VS-Graph-style vertex-similarity and CiliaGraph-style
//! edge-weighted alternatives, selected via
//! [`EncoderKind`] on the config builder.
//!
//! # Examples
//!
//! ```
//! use graphhd::{GraphHdConfig, GraphHdModel};
//! use graphcore::generate;
//!
//! // Tell dense graphs from sparse ones.
//! let graphs: Vec<_> = (5..15)
//!     .flat_map(|n| [generate::complete(n), generate::path(n)])
//!     .collect();
//! let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
//!
//! let model = GraphHdModel::fit(GraphHdConfig::default(), &graphs, &labels, 2)?;
//! let dense = generate::complete(9);
//! assert_eq!(model.predict(&dense), 0);
//! # Ok::<(), graphhd::Error>(())
//! ```
//!
//! # Serving & model artifacts
//!
//! A trained [`GraphHdModel`] is a deployable artifact:
//! [`save`](GraphHdModel::save) writes a versioned, endian-stable binary
//! snapshot (format documented on [`GraphHdModel::load`]) that any
//! process — on any machine — reloads into a bit-identical model. The
//! `engine` crate builds the long-lived serving front door on top.
//! All construction goes through the one fallible surface of
//! [`Error`], via [`GraphHdConfig::builder`].

mod classifier;
mod config;
mod encoder;
mod error;
pub mod labeled;
pub mod metrics;
mod model;
pub mod noise;
pub mod prototypes;
pub mod select;
mod snapshot;
pub mod strategy;

pub use classifier::{validate_fit_inputs, GraphClassifier, GraphHdClassifier};
pub use config::{CentralityKind, GraphHdConfig, GraphHdConfigBuilder};
pub use encoder::GraphEncoder;
pub use error::{Error, SnapshotError};
pub use model::{GraphHdModel, RetrainReport};
pub use snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use strategy::{EncoderKind, GraphEncodingStrategy};
