//! **GraphHD** — graph classification with hyperdimensional computing.
//!
//! This crate is the primary contribution of the reproduced paper (Nunes,
//! Heddes, Givargis, Nicolau, Veidenbaum: *GraphHD: Efficient graph
//! classification using hyperdimensional computing*, DATE 2022). The
//! pipeline, following Section IV:
//!
//! 1. **Vertex encoding** — vertices are ranked by PageRank centrality;
//!    vertices with the same centrality rank (across different graphs!)
//!    share a random basis hypervector, giving a topology-derived symbol
//!    correspondence between graphs.
//! 2. **Edge encoding** — each edge binds its endpoint hypervectors:
//!    `Enc_e((u, v)) = Enc_v(u) × Enc_v(v)`.
//! 3. **Graph encoding** — all edge hypervectors of a graph are bundled
//!    (majority vote) into the graph hypervector.
//! 4. **Training** (Algorithm 1) — the hypervectors of each class are
//!    bundled into a class vector.
//! 5. **Inference** — a query graph is encoded with the same function and
//!    assigned the class of the most cosine-similar class vector.
//!
//! Beyond the baseline, the crate implements the paper's future-work
//! directions (Section VII): [`retrain`](model::GraphHdModel::retrain)ing,
//! [`prototypes`] (multiple class-vectors per class), and
//! [`labeled`] (vertex-label-aware encoding), plus [`noise`] utilities
//! backing the robustness claims of Sections I–II.
//!
//! # Examples
//!
//! ```
//! use graphhd::{GraphHdConfig, GraphHdModel};
//! use graphcore::generate;
//!
//! // Tell dense graphs from sparse ones.
//! let graphs: Vec<_> = (5..15)
//!     .flat_map(|n| [generate::complete(n), generate::path(n)])
//!     .collect();
//! let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
//!
//! let model = GraphHdModel::fit(GraphHdConfig::default(), &graphs, &labels, 2)?;
//! let dense = generate::complete(9);
//! assert_eq!(model.predict(&dense), 0);
//! # Ok::<(), graphhd::TrainError>(())
//! ```

mod classifier;
mod config;
mod encoder;
pub mod labeled;
mod model;
pub mod noise;
pub mod prototypes;
mod select;

pub use classifier::GraphHdClassifier;
pub use config::{CentralityKind, GraphHdConfig};
pub use encoder::GraphEncoder;
pub use model::{GraphHdModel, RetrainReport, TrainError};
