//! Property-based tests for the GraphHD encoder and model.

use graphcore::{generate, Graph, GraphBuilder};
use graphhd::{GraphEncoder, GraphHdConfig};
use hdvec::Accumulator;
use prng::{WordRng, Xoshiro256PlusPlus};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..25, 0.05f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        generate::erdos_renyi(n, p, &mut rng).expect("valid parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bitsliced_encoding_equals_naive_accumulation(g in arb_graph()) {
        // The production encoder bundles edges with bit-sliced counters;
        // re-derive the same accumulator naively and compare exactly.
        let encoder = GraphEncoder::new(GraphHdConfig::builder().dim(512).build().expect("valid dimension")).expect("valid");
        let fast = encoder.encode_to_accumulator(&g);

        let ranks = encoder.vertex_ranks(&g);
        let mut naive = Accumulator::new(512).expect("valid dimension");
        for (u, v) in g.edges() {
            let hu = encoder.memory().hypervector(u64::from(ranks[u as usize]));
            let hv = encoder.memory().hypervector(u64::from(ranks[v as usize]));
            naive.add(&hu.bind(&hv));
        }
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn encoding_is_isomorphism_invariant_on_tie_free_graphs(g in arb_graph()) {
        // Relabel vertices; if the PageRank scores are tie-free the rank
        // assignment is permutation-equivariant and the encoding fixed.
        let scores = graphcore::pagerank(&g, &graphcore::PageRankConfig::default());
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let tie_free = sorted.windows(2).all(|w| (w[1] - w[0]).abs() > 1e-12);
        prop_assume!(tie_free);

        let n = g.vertex_count();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut perm);
        let mut builder = GraphBuilder::new(n);
        for (u, v) in g.edges() {
            builder.add_edge(perm[u as usize], perm[v as usize]);
        }
        let permuted = builder.build();

        let encoder = GraphEncoder::new(GraphHdConfig::builder().dim(256).build().expect("valid dimension")).expect("valid");
        prop_assert_eq!(encoder.encode(&g), encoder.encode(&permuted));
    }

    #[test]
    fn accumulator_edge_budget(g in arb_graph()) {
        let encoder = GraphEncoder::new(GraphHdConfig::builder().dim(128).build().expect("valid dimension")).expect("valid");
        let acc = encoder.encode_to_accumulator(&g);
        prop_assert_eq!(acc.added(), g.edge_count() as u64);
        // Counter magnitudes cannot exceed the number of edges.
        let m = g.edge_count() as i32;
        prop_assert!(acc.counts().iter().all(|c| c.abs() <= m));
    }

    #[test]
    fn encode_all_parallel_equals_serial(seed in any::<u64>(), count in 1usize..40) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let graphs: Vec<Graph> = (0..count)
            .map(|i| generate::erdos_renyi(5 + i % 7, 0.3, &mut rng).expect("valid"))
            .collect();
        let encoder = GraphEncoder::new(GraphHdConfig::builder().dim(256).build().expect("valid dimension")).expect("valid");
        let parallel = encoder.encode_all(&graphs);
        let serial: Vec<_> = graphs.iter().map(|g| encoder.encode(g)).collect();
        prop_assert_eq!(parallel, serial);
    }
}
