//! Differential properties of the pluggable encoder strategies: every
//! strategy is deterministic under a fixed seed, bit-identical across
//! thread counts, and survives a snapshot round trip with its identity
//! intact.

use graphcore::{generate, Graph};
use graphhd::{EncoderKind, GraphEncoder, GraphHdConfig, GraphHdModel};
use parallel::Pool;
use prng::Xoshiro256PlusPlus;
use proptest::prelude::*;
use std::sync::Arc;

const KINDS: [EncoderKind; 3] = [
    EncoderKind::Centrality,
    EncoderKind::VertexSimilarity { levels: 16 },
    EncoderKind::EdgeWeighted { weight_cap: 4 },
];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..25, 0.05f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        generate::erdos_renyi(n, p, &mut rng).expect("valid parameters")
    })
}

fn arb_kind() -> impl Strategy<Value = EncoderKind> {
    prop_oneof![
        Just(EncoderKind::Centrality),
        (2u32..64).prop_map(|levels| EncoderKind::VertexSimilarity { levels }),
        (1u32..16).prop_map(|weight_cap| EncoderKind::EdgeWeighted { weight_cap }),
    ]
}

fn encoder(kind: EncoderKind, seed: u64) -> GraphEncoder {
    let config = GraphHdConfig::builder()
        .dim(512)
        .seed(seed)
        .with_encoder(kind)
        .build()
        .expect("valid config");
    GraphEncoder::new(config).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_strategy_is_deterministic_under_a_fixed_seed(
        g in arb_graph(),
        kind in arb_kind(),
        seed in any::<u64>(),
    ) {
        // Two independently constructed encoders with the same seed must
        // agree bit-for-bit — nothing in a strategy may draw entropy
        // outside the seeded item/level memories.
        let a = encoder(kind, seed);
        let b = encoder(kind, seed);
        prop_assert_eq!(a.encode(&g), b.encode(&g));
        prop_assert_eq!(
            a.encode_to_accumulator(&g),
            b.encode_to_accumulator(&g)
        );
    }

    #[test]
    fn batch_encoding_is_bit_identical_across_thread_counts(
        kind in arb_kind(),
        seed in any::<u64>(),
    ) {
        let graphs: Vec<Graph> = (5..17)
            .flat_map(|n| [generate::complete(n), generate::path(n), generate::star(n)])
            .collect();
        let serial = encoder(kind, seed).with_pool(Arc::new(Pool::with_threads(1)));
        let expected: Vec<_> = graphs.iter().map(|g| serial.encode(g)).collect();
        for threads in [1usize, 4] {
            let pooled = encoder(kind, seed).with_pool(Arc::new(Pool::with_threads(threads)));
            prop_assert_eq!(&pooled.encode_all(&graphs), &expected, "threads {}", threads);
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_encoder_identity(
        kind in arb_kind(),
        seed in any::<u64>(),
    ) {
        let graphs = [generate::complete(9), generate::path(9)];
        let config = GraphHdConfig::builder()
            .dim(256)
            .seed(seed)
            .with_encoder(kind)
            .build()
            .expect("valid config");
        let model = GraphHdModel::fit(config, &graphs, &[0, 1], 2).expect("valid inputs");
        let mut bytes = Vec::new();
        model.save_to(&mut bytes).expect("in-memory write");
        let restored = GraphHdModel::load_from(&mut bytes.as_slice()).expect("valid snapshot");
        prop_assert_eq!(restored.encoder().config(), model.encoder().config());
        prop_assert_eq!(restored.encoder().config().encoder, kind);
        // The restored model re-derives the same strategy: fresh graphs
        // encode and classify identically.
        for n in 5..15 {
            let g = generate::cycle(n);
            prop_assert_eq!(restored.predict(&g), model.predict(&g));
        }
    }
}

#[test]
fn the_three_shipped_strategies_disagree_on_a_clustered_graph() {
    // A graph with both a clique and a tail exercises the similarity
    // levels and the edge weights; no two strategies may collapse into
    // the same encoding there.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
    let g = generate::erdos_renyi(24, 0.3, &mut rng).expect("valid parameters");
    let encodings: Vec<_> = KINDS
        .iter()
        .map(|&kind| encoder(kind, 1).encode_to_accumulator(&g))
        .collect();
    for i in 0..KINDS.len() {
        for j in i + 1..KINDS.len() {
            assert_ne!(
                encodings[i],
                encodings[j],
                "{} vs {}",
                KINDS[i].name(),
                KINDS[j].name()
            );
        }
    }
}

#[test]
fn version_1_fixture_bytes_load_as_the_centrality_strategy() {
    // A byte-exact v1 snapshot (the pre-strategy format: no encoder
    // fields, num_classes at offset 54) assembled by hand, independent
    // of the current writer.
    let graphs = [generate::complete(8), generate::path(8)];
    let config = GraphHdConfig::builder()
        .dim(64)
        .seed(0xA5)
        .build()
        .expect("valid config");
    let model = GraphHdModel::fit(config, &graphs, &[0, 1], 2).expect("valid inputs");

    let mut fixture = Vec::new();
    fixture.extend_from_slice(b"GRAPHHD\0");
    fixture.extend_from_slice(&1u32.to_le_bytes()); // format version 1
    fixture.extend_from_slice(&64u64.to_le_bytes()); // dim
    fixture.extend_from_slice(&0xA5u64.to_le_bytes()); // seed
    fixture.push(0); // centrality tag: PageRank
    fixture.push(2); // tie-break tag: Seeded (the config default)
    fixture.extend_from_slice(&0u64.to_le_bytes()); // tie-break seed
    let pagerank = graphcore::PageRankConfig::default();
    fixture.extend_from_slice(&(pagerank.iterations as u64).to_le_bytes());
    fixture.extend_from_slice(&pagerank.damping.to_bits().to_le_bytes());
    fixture.extend_from_slice(&2u64.to_le_bytes()); // num_classes
    for class_vector in model.class_vectors() {
        for &word in class_vector.words() {
            fixture.extend_from_slice(&word.to_le_bytes());
        }
    }

    let restored = GraphHdModel::load_from(&mut fixture.as_slice()).expect("valid v1 snapshot");
    assert_eq!(restored.encoder().config().encoder, EncoderKind::Centrality);
    assert_eq!(restored.encoder().config(), model.encoder().config());
    assert_eq!(restored.class_vectors(), model.class_vectors());
}
