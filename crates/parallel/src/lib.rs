//! **parallel** — the suite's persistent work-stealing runtime.
//!
//! GraphHD's pipeline is embarrassingly parallel: encodings of different
//! graphs are independent, bundling is order-independent integer
//! addition, Gram-matrix cells are independent, and cross-validation
//! folds own their classifiers. Before this crate, the two places that
//! exploited that (the batch encoder and the WL Gram matrix) each
//! hand-rolled `std::thread::scope` with static round-robin dealing,
//! which load-imbalances badly on skewed graph sizes. This crate replaces
//! both with one shared substrate:
//!
//! - [`Pool`] — a persistent pool of workers with per-worker deques and
//!   chunked work stealing. [`Pool::with_threads`] pins an exact
//!   parallelism degree for deterministic benchmarking;
//!   [`Pool::global`] is the process-wide default, sized by the
//!   `GRAPHHD_THREADS` environment variable or the machine.
//! - [`Pool::par_for`] / [`Pool::par_map`] / [`Pool::par_fold_reduce`] /
//!   [`Pool::par_chunks_mut`] — data-parallel operations whose results
//!   are **bit-identical to the serial evaluation at every thread
//!   count** (see each method's contract). Determinism is structural:
//!   results are keyed by input index and re-assembled in input order,
//!   and fold states are reduced in chunk order.
//! - [`PoolHandle`] — how components (the graph encoder, the CV harness)
//!   select between the global pool and an explicitly owned one.
//! - [`Pool::stats`] — lock-free scheduling telemetry (chunks executed,
//!   steals, region timings, per-worker utilization), registrable into a
//!   [`telemetry::Registry`] via [`Pool::register_metrics`].
//!
//! The crate depends only on the workspace's zero-dep `telemetry` crate
//! and has exactly one `unsafe` block: the
//! lifetime erasure that lets persistent workers run borrowed region
//! closures (see `Pool::run_region` internals). Its soundness rests on
//! the submitting call blocking until every chunk has completed.
//!
//! # Examples
//!
//! ```
//! use parallel::Pool;
//!
//! let pool = Pool::with_threads(4);
//! let data: Vec<u64> = (0..1000).collect();
//! let total = pool.par_fold_reduce(
//!     &data,
//!     1,
//!     || 0u64,
//!     |sum, _, &x| sum.wrapping_add(x),
//!     |a, b| a.wrapping_add(b),
//! );
//! assert_eq!(total, data.iter().sum::<u64>());
//! ```

// Unsafe code is allowed only in vetted leaf modules, and even
// there every unsafe operation inside an `unsafe fn` must sit in
// an explicit `unsafe {}` block with its own `// SAFETY:` record.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod model;
mod ops;
mod pool;

pub use pool::{default_threads, Pool, PoolHandle, PoolStats, WorkerStats, THREADS_ENV};
