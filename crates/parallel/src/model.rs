//! A deterministic-scheduler model checker for small concurrent
//! programs (a loom-lite).
//!
//! [`check`] runs a closure many times. Inside the closure, threads are
//! spawned with [`spawn`] and communicate through [`Mutex`],
//! [`Condvar`] and [`AtomicUsize`] — drop-in shaped replacements for
//! their `std::sync` namesakes. Exactly one virtual thread runs at a
//! time; every primitive operation is a *yield point* where the
//! scheduler chooses which runnable thread proceeds. The choice
//! sequence of one run is a *schedule*; [`check`] enumerates schedules
//! depth-first (replay a prefix, flip the last choice that still has
//! unexplored options) until the space is exhausted or a bound is hit.
//!
//! Because the scheduler controls every interleaving, the checker
//! detects, deterministically and with a replayable trace:
//!
//! - **assertion failures / panics** under any explored interleaving,
//! - **deadlocks** — no thread is runnable but some are blocked,
//! - **lost wakeups** — a notify that lands on an empty waiter set
//!   followed by a wait that nothing will ever end surfaces as a
//!   deadlock,
//! - **livelocks** — runs exceeding [`Config::max_steps`].
//!
//! # Semantics and limits
//!
//! - The modeled program must be *deterministic* apart from scheduling:
//!   rerunning the closure under the same choice sequence must perform
//!   the same operations. No time, no I/O, no randomness.
//! - [`Condvar`] has **no spurious wakeups**: a waiter wakes only via
//!   `notify_one`/`notify_all`. Code that is correct only thanks to a
//!   `while` re-check loop still deadlocks here if a wakeup is lost,
//!   which is exactly the bug class the checker is for.
//! - `notify_one` picks the woken waiter through a scheduler choice, so
//!   all wake orders are explored.
//! - Exploration is **preemption-bounded** (the CHESS strategy): a run
//!   may switch away from a still-runnable thread at most
//!   [`Config::preemption_bound`] times; switches where the current
//!   thread blocked or finished are free. Within the bound the space is
//!   exhausted, and empirically almost all concurrency bugs manifest
//!   within two or three preemptions. Raw schedule counts grow
//!   exponentially with threads × operations, so keep modeled programs
//!   tiny anyway: 2–3 spawned threads and a handful of operations each.
//!
//! # Example
//!
//! ```
//! use parallel::model::{self, Config};
//!
//! let report = model::check(Config::default(), || {
//!     let flag = std::sync::Arc::new(model::AtomicUsize::new(0));
//!     let f = std::sync::Arc::clone(&flag);
//!     let t = model::spawn(move || {
//!         f.store(1);
//!     });
//!     t.join();
//!     assert_eq!(flag.load(), 1);
//! });
//! assert!(report.failure.is_none());
//! assert!(report.complete);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::thread;

/// Exploration bounds for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Stop after exploring this many schedules even if the space is
    /// not exhausted (`complete` will be `false` in the report).
    pub max_schedules: usize,
    /// Fail a single run after this many scheduler steps (livelock
    /// guard).
    pub max_steps: usize,
    /// Maximum forced context switches per run (CHESS-style preemption
    /// bounding). Switches at blocking points are free; switching away
    /// from a thread that could continue spends budget. The schedule
    /// space is exhausted *within this bound* — raising it widens
    /// coverage exponentially.
    pub preemption_bound: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_schedules: 1_000_000,
            max_steps: 20_000,
            preemption_bound: 3,
        }
    }
}

/// One scheduler decision: `(chosen, options)`. Only points with more
/// than one option are recorded.
pub type Choice = (usize, usize);

/// A failing schedule and what went wrong on it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The choice sequence that reproduces the failure.
    pub schedule: Vec<Choice>,
    /// Human-readable description (panic message, deadlock, livelock).
    pub message: String,
}

/// The outcome of a [`check`] exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: usize,
    /// Whether the whole schedule space (within
    /// [`Config::preemption_bound`]) was exhausted.
    pub complete: bool,
    /// The first failing schedule found, if any (exploration stops on
    /// the first failure).
    pub failure: Option<Failure>,
}

/// Why a virtual thread is not runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Runnable (or running).
    None,
    /// Blocked acquiring the mutex with this id.
    Mutex(usize),
    /// Waiting on the condvar with this id.
    Condvar(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

/// Lifecycle of a virtual thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Done,
}

/// Panic payload used to unwind parked threads once a run is abandoned
/// (failure found or exploration shutting down).
struct Abandon;

/// Mutable scheduler state for one run.
#[derive(Debug)]
struct State {
    status: Vec<Status>,
    waiting: Vec<Wait>,
    /// Whose turn it is.
    active: usize,
    /// Decisions taken this run.
    trace: Vec<Choice>,
    /// Decision prefix to replay this run.
    replay: Vec<usize>,
    steps: usize,
    max_steps: usize,
    /// Forced context switches taken so far this run.
    preemptions: usize,
    preemption_bound: usize,
    /// Per-thread fairness flag: set by [`yield_now`], meaning "do not
    /// schedule me again while anyone else is runnable". Cleared when
    /// the thread is next scheduled.
    yielded: Vec<bool>,
    failure: Option<String>,
    /// Once set, every thread unwinds at its next yield point.
    abandoned: bool,
    /// All threads done (or run abandoned).
    finished: bool,
    /// Lock bit per registered mutex.
    mutexes: Vec<bool>,
    /// Waiting tids per registered condvar, in wait order.
    waiters: Vec<Vec<usize>>,
}

/// One run's shared scheduler.
struct Sched {
    state: StdMutex<State>,
    /// Signalled whenever `active` changes or the run is abandoned.
    turn: StdCondvar,
    /// Signalled when the run finishes.
    done: StdCondvar,
    /// Real join handles of the virtual threads, joined by the
    /// controller at the end of the run.
    handles: StdMutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Sched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sched").finish_non_exhaustive()
    }
}

/// The executing virtual thread's identity, stored thread-locally in
/// the real thread backing it.
#[derive(Clone)]
struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling virtual thread's context.
fn current() -> Ctx {
    CURRENT.with(|c| c.borrow().clone()).expect(
        "model primitive used outside model::check (construct and use them inside the closure)",
    )
}

impl Sched {
    fn lock_state(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().expect("model scheduler lock")
    }

    /// Takes one scheduler decision among `options` alternatives.
    /// Decisions with a single option are not recorded so traces stay
    /// dense.
    fn decide(st: &mut State, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        let chosen = match st.replay.get(st.trace.len()) {
            Some(&c) => c.min(options - 1),
            None => 0,
        };
        st.trace.push((chosen, options));
        chosen
    }

    /// Records a failure and abandons the run. The caller must unwind
    /// afterwards (every parked thread will, at its next yield point).
    fn fail(&self, st: &mut State, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abandoned = true;
        st.finished = true;
        self.turn.notify_all();
        self.done.notify_all();
    }

    /// Picks the next thread to run from the runnable set. Called with
    /// the current thread's status already updated (blocked or done).
    /// Detects deadlock and run completion.
    ///
    /// Scheduling is preemption-bounded (CHESS-style): switching away
    /// from a thread that could keep running counts against
    /// [`Config::preemption_bound`], and once the budget is spent the
    /// active thread runs on until it blocks or finishes. Switches at
    /// blocking points are free. This collapses the schedule space from
    /// exponential to polynomial while keeping the classic coverage
    /// guarantee: every bug reachable with at most `preemption_bound`
    /// preemptions is found.
    fn schedule(&self, st: &mut State) {
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(
                st,
                format!("livelock: run exceeded {} scheduler steps", st.max_steps),
            );
            return;
        }
        // Order the candidates with the active thread first (when still
        // runnable), so option 0 always means "continue, no preemption"
        // and depth-first exploration tries preemption-free schedules
        // before spending budget. A thread that called [`yield_now`] is
        // excluded while anyone else can run (fairness: spin loops
        // yield, and an all-spin schedule is not a livelock), and the
        // switch away from it is free.
        let others: Vec<usize> = (0..st.status.len())
            .filter(|&t| t != st.active && st.status[t] == Status::Runnable)
            .collect();
        let active_runnable = st
            .status
            .get(st.active)
            .is_some_and(|&s| s == Status::Runnable);
        let active_contends = active_runnable && (others.is_empty() || !st.yielded[st.active]);
        let mut runnable: Vec<usize> = Vec::new();
        if active_contends {
            runnable.push(st.active);
        }
        runnable.extend(others);
        if runnable.is_empty() {
            if st.status.iter().all(|&s| s == Status::Done) {
                st.finished = true;
                self.done.notify_all();
            } else {
                let blocked: Vec<String> = (0..st.status.len())
                    .filter(|&t| st.status[t] == Status::Blocked)
                    .map(|t| format!("thread {} on {:?}", t, st.waiting[t]))
                    .collect();
                self.fail(st, format!("deadlock: {}", blocked.join(", ")));
            }
            return;
        }
        let idx = if active_contends && st.preemptions >= st.preemption_bound {
            // Budget spent: the active thread is forced to continue
            // (not a decision, so it is not recorded in the trace).
            0
        } else {
            Self::decide(st, runnable.len())
        };
        if active_contends && idx != 0 {
            st.preemptions += 1;
        }
        st.active = runnable[idx];
        st.yielded[st.active] = false;
        self.turn.notify_all();
    }

    /// Parks the calling virtual thread until the scheduler hands it
    /// the turn. Unwinds if the run was abandoned meanwhile.
    fn wait_for_turn(&self, tid: usize) {
        let mut st = self.lock_state();
        while st.active != tid || st.status[tid] != Status::Runnable {
            if st.abandoned {
                drop(st);
                panic_any(Abandon);
            }
            st = self.turn.wait(st).expect("model scheduler lock");
        }
        if st.abandoned {
            drop(st);
            panic_any(Abandon);
        }
    }

    /// A plain yield point: the calling thread stays runnable and the
    /// scheduler picks who runs next (possibly the caller again).
    fn yield_point(&self, tid: usize) {
        {
            let mut st = self.lock_state();
            self.schedule(&mut st);
        }
        self.wait_for_turn(tid);
    }

    /// Blocks the calling thread on `wait`, schedules someone else, and
    /// parks until woken and re-scheduled.
    fn block_on(&self, tid: usize, wait: Wait) {
        {
            let mut st = self.lock_state();
            st.status[tid] = Status::Blocked;
            st.waiting[tid] = wait;
            self.schedule(&mut st);
        }
        self.wait_for_turn(tid);
    }
}

/// Runs `body` as virtual thread `tid`: wait for the first turn, run,
/// mark done (or record the panic and abandon the run).
fn virtual_main(sched: &Arc<Sched>, tid: usize, body: impl FnOnce()) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            sched: Arc::clone(sched),
            tid,
        });
    });
    sched.wait_for_turn(tid);
    let outcome = catch_unwind(AssertUnwindSafe(body));
    CURRENT.with(|c| c.borrow_mut().take());
    let mut st = sched.lock_state();
    match outcome {
        Ok(()) => {
            st.status[tid] = Status::Done;
            // Wake joiners; they re-contend through the scheduler.
            for t in 0..st.status.len() {
                if st.waiting[t] == Wait::Join(tid) {
                    st.status[t] = Status::Runnable;
                    st.waiting[t] = Wait::None;
                }
            }
            sched.schedule(&mut st);
        }
        Err(payload) => {
            if payload.downcast_ref::<Abandon>().is_none() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                sched.fail(&mut st, format!("thread {tid} panicked: {message}"));
            } else {
                st.status[tid] = Status::Done;
            }
        }
    }
}

/// Spawns a virtual thread running `f`. Must be called inside the
/// closure passed to [`check`]. Returns a handle whose
/// [`join`](JoinHandle::join) blocks the calling virtual thread until
/// `f` finishes.
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let ctx = current();
    ctx.sched.yield_point(ctx.tid);
    let tid = {
        let mut st = ctx.sched.lock_state();
        let tid = st.status.len();
        st.status.push(Status::Runnable);
        st.waiting.push(Wait::None);
        st.yielded.push(false);
        tid
    };
    let sched = Arc::clone(&ctx.sched);
    let handle = thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || virtual_main(&sched, tid, f))
        .expect("spawn model thread");
    ctx.sched
        .handles
        .lock()
        .expect("model handle lock")
        .push(handle);
    JoinHandle { tid }
}

/// Handle to a virtual thread created by [`spawn`].
pub struct JoinHandle {
    tid: usize,
}

impl std::fmt::Debug for JoinHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

impl JoinHandle {
    /// Blocks the calling virtual thread until the target finishes.
    pub fn join(self) {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        loop {
            {
                let st = ctx.sched.lock_state();
                if st.status[self.tid] == Status::Done {
                    return;
                }
            }
            ctx.sched.block_on(ctx.tid, Wait::Join(self.tid));
        }
    }
}

/// A model-checked mutual-exclusion lock. Same shape as
/// [`std::sync::Mutex`], but every acquisition is a scheduler yield
/// point and contention order is explored exhaustively.
pub struct Mutex<T> {
    id: usize,
    data: StdMutex<T>,
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("model::Mutex")
            .field("id", &self.id)
            .finish()
    }
}

impl<T> Mutex<T> {
    /// Creates a mutex registered with the current run's scheduler.
    /// Must be called inside the closure passed to [`check`].
    pub fn new(value: T) -> Self {
        let ctx = current();
        let mut st = ctx.sched.lock_state();
        let id = st.mutexes.len();
        st.mutexes.push(false);
        Self {
            id,
            data: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking (through the model scheduler) while
    /// another virtual thread holds it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        self.acquire(&ctx)
    }

    /// The acquisition loop shared by [`lock`](Self::lock) and
    /// [`Condvar::wait`] re-acquisition: take the lock bit or block
    /// until the holder releases it.
    fn acquire(&self, ctx: &Ctx) -> MutexGuard<'_, T> {
        loop {
            {
                let mut st = ctx.sched.lock_state();
                if !st.mutexes[self.id] {
                    st.mutexes[self.id] = true;
                    break;
                }
            }
            ctx.sched.block_on(ctx.tid, Wait::Mutex(self.id));
        }
        // The model lock bit gives exclusivity, so the real try_lock
        // cannot contend.
        let data = self.data.try_lock().expect("model mutex held exclusively");
        MutexGuard {
            mutex: self,
            data: Some(data),
            ctx: ctx.clone(),
        }
    }

    /// Releases the lock bit and wakes every thread blocked on it; the
    /// winner is decided at the next scheduler choice.
    fn release(&self, ctx: &Ctx) {
        let mut st = ctx.sched.lock_state();
        st.mutexes[self.id] = false;
        for t in 0..st.status.len() {
            if st.waiting[t] == Wait::Mutex(self.id) {
                st.status[t] = Status::Runnable;
                st.waiting[t] = Wait::None;
            }
        }
    }
}

/// RAII guard for [`Mutex`]; releases at drop like its `std` namesake.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// `Some` until the guard is dismantled by drop or `Condvar::wait`.
    data: Option<StdMutexGuard<'a, T>>,
    ctx: Ctx,
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("model::MutexGuard").finish_non_exhaustive()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard holds data until dropped")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard holds data until dropped")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            drop(data);
            self.mutex.release(&self.ctx);
        }
    }
}

/// A model-checked condition variable. No spurious wakeups;
/// `notify_one` explores every possible waiter as the woken one.
pub struct Condvar {
    id: usize,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("model::Condvar")
            .field("id", &self.id)
            .finish()
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a condvar registered with the current run's scheduler.
    /// Must be called inside the closure passed to [`check`].
    #[must_use]
    pub fn new() -> Self {
        let ctx = current();
        let mut st = ctx.sched.lock_state();
        let id = st.waiters.len();
        st.waiters.push(Vec::new());
        Self { id }
    }

    /// Atomically releases `guard`'s mutex and waits for a
    /// notification, then re-acquires the mutex before returning — the
    /// same contract as [`std::sync::Condvar::wait`], minus spurious
    /// wakeups.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let ctx = guard.ctx.clone();
        let mutex = guard.mutex;
        // Dismantle the guard by hand so the release of the mutex and
        // the enrolment as a waiter are one atomic scheduler action (a
        // plain drop would open a window where a notify could slip in
        // between release and wait and be counted as consumed).
        drop(guard.data.take());
        {
            let mut st = ctx.sched.lock_state();
            st.mutexes[mutex.id] = false;
            for t in 0..st.status.len() {
                if st.waiting[t] == Wait::Mutex(mutex.id) {
                    st.status[t] = Status::Runnable;
                    st.waiting[t] = Wait::None;
                }
            }
            st.waiters[self.id].push(ctx.tid);
            st.status[ctx.tid] = Status::Blocked;
            st.waiting[ctx.tid] = Wait::Condvar(self.id);
            ctx.sched.schedule(&mut st);
        }
        ctx.sched.wait_for_turn(ctx.tid);
        mutex.acquire(&ctx)
    }

    /// Wakes one waiter if any; which one is a scheduler choice, so
    /// every wake order is explored. A notify with no waiters is lost,
    /// exactly like the real primitive.
    pub fn notify_one(&self) {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        let mut st = ctx.sched.lock_state();
        let n_waiting = st.waiters[self.id].len();
        if n_waiting > 0 {
            let idx = Sched::decide(&mut st, n_waiting);
            let tid = st.waiters[self.id].remove(idx);
            st.status[tid] = Status::Runnable;
            st.waiting[tid] = Wait::None;
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        let mut st = ctx.sched.lock_state();
        let woken = std::mem::take(&mut st.waiters[self.id]);
        for tid in woken {
            st.status[tid] = Status::Runnable;
            st.waiting[tid] = Wait::None;
        }
    }
}

/// A model-checked counter with sequentially-consistent semantics.
/// Every operation is a yield point.
#[derive(Debug)]
pub struct AtomicUsize {
    value: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// Creates a counter. Must be used inside [`check`]'s closure.
    #[must_use]
    pub fn new(value: usize) -> Self {
        Self {
            value: std::sync::atomic::AtomicUsize::new(value),
        }
    }

    /// Reads the value (yield point).
    pub fn load(&self) -> usize {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        self.value.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Writes the value (yield point).
    pub fn store(&self, value: usize) {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        self.value.store(value, std::sync::atomic::Ordering::SeqCst);
    }

    /// Adds and returns the previous value (one atomic yield point).
    pub fn fetch_add(&self, delta: usize) -> usize {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        self.value
            .fetch_add(delta, std::sync::atomic::Ordering::SeqCst)
    }

    /// Subtracts and returns the previous value (one atomic yield
    /// point).
    pub fn fetch_sub(&self, delta: usize) -> usize {
        let ctx = current();
        ctx.sched.yield_point(ctx.tid);
        self.value
            .fetch_sub(delta, std::sync::atomic::Ordering::SeqCst)
    }
}

/// Fair yield: the calling thread declares it cannot make progress
/// until another thread runs (a spin-loop backoff, like
/// `std::thread::yield_now` in real code). The scheduler will not pick
/// it again while any other thread is runnable, and the forced switch
/// does not count against [`Config::preemption_bound`]. Spin loops in
/// modeled programs **must** call this, or the checker reports the
/// schedule that starves every other thread as a livelock.
pub fn yield_now() {
    let ctx = current();
    {
        let mut st = ctx.sched.lock_state();
        st.yielded[ctx.tid] = true;
        ctx.sched.schedule(&mut st);
    }
    ctx.sched.wait_for_turn(ctx.tid);
}

/// Runs one schedule: execute `body` as virtual thread 0 under the
/// given replay prefix; returns the trace and the failure, if any.
fn run_one(
    config: Config,
    replay: Vec<usize>,
    body: &Arc<dyn Fn() + Send + Sync>,
) -> (Vec<Choice>, Option<String>) {
    let sched = Arc::new(Sched {
        state: StdMutex::new(State {
            status: vec![Status::Runnable],
            waiting: vec![Wait::None],
            active: 0,
            trace: Vec::new(),
            replay,
            steps: 0,
            max_steps: config.max_steps,
            preemptions: 0,
            preemption_bound: config.preemption_bound,
            yielded: vec![false],
            failure: None,
            abandoned: false,
            finished: false,
            mutexes: Vec::new(),
            waiters: Vec::new(),
        }),
        turn: StdCondvar::new(),
        done: StdCondvar::new(),
        handles: StdMutex::new(Vec::new()),
    });
    let root_sched = Arc::clone(&sched);
    let body = Arc::clone(body);
    let root = thread::Builder::new()
        .name("model-0".to_string())
        .spawn(move || virtual_main(&root_sched, 0, move || body()))
        .expect("spawn model root thread");
    {
        let mut st = sched.lock_state();
        while !st.finished {
            st = sched.done.wait(st).expect("model scheduler lock");
        }
    }
    // Join the root and every spawned thread; abandoned threads unwind
    // with the Abandon payload, which join surfaces as Err — expected.
    let _ = root.join();
    let handles = std::mem::take(&mut *sched.handles.lock().expect("model handle lock"));
    for handle in handles {
        let _ = handle.join();
    }
    let st = sched.lock_state();
    (st.trace.clone(), st.failure.clone())
}

/// Explores the schedule space of `body` depth-first and reports the
/// first failure found.
///
/// The closure runs once per schedule; see the [module docs](self) for
/// the determinism requirements and the failure classes detected.
pub fn check(config: Config, body: impl Fn() + Send + Sync + 'static) -> Report {
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut replay: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let (trace, failure) = run_one(config, replay, &body);
        schedules += 1;
        if let Some(message) = failure {
            return Report {
                schedules,
                complete: false,
                failure: Some(Failure {
                    schedule: trace,
                    message,
                }),
            };
        }
        // Backtrack: rewind to the deepest choice with unexplored
        // alternatives and take the next one.
        let mut prefix: VecDeque<Choice> = trace.into();
        let next = loop {
            match prefix.pop_back() {
                Some((chosen, options)) if chosen + 1 < options => {
                    let mut r: Vec<usize> = prefix.iter().map(|&(c, _)| c).collect();
                    r.push(chosen + 1);
                    break Some(r);
                }
                Some(_) => continue,
                None => break None,
            }
        };
        match next {
            Some(r) => replay = r,
            None => {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                }
            }
        }
        if schedules >= config.max_schedules {
            return Report {
                schedules,
                complete: false,
                failure: None,
            };
        }
    }
}
