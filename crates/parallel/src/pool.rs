//! The persistent work-stealing pool and its scheduling machinery.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use telemetry::{Counter, Histogram, HistogramSnapshot, Registry, Stopwatch};

/// How many chunks each executor should get on average. Oversubscribing
/// the chunk count lets stealing rebalance skewed per-chunk costs (e.g.
/// Gram-matrix row `i` costs `O(n − i)`).
const CHUNKS_PER_EXECUTOR: usize = 4;

/// Environment variable overriding the global pool's thread count.
pub const THREADS_ENV: &str = "GRAPHHD_THREADS";

/// The borrowed region closure with its lifetime erased so queue entries
/// can live in the pool's `'static` worker deques. Soundness is argued in
/// [`Pool::run_region`], the only place the erasure happens.
type ErasedTask = &'static (dyn Fn(Range<usize>) + Sync);

/// Mutable completion state of one parallel region.
struct RegionStatus {
    /// Chunks fully processed (executed, skipped after cancellation, or
    /// panicked). The region is complete when this reaches `total`.
    done: usize,
    /// Set on the first panic; chunks claimed afterwards are skipped.
    cancelled: bool,
    /// The first panic payload, re-thrown on the submitting thread.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One `run_region` call: a shared chunk closure plus completion tracking.
/// Heap-allocated behind an [`Arc`] so workers can outlive the *stack* of
/// the submitting call without touching freed memory — the erased `task`
/// reference itself is only ever dereferenced before a chunk's `done`
/// increment, and the submitter blocks until `done == total`.
struct Region {
    task: ErasedTask,
    total: usize,
    status: Mutex<RegionStatus>,
}

impl Region {
    /// Runs one claimed chunk: executes the closure (unless the region is
    /// already cancelled), records panics, and counts the chunk done. The
    /// last chunk notifies the pool's shared condvar, where both idle
    /// workers and sleeping submitters wait.
    fn execute(&self, range: Range<usize>, shared: &SharedState) {
        let cancelled = self.status.lock().expect("region lock").cancelled;
        let outcome = if cancelled {
            Ok(())
        } else {
            shared.metrics.tasks.inc();
            panic::catch_unwind(AssertUnwindSafe(|| {
                // Chaos hook: a worker crash mid-chunk, injected inside
                // the region's own catch_unwind so it surfaces through
                // the pool's one failure channel (panic actions unwind
                // in `inject` itself; error actions are promoted here).
                if faultpoint::inject("pool.region") {
                    panic!("faultpoint: injected error at `pool.region`");
                }
                (self.task)(range)
            }))
        };
        let is_last = {
            let mut status = self.status.lock().expect("region lock");
            if let Err(payload) = outcome {
                status.cancelled = true;
                if status.panic.is_none() {
                    status.panic = Some(payload);
                }
            }
            status.done += 1;
            status.done == self.total
        };
        // The status lock is released before taking the wake lock, so no
        // thread ever holds both in the execute direction (the submitter
        // takes them in the opposite order, which is safe precisely
        // because this path never nests them).
        if is_last {
            let _guard = shared.shutdown.lock().expect("shutdown lock");
            shared.wake.notify_all();
        }
    }

    /// Whether every chunk has completed.
    fn is_done(&self) -> bool {
        let status = self.status.lock().expect("region lock");
        status.done == self.total
    }
}

/// A queued chunk: which region it belongs to and which index range it
/// covers.
struct Entry {
    region: Arc<Region>,
    range: Range<usize>,
}

/// Scheduling metrics shared by the pool handle and its workers.
/// Recording is lock-free (one relaxed atomic op per update) and never
/// changes a scheduling decision — telemetry observes, it does not steer.
#[derive(Debug)]
struct PoolMetrics {
    /// Chunks executed, on any thread (workers, submitters, helpers).
    tasks: Counter,
    /// Chunks taken from another worker's deque (each stolen entry
    /// counts, including the ones re-queued locally by a chunked steal).
    steals: Counter,
    /// Parallel regions submitted (including serial fast-path regions).
    regions: Counter,
    /// Wall-clock nanoseconds per region, submission to quiescence.
    region_ns: Histogram,
    /// Per-worker execution counters, indexed like `queues`.
    workers: Vec<WorkerMetrics>,
}

/// One background worker's execution counters.
#[derive(Debug, Default)]
struct WorkerMetrics {
    /// Chunks this worker executed.
    tasks: Counter,
    /// Nanoseconds this worker spent executing chunks (not sleeping).
    busy_ns: Counter,
}

impl PoolMetrics {
    fn new(workers: usize) -> Self {
        Self {
            tasks: Counter::new(),
            steals: Counter::new(),
            regions: Counter::new(),
            region_ns: Histogram::new(),
            workers: (0..workers).map(|_| WorkerMetrics::default()).collect(),
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct SharedState {
    /// One deque per worker thread. Entries are pushed at region
    /// submission; owners pop from the front, thieves split off the back
    /// half ("chunked" stealing).
    queues: Vec<Mutex<VecDeque<Entry>>>,
    /// Entries currently sitting in queues (claimed entries excluded).
    /// Guards the worker sleep path against lost wakeups.
    queued: AtomicUsize,
    /// Shutdown flag; workers exit when it is set.
    shutdown: Mutex<bool>,
    /// Signalled when new entries arrive or the pool shuts down.
    wake: Condvar,
    /// Scheduling telemetry (tasks, steals, regions, per-worker load).
    metrics: PoolMetrics,
}

impl SharedState {
    /// Pops the next entry for worker `own`: its own queue first, then a
    /// chunked steal (back half of the fullest other queue; the first
    /// stolen entry is returned, the rest are re-queued locally).
    fn claim_worker(&self, own: usize) -> Option<Entry> {
        if let Some(entry) = self.queues[own].lock().expect("queue lock").pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(entry);
        }
        let victim = self.fullest_queue(Some(own))?;
        let mut stolen = {
            let mut queue = self.queues[victim].lock().expect("queue lock");
            let len = queue.len();
            if len == 0 {
                return None;
            }
            queue.split_off(len - len.div_ceil(2))
        };
        let first = stolen.pop_front().expect("split_off takes at least one");
        self.queued.fetch_sub(1, Ordering::SeqCst);
        self.metrics.steals.add(stolen.len() as u64 + 1);
        if !stolen.is_empty() {
            self.queues[own]
                .lock()
                .expect("queue lock")
                .extend(stolen.drain(..));
        }
        Some(first)
    }

    /// Pops one entry from the fullest queue — the claim path for threads
    /// that have no deque of their own (region submitters helping out).
    fn claim_any(&self) -> Option<Entry> {
        let victim = self.fullest_queue(None)?;
        let entry = self.queues[victim].lock().expect("queue lock").pop_front();
        if entry.is_some() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
        }
        entry
    }

    /// Index of the non-empty queue with the most entries, if any.
    fn fullest_queue(&self, excluding: Option<usize>) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (index, queue) in self.queues.iter().enumerate() {
            if excluding == Some(index) {
                continue;
            }
            let len = queue.lock().expect("queue lock").len();
            if len > 0 && best.is_none_or(|(_, best_len)| len > best_len) {
                best = Some((index, len));
            }
        }
        best.map(|(index, _)| index)
    }
}

/// Body of each persistent worker thread: claim and execute entries until
/// the queues drain, then sleep until new work or shutdown arrives.
fn worker_loop(shared: &SharedState, index: usize) {
    loop {
        if let Some(entry) = shared.claim_worker(index) {
            // The stopwatch captures nothing (no clock read) when
            // telemetry is disabled, so the idle path stays clean.
            let watch = Stopwatch::started();
            entry.region.execute(entry.range.clone(), shared);
            if let Some(worker) = shared.metrics.workers.get(index) {
                worker.tasks.inc();
                if let Some(ns) = watch.elapsed_ns() {
                    worker.busy_ns.add(ns);
                }
            }
            continue;
        }
        let mut shutdown = shared.shutdown.lock().expect("shutdown lock");
        loop {
            if *shutdown {
                return;
            }
            // `queued` is re-checked under the lock: submitters bump it
            // before notifying under the same lock, so a worker that saw
            // zero here is guaranteed to receive the notification.
            if shared.queued.load(Ordering::SeqCst) > 0 {
                break;
            }
            shutdown = shared.wake.wait(shutdown).expect("shutdown lock");
        }
    }
}

/// A persistent work-stealing thread pool.
///
/// `Pool::with_threads(n)` provides a parallelism degree of exactly `n`:
/// `n − 1` background workers plus the thread that submits a region (the
/// submitter always participates, which also makes *nested* regions —
/// a worker's chunk submitting its own region — deadlock-free). With
/// `n == 1` every operation runs serially inline on the caller.
///
/// All data-parallel operations ([`par_for`](Pool::par_for),
/// [`par_map`](Pool::par_map), [`par_fold_reduce`](Pool::par_fold_reduce),
/// [`par_chunks_mut`](Pool::par_chunks_mut)) are **bit-deterministic**:
/// given the documented contracts on the supplied closures, their results
/// are identical to the serial evaluation for every thread count.
///
/// # Examples
///
/// ```
/// use parallel::Pool;
///
/// let pool = Pool::with_threads(4);
/// let squares = pool.par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub struct Pool {
    shared: Arc<SharedState>,
    parallelism: usize,
    /// Rotates the starting queue of each submission so concurrent regions
    /// do not all land on worker 0.
    next_start: AtomicUsize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("parallelism", &self.parallelism)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Creates a pool with an exact parallelism degree of
    /// `threads.max(1)`: `threads − 1` persistent workers are spawned and
    /// the submitting thread acts as the last executor. Deterministic
    /// thread counts are what make the `BENCH_*` scaling tables
    /// reproducible.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(SharedState {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            shutdown: Mutex::new(false),
            wake: Condvar::new(),
            metrics: PoolMetrics::new(workers),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("graphhd-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            parallelism: threads,
            next_start: AtomicUsize::new(0),
            handles,
        }
    }

    /// The process-wide shared pool. Sized by the `GRAPHHD_THREADS`
    /// environment variable when set to a positive integer, otherwise by
    /// [`std::thread::available_parallelism`]; the decision is made once,
    /// on first use.
    #[must_use]
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::with_threads(default_threads()))
    }

    /// The pool's parallelism degree (workers plus the submitting thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.parallelism
    }

    /// Splits `0..n` into contiguous chunks of at least `min_chunk`
    /// indices, executes `task` once per chunk across the pool, and
    /// returns when every chunk has run. The chunks partition `0..n`
    /// exactly; their relative order of *execution* is unspecified, so
    /// `task` must be safe to call concurrently on disjoint ranges.
    ///
    /// This is the primitive underneath every `par_*` operation.
    ///
    /// # Panics
    ///
    /// If a chunk panics, remaining chunks are skipped (already-running
    /// ones finish) and the first panic resumes on the calling thread
    /// after the region has fully quiesced.
    pub fn par_for_ranges<F>(&self, n: usize, min_chunk: usize, task: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.run_region(n, min_chunk, &task);
    }

    /// Monomorphization-free core of [`par_for_ranges`](Self::par_for_ranges).
    fn run_region(&self, n: usize, min_chunk: usize, task: &(dyn Fn(Range<usize>) + Sync)) {
        if n == 0 {
            return;
        }
        // The guard records the region's wall-clock into `region_ns` even
        // when a chunk panic unwinds out of this function.
        self.shared.metrics.regions.inc();
        let _region_span = self.shared.metrics.region_ns.start_span();
        let min_chunk = min_chunk.max(1);
        let workers = self.shared.queues.len();
        let chunk = n
            .div_ceil(self.parallelism * CHUNKS_PER_EXECUTOR)
            .max(min_chunk);
        let chunk_count = n.div_ceil(chunk);
        if workers == 0 || chunk_count <= 1 {
            // Serial fast path — also the `threads == 1` definition of the
            // "serial reference" every parallel result must reproduce.
            // The whole region is one inline chunk; count it so
            // `pool_tasks` stays meaningful on single-thread pools.
            self.shared.metrics.tasks.inc();
            task(0..n);
            return;
        }

        // SAFETY: `task` borrows the caller's stack, and the erased
        // reference is dereferenced only inside `Region::execute`, strictly
        // before that chunk's `done` increment. This function does not
        // return (or unwind) until `done == total`, i.e. until after the
        // last dereference, so the reference never outlives the borrow.
        // Everything a worker touches afterwards (status mutex, condvar)
        // lives in the `Arc<Region>` heap allocation it co-owns.
        let task: ErasedTask =
            unsafe { std::mem::transmute::<&(dyn Fn(Range<usize>) + Sync), ErasedTask>(task) };
        let region = Arc::new(Region {
            task,
            total: chunk_count,
            status: Mutex::new(RegionStatus {
                done: 0,
                cancelled: false,
                panic: None,
            }),
        });

        // Publish the entry count *before* any entry becomes claimable:
        // `queued` must stay a conservative overestimate, because a worker
        // that claims a freshly pushed entry decrements it immediately and
        // a late increment would wrap the counter below zero.
        self.shared.queued.fetch_add(chunk_count, Ordering::SeqCst);
        // Deal contiguous blocks of chunks to the worker deques (stealing
        // rebalances skewed costs), rotating the first queue per region.
        let start = self.next_start.fetch_add(1, Ordering::Relaxed);
        for worker in 0..workers {
            let lo = chunk_count * worker / workers;
            let hi = chunk_count * (worker + 1) / workers;
            if lo == hi {
                continue;
            }
            let queue = &self.shared.queues[(start + worker) % workers];
            let mut queue = queue.lock().expect("queue lock");
            for index in lo..hi {
                let begin = index * chunk;
                let end = usize::min(begin + chunk, n);
                queue.push_back(Entry {
                    region: Arc::clone(&region),
                    range: begin..end,
                });
            }
        }
        {
            let _guard = self.shared.shutdown.lock().expect("shutdown lock");
            self.shared.wake.notify_all();
        }

        // Participate until the region completes: the submitter claims and
        // executes queued entries (of any region — helping foreign regions
        // is what keeps nested submissions from worker threads live), and
        // sleeps on the shared condvar when nothing is claimable. Both the
        // region's last completion and any new enqueue (e.g. a nested
        // region submitted by a worker mid-chunk) notify that condvar, so
        // a sleeping submitter always wakes to help or to finish.
        loop {
            if region.is_done() {
                break;
            }
            if let Some(entry) = self.shared.claim_any() {
                entry.region.execute(entry.range.clone(), &self.shared);
                continue;
            }
            let guard = self.shared.shutdown.lock().expect("shutdown lock");
            // Re-check both wake conditions under the lock: every notifier
            // makes one of them true before notifying under this lock, so
            // the wakeup cannot be lost.
            if self.shared.queued.load(Ordering::SeqCst) == 0 && !region.is_done() {
                drop(self.shared.wake.wait(guard).expect("shutdown lock"));
            }
        }
        let payload = region.status.lock().expect("region lock").panic.take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// A snapshot of the pool's scheduling telemetry: chunks executed,
    /// chunks stolen, regions run with their wall-clock distribution,
    /// and per-worker utilization. Counters are cumulative since pool
    /// creation; take two snapshots to measure an interval.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let metrics = &self.shared.metrics;
        PoolStats {
            threads: self.parallelism,
            tasks: metrics.tasks.get(),
            steals: metrics.steals.get(),
            regions: metrics.regions.get(),
            region_ns: metrics.region_ns.snapshot(),
            workers: metrics
                .workers
                .iter()
                .map(|w| WorkerStats {
                    tasks: w.tasks.get(),
                    busy_ns: w.busy_ns.get(),
                })
                .collect(),
        }
    }

    /// Registers the pool's aggregate metrics (`pool_tasks`,
    /// `pool_steals`, `pool_regions`, `pool_region_ns`) into `registry`
    /// for Prometheus/JSON rendering. Per-worker detail stays on
    /// [`stats`](Self::stats).
    pub fn register_metrics(&self, registry: &Registry) {
        let metrics = &self.shared.metrics;
        registry.register_counter(
            "pool_tasks",
            "Chunks executed across all threads",
            &metrics.tasks,
        );
        registry.register_counter(
            "pool_steals",
            "Chunks stolen from another worker's queue",
            &metrics.steals,
        );
        registry.register_counter("pool_regions", "Parallel regions run", &metrics.regions);
        registry.register_histogram(
            "pool_region_ns",
            "Region wall-clock, submission to quiescence",
            &metrics.region_ns,
        );
    }
}

/// A point-in-time reading of a pool's scheduling telemetry (see
/// [`Pool::stats`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PoolStats {
    /// The pool's parallelism degree (workers + submitter).
    pub threads: usize,
    /// Chunks executed, on any thread.
    pub tasks: u64,
    /// Chunks taken from another worker's deque.
    pub steals: u64,
    /// Parallel regions run (serial fast-path regions included).
    pub regions: u64,
    /// Distribution of region wall-clock nanoseconds (empty when
    /// telemetry is disabled).
    pub region_ns: HistogramSnapshot,
    /// Per background worker: chunks executed and busy nanoseconds.
    pub workers: Vec<WorkerStats>,
}

/// One background worker's share of the pool's work (see
/// [`Pool::stats`]).
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct WorkerStats {
    /// Chunks this worker executed.
    pub tasks: u64,
    /// Nanoseconds spent executing chunks (0 when telemetry is
    /// disabled — busy time needs clock reads).
    pub busy_ns: u64,
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut shutdown = self.shared.shutdown.lock().expect("shutdown lock");
            *shutdown = true;
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Thread count the global pool is created with: `GRAPHHD_THREADS` when it
/// parses as a positive integer, otherwise the machine's available
/// parallelism (falling back to 1 when that is unavailable).
#[must_use]
pub fn default_threads() -> usize {
    threads_from(std::env::var(THREADS_ENV).ok().as_deref())
}

/// Pure helper behind [`default_threads`], split out so the environment
/// parsing is unit-testable without mutating process state.
fn threads_from(value: Option<&str>) -> usize {
    value
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Which pool a component should use: the process-wide global pool (the
/// default) or an explicitly owned one (deterministic benchmarking, tests
/// pinning a thread count).
#[derive(Clone, Debug, Default)]
pub enum PoolHandle {
    /// Resolve to [`Pool::global`] at use time.
    #[default]
    Global,
    /// A shared explicit pool.
    Owned(Arc<Pool>),
}

impl PoolHandle {
    /// The pool this handle resolves to.
    #[must_use]
    pub fn get(&self) -> &Pool {
        match self {
            PoolHandle::Global => Pool::global(),
            PoolHandle::Owned(pool) => pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::with_threads(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn serial_pool_spawns_no_workers() {
        let pool = Pool::with_threads(1);
        assert!(pool.handles.is_empty());
    }

    #[test]
    fn ranges_partition_exactly() {
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::with_threads(threads);
            for n in [0usize, 1, 63, 64, 1000] {
                let seen = AtomicU64::new(0);
                let count = AtomicUsize::new(0);
                pool.par_for_ranges(n, 1, |range| {
                    count.fetch_add(range.len(), Ordering::SeqCst);
                    for i in range {
                        seen.fetch_add(i as u64, Ordering::SeqCst);
                    }
                });
                assert_eq!(count.load(Ordering::SeqCst), n, "n={n} t={threads}");
                let expected: u64 = (0..n as u64).sum();
                assert_eq!(seen.load(Ordering::SeqCst), expected);
            }
        }
    }

    #[test]
    fn min_chunk_is_respected() {
        let pool = Pool::with_threads(4);
        let calls = AtomicUsize::new(0);
        pool.par_for_ranges(100, 40, |range| {
            assert!(range.len() >= 40 || range.end == 100);
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert!(calls.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let pool = Pool::with_threads(3);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_for_ranges(64, 1, |range| {
                if range.contains(&17) {
                    panic!("chunk failure");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert_eq!(message, "chunk failure");
        // The pool stays usable after a panicked region.
        let count = AtomicUsize::new(0);
        pool.par_for_ranges(32, 1, |range| {
            count.fetch_add(range.len(), Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn nested_regions_complete() {
        let pool = Pool::with_threads(2);
        let total = AtomicUsize::new(0);
        pool.par_for_ranges(8, 1, |outer| {
            for _ in outer {
                pool.par_for_ranges(8, 1, |inner| {
                    total.fetch_add(inner.len(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn concurrent_submissions_from_many_threads() {
        let pool = Pool::with_threads(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        pool.par_for_ranges(100, 1, |range| {
                            total.fetch_add(range.len(), Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 8 * 100);
    }

    #[test]
    fn env_parsing_rules() {
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 2 ")), 2);
        let auto = threads_from(None);
        assert!(auto >= 1);
        assert_eq!(threads_from(Some("0")), auto);
        assert_eq!(threads_from(Some("not-a-number")), auto);
    }

    #[test]
    fn pool_handle_resolves() {
        let owned = PoolHandle::Owned(Arc::new(Pool::with_threads(2)));
        assert_eq!(owned.get().threads(), 2);
        assert_eq!(
            PoolHandle::default().get().threads(),
            Pool::global().threads()
        );
    }

    #[test]
    fn global_pool_is_a_singleton() {
        assert!(std::ptr::eq(Pool::global(), Pool::global()));
    }

    #[test]
    fn stats_count_regions_and_tasks() {
        let pool = Pool::with_threads(4);
        pool.par_for_ranges(1_000, 1, |_range| {});
        pool.par_for_ranges(1_000, 1, |_range| {});
        let stats = pool.stats();
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.regions, 2);
        assert!(stats.tasks >= 2, "at least one chunk per region");
        assert_eq!(stats.workers.len(), 3, "workers = threads - 1");
        let worker_tasks: u64 = stats.workers.iter().map(|w| w.tasks).sum();
        assert!(
            worker_tasks <= stats.tasks,
            "submitter-executed chunks are counted in the total only"
        );
        if telemetry::enabled() {
            assert_eq!(stats.region_ns.count, 2);
        }
    }

    #[test]
    fn serial_fast_path_counts_as_a_region() {
        let pool = Pool::with_threads(1);
        pool.par_for_ranges(10, 1, |_range| {});
        let stats = pool.stats();
        assert_eq!(stats.regions, 1);
        assert_eq!(stats.steals, 0, "nothing to steal with no workers");
    }

    #[test]
    fn register_metrics_renders() {
        let pool = Pool::with_threads(2);
        pool.par_for_ranges(100, 1, |_range| {});
        let registry = Registry::new();
        pool.register_metrics(&registry);
        let text = registry.render_prometheus();
        telemetry::validate_exposition(&text).expect("well-formed exposition");
        assert!(text.contains("pool_regions 1"));
    }
}
