//! Data-parallel operations built on [`Pool::par_for_ranges`].
//!
//! Every operation here carries the same guarantee: for closures meeting
//! the documented contract, the result is **bit-identical to the serial
//! evaluation** at every thread count. The implementations keep that
//! guarantee structurally — outputs are keyed by index or chunk start and
//! re-assembled in input order, never in completion order.

use crate::pool::Pool;
use std::ops::Range;
use std::sync::Mutex;

/// Out-of-order chunk results, keyed by the chunk's starting index so the
/// caller can restore input order.
type Pieces<S> = Mutex<Vec<(usize, S)>>;

fn into_ordered<S>(pieces: Pieces<S>) -> Vec<S> {
    let mut pieces = pieces.into_inner().expect("piece lock");
    pieces.sort_unstable_by_key(|&(start, _)| start);
    pieces.into_iter().map(|(_, piece)| piece).collect()
}

impl Pool {
    /// Calls `f(i)` for every `i in 0..n`, in parallel.
    ///
    /// `f` must tolerate concurrent invocation on distinct indices; each
    /// index is visited exactly once.
    pub fn par_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.par_for_ranges(n, 1, |range| {
            for index in range {
                f(index);
            }
        });
    }

    /// Maps `f` over `items`, returning results in input order — the
    /// parallel equivalent of `items.iter().map(f).collect()`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_chunked(items, 1, f)
    }

    /// [`par_map`](Self::par_map) with a minimum chunk size, for maps whose
    /// per-item cost is too small to justify per-item scheduling.
    pub fn par_map_chunked<T, R, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let pieces: Pieces<Vec<R>> = Mutex::new(Vec::new());
        self.par_for_ranges(items.len(), min_chunk, |range: Range<usize>| {
            let mapped: Vec<R> = items[range.clone()].iter().map(&f).collect();
            pieces
                .lock()
                .expect("piece lock")
                .push((range.start, mapped));
        });
        let mut result = Vec::with_capacity(items.len());
        for mut piece in into_ordered(pieces) {
            result.append(&mut piece);
        }
        result
    }

    /// Folds `items` into per-chunk states in parallel, then reduces the
    /// chunk states **in chunk order** on the calling thread.
    ///
    /// Contract for bit-identity with the serial fold at every thread
    /// count (and every chunking): `reduce(a, b)` must equal folding the
    /// items behind `b` into `a` — i.e. `reduce` is the fold's
    /// homomorphism, the usual fold/reduce pairing (integer accumulator
    /// merges, sums, histogram additions all qualify). `fold` receives the
    /// item's index in `items`, so zipped side-tables (e.g. labels) need
    /// no interleaving.
    ///
    /// Returns `identity()` for empty input.
    pub fn par_fold_reduce<T, S, I, F, M>(
        &self,
        items: &[T],
        min_chunk: usize,
        identity: I,
        fold: F,
        reduce: M,
    ) -> S
    where
        T: Sync,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(S, usize, &T) -> S + Sync,
        M: Fn(S, S) -> S,
    {
        if items.is_empty() {
            return identity();
        }
        let pieces: Pieces<S> = Mutex::new(Vec::new());
        self.par_for_ranges(items.len(), min_chunk, |range: Range<usize>| {
            let mut state = identity();
            for index in range.clone() {
                state = fold(state, index, &items[index]);
            }
            pieces
                .lock()
                .expect("piece lock")
                .push((range.start, state));
        });
        let mut states = into_ordered(pieces).into_iter();
        let first = states.next().expect("non-empty input yields a chunk");
        states.fold(first, reduce)
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// last may be shorter) and calls `f(chunk_index, chunk)` for each, in
    /// parallel — the safe way to fill disjoint slices of one output
    /// buffer (e.g. the rows of a Gram matrix) from many threads.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        // Each chunk's `&mut` is parked in a Mutex slot and taken exactly
        // once by whichever thread claims that chunk — disjointness is
        // enforced by `take`, not by pointer arithmetic.
        let slots: Vec<Mutex<Option<&mut [T]>>> = data
            .chunks_mut(chunk_len)
            .map(|chunk| Mutex::new(Some(chunk)))
            .collect();
        self.par_for_ranges(slots.len(), 1, |range| {
            for index in range {
                let chunk = slots[index]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each chunk is claimed exactly once");
                f(index, chunk);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index_once() {
        let pool = Pool::with_threads(3);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.par_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1usize, 2, 7] {
            let pool = Pool::with_threads(threads);
            let items: Vec<u64> = (0..1000).collect();
            let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
            assert_eq!(
                pool.par_map(&items, |&x| x.wrapping_mul(31) ^ 7),
                expected,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn par_map_chunked_matches_par_map() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..500).collect();
        assert_eq!(
            pool.par_map_chunked(&items, 64, |&x| x + 1),
            pool.par_map(&items, |&x| x + 1)
        );
    }

    #[test]
    fn par_map_empty_input() {
        let pool = Pool::with_threads(2);
        let out: Vec<u8> = pool.par_map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_fold_reduce_empty_is_identity() {
        let pool = Pool::with_threads(2);
        let sum = pool.par_fold_reduce(
            &[] as &[u64],
            1,
            || 42u64,
            |s, _, &x| s.wrapping_add(x),
            |a, b| a.wrapping_add(b),
        );
        assert_eq!(sum, 42);
    }

    #[test]
    fn par_fold_reduce_sees_correct_indices() {
        let pool = Pool::with_threads(4);
        let items: Vec<u64> = (0..777).map(|i| i * 3).collect();
        // Fold checks each item sits at its own index; result is the count.
        let count = pool.par_fold_reduce(
            &items,
            1,
            || 0usize,
            |s, index, &item| {
                assert_eq!(item, index as u64 * 3);
                s + 1
            },
            |a, b| a + b,
        );
        assert_eq!(count, items.len());
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        for threads in [1usize, 2, 5] {
            let pool = Pool::with_threads(threads);
            let mut data = vec![0usize; 103];
            pool.par_chunks_mut(&mut data, 10, |chunk_index, chunk| {
                for (offset, cell) in chunk.iter_mut().enumerate() {
                    *cell = chunk_index * 10 + offset;
                }
            });
            let expected: Vec<usize> = (0..103).collect();
            assert_eq!(data, expected, "threads {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_empty_data() {
        let pool = Pool::with_threads(2);
        let mut data: Vec<u8> = Vec::new();
        pool.par_chunks_mut(&mut data, 4, |_, _| panic!("no chunks expected"));
    }
}
