//! Determinism under concurrency: every `par_*` operation must reproduce
//! the serial result bit-for-bit for every thread count — the property the
//! whole pipeline's "parallel paths are bit-identical" guarantee rests on.

use parallel::Pool;
use proptest::prelude::*;

/// The thread counts the issue calls out: serial, small, odd, and more
/// threads than the machine has cores.
const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Slice lengths crossing the interesting boundaries: empty, singleton,
/// chunk-boundary straddlers, and large enough for multi-chunk stealing.
const LENGTHS: [usize; 5] = [0, 1, 63, 64, 1000];

fn pools() -> Vec<Pool> {
    THREAD_COUNTS
        .iter()
        .map(|&t| Pool::with_threads(t))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_fold_reduce_equals_serial_fold(data in prop::collection::vec(any::<u64>(), 1000..1001)) {
        let pools = pools();
        for &len in &LENGTHS {
            let slice = &data[..len];
            let serial = slice.iter().fold(0u64, |sum, &x| sum.wrapping_add(x));
            for pool in &pools {
                let parallel = pool.par_fold_reduce(
                    slice,
                    1,
                    || 0u64,
                    |sum, _, &x| sum.wrapping_add(x),
                    |a, b| a.wrapping_add(b),
                );
                prop_assert_eq!(parallel, serial, "len {} threads {}", len, pool.threads());
            }
        }
    }

    #[test]
    fn par_fold_reduce_non_commutative_merge(data in prop::collection::vec(0u64..512, 1000..1001)) {
        // Concatenation is associative but NOT commutative: this fails if
        // chunk states are ever reduced in completion order instead of
        // chunk order.
        let pools = pools();
        for &len in &LENGTHS {
            let slice = &data[..len];
            let serial: Vec<u64> = slice.to_vec();
            for pool in &pools {
                let parallel = pool.par_fold_reduce(
                    slice,
                    1,
                    Vec::new,
                    |mut acc: Vec<u64>, _, &x| {
                        acc.push(x);
                        acc
                    },
                    |mut a, mut b| {
                        a.append(&mut b);
                        a
                    },
                );
                prop_assert_eq!(&parallel, &serial, "len {} threads {}", len, pool.threads());
            }
        }
    }

    #[test]
    fn par_map_equals_serial_map(data in prop::collection::vec(any::<u64>(), 1000..1001), salt in any::<u64>()) {
        let pools = pools();
        let f = |&x: &u64| x.rotate_left(7) ^ salt;
        for &len in &LENGTHS {
            let slice = &data[..len];
            let serial: Vec<u64> = slice.iter().map(f).collect();
            for pool in &pools {
                prop_assert_eq!(&pool.par_map(slice, f), &serial, "len {} threads {}", len, pool.threads());
                prop_assert_eq!(&pool.par_map_chunked(slice, 37, f), &serial, "chunked len {}", len);
            }
        }
    }

    #[test]
    fn par_chunks_mut_equals_serial_fill(data in prop::collection::vec(any::<u64>(), 1000..1001), chunk in 1usize..130) {
        let pools = pools();
        for &len in &LENGTHS {
            let mut serial = data[..len].to_vec();
            for (index, cell) in serial.iter_mut().enumerate() {
                *cell = cell.wrapping_mul(index as u64 + 1);
            }
            for pool in &pools {
                let mut parallel = data[..len].to_vec();
                pool.par_chunks_mut(&mut parallel, chunk, |chunk_index, slice| {
                    for (offset, cell) in slice.iter_mut().enumerate() {
                        let index = chunk_index * chunk + offset;
                        *cell = cell.wrapping_mul(index as u64 + 1);
                    }
                });
                prop_assert_eq!(&parallel, &serial, "len {} chunk {} threads {}", len, chunk, pool.threads());
            }
        }
    }
}
