//! Model checking of the pool's concurrency protocols (and of the
//! checker itself).
//!
//! Each test models one protocol from `pool.rs` in miniature against
//! `parallel::model` primitives and exhaustively explores every
//! interleaving within the preemption bound. The first two tests
//! validate the checker: they hand it deliberately broken programs and
//! require that it finds the bug.

use parallel::model::{self, AtomicUsize, Condvar, Config, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

fn exhaustive() -> Config {
    Config {
        max_schedules: 2_000_000,
        max_steps: 20_000,
        preemption_bound: 3,
    }
}

/// A checker that cannot find a two-thread read-modify-write race would
/// vacuously pass every protocol test below.
#[test]
fn checker_finds_lost_update_race() {
    let report = model::check(exhaustive(), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
        // BROKEN on purpose: load + store instead of fetch_add.
        let ta = model::spawn(move || {
            let v = a.load();
            a.store(v + 1);
        });
        let tb = model::spawn(move || {
            let v = b.load();
            b.store(v + 1);
        });
        ta.join();
        tb.join();
        assert_eq!(counter.load(), 2, "an increment was lost");
    });
    let failure = report.failure.expect("the race must be found");
    assert!(
        failure.message.contains("an increment was lost"),
        "unexpected failure: {failure:?}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "failing schedule is replayable"
    );
}

/// The classic lost wakeup: check the condition, drop the lock, then
/// decide to wait. The notify can land in the window and the waiter
/// sleeps forever. The checker must surface this as a deadlock.
#[test]
fn checker_finds_lost_wakeup_deadlock() {
    let report = model::check(exhaustive(), || {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let consumer_shared = Arc::clone(&shared);
        let consumer = model::spawn(move || {
            let (flag, ready) = &*consumer_shared;
            // BROKEN on purpose: the condition is checked in one
            // critical section and the wait happens in another.
            let set = *flag.lock();
            if !set {
                let guard = flag.lock();
                drop(ready.wait(guard));
            }
        });
        let (flag, ready) = &*shared;
        let mut guard = flag.lock();
        *guard = true;
        drop(guard);
        ready.notify_one();
        consumer.join();
    });
    let failure = report.failure.expect("the lost wakeup must be found");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure:?}"
    );
}

/// The fixed version of the same program — condition re-checked under
/// the lock that the notifier holds while signalling — must be clean
/// across the whole schedule space.
#[test]
fn correct_wait_protocol_is_clean() {
    let report = model::check(exhaustive(), || {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let consumer_shared = Arc::clone(&shared);
        let consumer = model::spawn(move || {
            let (flag, ready) = &*consumer_shared;
            let mut guard = flag.lock();
            while !*guard {
                guard = ready.wait(guard);
            }
        });
        let (flag, ready) = &*shared;
        let mut guard = flag.lock();
        *guard = true;
        ready.notify_one();
        drop(guard);
        consumer.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// The deque steal protocol of `SharedState::claim_worker`: owners pop
/// the front of their own deque, thieves split off the back half of the
/// victim's deque, claim the first stolen entry and re-queue the rest
/// locally. Under every interleaving, each entry must be claimed
/// exactly once and none may be lost.
#[test]
fn deque_steal_claims_every_entry_exactly_once() {
    let report = model::check(exhaustive(), || {
        // Three entries, encoded as bits: claims accumulate in one
        // atomic, so `claimed == 0b111` iff each entry was claimed
        // exactly once (any double claim or loss breaks the sum).
        let queues = Arc::new([
            Mutex::new(VecDeque::from([0usize, 1, 2])),
            Mutex::new(VecDeque::new()),
        ]);
        let claimed = Arc::new(AtomicUsize::new(0));

        let worker = |own: usize| {
            let queues = Arc::clone(&queues);
            let claimed = Arc::clone(&claimed);
            move || loop {
                // Own queue first (pop_front), like claim_worker.
                if let Some(v) = queues[own].lock().pop_front() {
                    claimed.fetch_add(1 << v);
                    continue;
                }
                // Chunked steal: back half of the other queue, first
                // stolen entry claimed, remainder re-queued locally.
                let mut stolen = {
                    let mut victim = queues[1 - own].lock();
                    let len = victim.len();
                    if len == 0 {
                        return;
                    }
                    victim.split_off(len - len.div_ceil(2))
                };
                if let Some(first) = stolen.pop_front() {
                    claimed.fetch_add(1 << first);
                }
                if !stolen.is_empty() {
                    queues[own].lock().extend(stolen.drain(..));
                }
            }
        };
        let a = model::spawn(worker(0));
        let b = model::spawn(worker(1));
        a.join();
        b.join();
        assert_eq!(claimed.load(), 0b111, "an entry was lost or double-claimed");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// The worker sleep/wake protocol of `worker_loop` + `submit_region`:
/// the submitter publishes `queued` before making work claimable and
/// notifies under the shutdown lock; sleepers (worker waiting for work,
/// submitter waiting for region completion) re-check their condition
/// under that same lock; claimants notify completion under it. Shutdown
/// happens only after the region is done, like `Drop for Pool` running
/// after `submit_region` returned. Under every interleaving the entry
/// is claimed exactly once (by the worker or by the helping submitter)
/// and both threads terminate — a lost wakeup on either side would
/// surface as a deadlock.
#[test]
fn pool_sleep_protocol_never_loses_a_wakeup() {
    let report = model::check(exhaustive(), || {
        struct Shared {
            queue: Mutex<VecDeque<usize>>,
            queued: AtomicUsize,
            shutdown: Mutex<bool>,
            wake: Condvar,
            claimed: AtomicUsize,
        }
        impl Shared {
            /// Claim one entry and announce the completed work under
            /// the shutdown lock (as `Region::execute` notifies when a
            /// region completes).
            fn claim(&self) -> bool {
                let popped = self.queue.lock().pop_front();
                match popped {
                    Some(v) => {
                        self.queued.fetch_sub(1);
                        self.claimed.fetch_add(1 << v);
                        let _guard = self.shutdown.lock();
                        self.wake.notify_all();
                        true
                    }
                    None => false,
                }
            }
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            shutdown: Mutex::new(false),
            wake: Condvar::new(),
            claimed: AtomicUsize::new(0),
        });

        let worker_shared = Arc::clone(&shared);
        let worker = model::spawn(move || loop {
            if worker_shared.claim() {
                continue;
            }
            {
                let mut shutdown = worker_shared.shutdown.lock();
                loop {
                    if *shutdown {
                        return;
                    }
                    // Re-check under the lock: submitters bump `queued`
                    // before notifying under this same lock (mirrors
                    // the comment in `worker_loop`).
                    if worker_shared.queued.load() > 0 {
                        break;
                    }
                    shutdown = worker_shared.wake.wait(shutdown);
                }
            }
            // `queued` is published before the entry is claimable, so a
            // short spin here is part of the real protocol; yield so
            // the fair scheduler lets the submitter finish publishing.
            model::yield_now();
        });

        // Submit one entry the way `submit_region` does: publish the
        // count, make the entry claimable, notify under the lock.
        shared.queued.fetch_add(1);
        shared.queue.lock().push_back(0);
        {
            let _guard = shared.shutdown.lock();
            shared.wake.notify_all();
        }
        // Participate until the region completes, like the submitter's
        // help loop: claim what is claimable, otherwise sleep until
        // completion or new work is announced.
        loop {
            if shared.claimed.load() == 0b1 {
                break;
            }
            if shared.claim() {
                continue;
            }
            {
                let guard = shared.shutdown.lock();
                if shared.queued.load() == 0 && shared.claimed.load() != 0b1 {
                    drop(shared.wake.wait(guard));
                }
            }
            // Same spin window as the worker: the entry may be mid-claim
            // (popped, counts not yet settled) — yield instead of
            // re-polling so the claimant can finish.
            model::yield_now();
        }
        // Region done: shut down the way `Drop for Pool` does.
        {
            let mut shutdown = shared.shutdown.lock();
            *shutdown = true;
            shared.wake.notify_all();
        }
        worker.join();
        assert_eq!(shared.claimed.load(), 0b1, "the entry was claimed twice");
        assert_eq!(shared.queued.load(), 0, "queued count out of balance");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}
