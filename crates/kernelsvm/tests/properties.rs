//! Property-based tests for the SMO solver: KKT-adjacent invariants that
//! must hold for any training outcome on any PSD kernel.

use kernelsvm::{BinarySvm, MulticlassSvm, SvmConfig, SvmError};
use prng::{Normal, WordRng, Xoshiro256PlusPlus};
use proptest::prelude::*;

/// Random 2-D points with labels from a noisy linear rule.
fn dataset(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<i8>) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut normal = Normal::standard();
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x = normal.sample(&mut rng);
        let y = normal.sample(&mut rng);
        points.push(vec![x, y]);
        let noisy = rng.bernoulli(0.1);
        let side = x + 0.5 * y > 0.0;
        labels.push(if side != noisy { 1 } else { -1 });
    }
    // Ensure both classes exist.
    labels[0] = 1;
    labels[1] = -1;
    (points, labels)
}

fn rbf(points: &[Vec<f64>]) -> impl Fn(usize, usize) -> f64 + '_ {
    move |i, j| {
        let d2: f64 = points[i]
            .iter()
            .zip(&points[j])
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        (-0.7 * d2).exp()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dual_feasibility_holds(seed in any::<u64>(), c_exp in -2i32..3) {
        let c = 10f64.powi(c_exp);
        let (points, labels) = dataset(seed, 24);
        let svm = BinarySvm::train(&labels, rbf(&points), &SvmConfig::with_c(c))
            .expect("valid inputs");
        // 0 <= alpha <= C and sum(alpha * y) == 0.
        let mut signed_sum = 0.0;
        for (&s, &ay) in svm.support().iter().zip(svm.alpha_y()) {
            let alpha = ay * f64::from(labels[s]);
            prop_assert!(alpha > 0.0, "support vectors carry positive alpha");
            prop_assert!(alpha <= c + 1e-9, "alpha {} exceeds C {}", alpha, c);
            signed_sum += ay;
        }
        prop_assert!(signed_sum.abs() < 1e-6, "sum alpha*y = {}", signed_sum);
    }

    #[test]
    fn training_is_deterministic(seed in any::<u64>()) {
        let (points, labels) = dataset(seed, 20);
        let a = BinarySvm::train(&labels, rbf(&points), &SvmConfig::default())
            .expect("valid inputs");
        let b = BinarySvm::train(&labels, rbf(&points), &SvmConfig::default())
            .expect("valid inputs");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn decision_is_linear_in_kernel_row(seed in any::<u64>()) {
        // f(x) = sum(alpha_y * k) + b: doubling every kernel value doubles
        // f - b. A cheap algebraic consistency check of `decision`.
        let (points, labels) = dataset(seed, 16);
        let svm = BinarySvm::train(&labels, rbf(&points), &SvmConfig::default())
            .expect("valid inputs");
        let base: f64 = svm.decision(|_| 1.0);
        let doubled: f64 = svm.decision(|_| 2.0);
        let sum_ay: f64 = svm.alpha_y().iter().sum();
        prop_assert!((base - svm.bias() - sum_ay).abs() < 1e-9);
        prop_assert!((doubled - svm.bias() - 2.0 * sum_ay).abs() < 1e-9);
    }

    #[test]
    fn multiclass_predictions_are_in_range(seed in any::<u64>(), k in 2usize..5) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let n = 10 * k;
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % k) as u32;
            let angle = 2.0 * std::f64::consts::PI * f64::from(class) / k as f64;
            points.push(vec![
                3.0 * angle.cos() + rng.next_f64(),
                3.0 * angle.sin() + rng.next_f64(),
            ]);
            labels.push(class);
        }
        let svm = MulticlassSvm::train(&labels, k, rbf(&points), &SvmConfig::with_c(10.0))
            .expect("valid inputs");
        prop_assert_eq!(svm.machine_count(), k * (k - 1) / 2);
        for q in 0..n {
            let predicted = svm.predict(|t| rbf(&points)(q, t));
            prop_assert!((predicted as usize) < k);
        }
    }

    #[test]
    fn degenerate_inputs_error_not_panic(c in prop_oneof![Just(f64::NAN), Just(0.0), Just(-3.0)]) {
        let labels = [1i8, -1];
        let out = BinarySvm::train(&labels, |_, _| 1.0, &SvmConfig::with_c(c));
        prop_assert_eq!(out.unwrap_err(), SvmError::InvalidConfig);
    }
}
