//! Kernel support vector machines on precomputed kernels.
//!
//! The paper's kernel baselines (1-WL, WL-OA) are, as in the TUDataset
//! reference pipeline, trained with a C-SVM over a precomputed Gram
//! matrix. This crate supplies that kernel machine from scratch:
//!
//! - [`BinarySvm`] — a two-class soft-margin SVM trained with sequential
//!   minimal optimization (SMO, Platt 1998-style working pair selection
//!   with an incrementally maintained error cache).
//! - [`MulticlassSvm`] — one-vs-one voting over all class pairs, the same
//!   scheme scikit-learn's `SVC` (and hence the reference evaluation)
//!   uses.
//!
//! Kernels are supplied as closures `(i, j) -> f64` over training-sample
//! indices, so any precomputed matrix or on-the-fly kernel plugs in
//! without this crate depending on a particular kernel implementation.
//!
//! # Examples
//!
//! Train on a linearly separable 1-D problem with the linear kernel:
//!
//! ```
//! use kernelsvm::{BinarySvm, SvmConfig};
//!
//! let xs = [-2.0, -1.5, -1.0, 1.0, 1.5, 2.0];
//! let labels = [-1i8, -1, -1, 1, 1, 1];
//! let kernel = |i: usize, j: usize| xs[i] * xs[j] + 1.0;
//! let svm = BinarySvm::train(&labels, kernel, &SvmConfig::default())?;
//! // Classify x = 1.8 by evaluating the kernel against support vectors.
//! let decision = svm.decision(|s| xs[s] * 1.8 + 1.0);
//! assert!(decision > 0.0);
//! # Ok::<(), kernelsvm::SvmError>(())
//! ```

mod binary;
mod multiclass;

pub use binary::{BinarySvm, SvmConfig, SvmError};
pub use multiclass::MulticlassSvm;
