//! One-vs-one multiclass voting over binary SVMs.

use crate::{BinarySvm, SvmConfig, SvmError};

/// A multiclass kernel SVM: one [`BinarySvm`] per unordered class pair,
/// combined by majority voting (ties broken by summed decision margins) —
/// the scheme used by libsvm/scikit-learn `SVC` and therefore by the
/// TUDataset reference evaluation the paper follows.
///
/// # Examples
///
/// ```
/// use kernelsvm::{MulticlassSvm, SvmConfig};
///
/// // Three 1-D clusters at -2, 0, +2 with a linear kernel.
/// let xs = [-2.1, -1.9, -0.1, 0.1, 1.9, 2.1];
/// let labels = [0u32, 0, 1, 1, 2, 2];
/// let kernel = |i: usize, j: usize| xs[i] * xs[j] + 1.0;
/// let svm = MulticlassSvm::train(&labels, 3, kernel, &SvmConfig::default())?;
/// let pred = svm.predict(|t| xs[t] * 2.0 + 1.0);
/// assert_eq!(pred, 2);
/// # Ok::<(), kernelsvm::SvmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassSvm {
    num_classes: usize,
    machines: Vec<PairMachine>,
}

#[derive(Debug, Clone, PartialEq)]
struct PairMachine {
    /// Class predicted on positive decisions.
    positive: u32,
    /// Class predicted on negative decisions.
    negative: u32,
    /// Training-set indices (into the caller's index space) this pair
    /// machine was trained on; the binary SVM's support indices refer to
    /// positions in this vector.
    subset: Vec<usize>,
    svm: BinarySvm,
}

impl MulticlassSvm {
    /// Trains one binary machine per class pair that has samples of both
    /// classes. `labels[i]` must be `< num_classes`; `kernel(i, j)` is the
    /// kernel between training samples.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyTrainingSet`] for an empty training set,
    /// [`SvmError::InvalidLabel`] if a label is `>= num_classes`, or any
    /// binary training error.
    pub fn train<K>(
        labels: &[u32],
        num_classes: usize,
        kernel: K,
        config: &SvmConfig,
    ) -> Result<Self, SvmError>
    where
        K: Fn(usize, usize) -> f64,
    {
        if labels.is_empty() {
            return Err(SvmError::EmptyTrainingSet);
        }
        if let Some((index, _)) = labels
            .iter()
            .enumerate()
            .find(|(_, &l)| l as usize >= num_classes)
        {
            return Err(SvmError::InvalidLabel { index, value: 0 });
        }
        let mut machines = Vec::new();
        for a in 0..num_classes as u32 {
            for b in (a + 1)..num_classes as u32 {
                let subset: Vec<usize> = labels
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l == a || l == b)
                    .map(|(i, _)| i)
                    .collect();
                let pair_labels: Vec<i8> = subset
                    .iter()
                    .map(|&i| if labels[i] == a { 1 } else { -1 })
                    .collect();
                if !pair_labels.contains(&1) || !pair_labels.contains(&-1) {
                    // One of the classes is absent from this training
                    // split; skip the pair (votes from other pairs decide).
                    continue;
                }
                let svm =
                    BinarySvm::train(&pair_labels, |p, q| kernel(subset[p], subset[q]), config)?;
                machines.push(PairMachine {
                    positive: a,
                    negative: b,
                    subset,
                    svm,
                });
            }
        }
        Ok(Self {
            num_classes,
            machines,
        })
    }

    /// The number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of trained pair machines.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Predicts the class of a test sample given `kernel_to_train(t)` =
    /// k(test, training sample `t`) over the caller's training index
    /// space.
    pub fn predict<K: Fn(usize) -> f64>(&self, kernel_to_train: K) -> u32 {
        let mut votes = vec![0usize; self.num_classes];
        let mut margins = vec![0.0f64; self.num_classes];
        for machine in &self.machines {
            let decision = machine
                .svm
                .decision(|local| kernel_to_train(machine.subset[local]));
            let winner = if decision >= 0.0 {
                machine.positive
            } else {
                machine.negative
            };
            votes[winner as usize] += 1;
            margins[winner as usize] += decision.abs();
        }
        (0..self.num_classes as u32)
            .max_by(|&x, &y| {
                votes[x as usize].cmp(&votes[y as usize]).then(
                    margins[x as usize]
                        .partial_cmp(&margins[y as usize])
                        .unwrap_or(core::cmp::Ordering::Equal),
                )
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_points() -> (Vec<Vec<f64>>, Vec<u32>) {
        let centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 3.0)];
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (class, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..6 {
                let dx = 0.2 * f64::from(k % 3) - 0.2;
                let dy = 0.2 * f64::from(k / 3) - 0.1;
                points.push(vec![cx + dx, cy + dy]);
                labels.push(class as u32);
            }
        }
        (points, labels)
    }

    fn rbf(points: &[Vec<f64>]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |i, j| {
            let d2: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            (-0.5 * d2).exp()
        }
    }

    #[test]
    fn three_cluster_problem_is_solved() {
        let (points, labels) = cluster_points();
        let svm = MulticlassSvm::train(&labels, 3, rbf(&points), &SvmConfig::with_c(10.0)).unwrap();
        assert_eq!(svm.machine_count(), 3);
        // Training points classify correctly.
        for (i, &label) in labels.iter().enumerate() {
            let x = points[i].clone();
            let pred = svm.predict(|t| {
                let d2: f64 = points[t].iter().zip(&x).map(|(a, b)| (a - b).powi(2)).sum();
                (-0.5 * d2).exp()
            });
            assert_eq!(pred, label, "point {i}");
        }
    }

    #[test]
    fn two_class_case_reduces_to_single_machine() {
        let xs = [-1.0, -2.0, 1.0, 2.0];
        let labels = [0u32, 0, 1, 1];
        let kernel = |i: usize, j: usize| xs[i] * xs[j];
        let svm = MulticlassSvm::train(&labels, 2, kernel, &SvmConfig::default()).unwrap();
        assert_eq!(svm.machine_count(), 1);
        assert_eq!(svm.predict(|t| xs[t] * -1.5), 0);
        assert_eq!(svm.predict(|t| xs[t] * 1.5), 1);
    }

    #[test]
    fn missing_class_pairs_are_skipped() {
        // Class 2 declared but absent: pairs (0,2) and (1,2) are skipped.
        let xs = [-1.0, -2.0, 1.0, 2.0];
        let labels = [0u32, 0, 1, 1];
        let kernel = |i: usize, j: usize| xs[i] * xs[j];
        let svm = MulticlassSvm::train(&labels, 3, kernel, &SvmConfig::default()).unwrap();
        assert_eq!(svm.machine_count(), 1);
        let pred = svm.predict(|t| xs[t] * 1.5);
        assert_eq!(pred, 1);
    }

    #[test]
    fn rejects_out_of_range_labels() {
        let kernel = |_: usize, _: usize| 1.0;
        assert!(MulticlassSvm::train(&[0, 3], 2, kernel, &SvmConfig::default()).is_err());
        assert!(MulticlassSvm::train(&[], 2, kernel, &SvmConfig::default()).is_err());
    }
}
