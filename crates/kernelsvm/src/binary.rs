//! Two-class soft-margin SVM trained with SMO.

use prng::{WordRng, Xoshiro256PlusPlus};

/// Training hyperparameters for [`BinarySvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Soft-margin penalty C. The paper's grid is {1e−3, …, 1e3}.
    pub c: f64,
    /// KKT violation tolerance (Platt's tol; 1e−3 is customary).
    pub tolerance: f64,
    /// Hard cap on full sweeps over the training set.
    pub max_sweeps: usize,
    /// Number of consecutive change-free sweeps that declares convergence.
    pub convergence_sweeps: usize,
    /// Seed for the random second-choice heuristic fallback.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            c: 1.0,
            tolerance: 1e-3,
            max_sweeps: 200,
            convergence_sweeps: 2,
            seed: 0x5_EED,
        }
    }
}

impl SvmConfig {
    /// A default configuration with penalty `c`.
    #[must_use]
    pub fn with_c(c: f64) -> Self {
        Self {
            c,
            ..Self::default()
        }
    }
}

/// Errors produced by SVM training.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SvmError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// All training labels belonged to one class.
    SingleClass,
    /// A label other than +1/−1 was supplied.
    InvalidLabel {
        /// Index of the offending label.
        index: usize,
        /// The value found.
        value: i8,
    },
    /// C or the tolerance was non-positive or non-finite.
    InvalidConfig,
}

impl core::fmt::Display for SvmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SvmError::EmptyTrainingSet => write!(f, "cannot train an svm on zero samples"),
            SvmError::SingleClass => {
                write!(f, "binary svm training needs both classes present")
            }
            SvmError::InvalidLabel { index, value } => {
                write!(f, "label at index {index} must be +1 or -1, got {value}")
            }
            SvmError::InvalidConfig => {
                write!(f, "svm penalty and tolerance must be positive and finite")
            }
        }
    }
}

impl std::error::Error for SvmError {}

/// A trained two-class SVM over a precomputed kernel.
///
/// The decision function is `f(x) = Σ_s αₛ·yₛ·k(x, s) + b` over the
/// support vectors `s` (training-sample indices with `αₛ > 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySvm {
    support: Vec<usize>,
    alpha_y: Vec<f64>,
    bias: f64,
}

impl BinarySvm {
    /// Trains with SMO on `labels` (±1) and the training-set kernel
    /// `kernel(i, j)` for `i, j < labels.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError`] for empty or single-class training sets,
    /// non-±1 labels, or invalid hyperparameters.
    pub fn train<K>(labels: &[i8], kernel: K, config: &SvmConfig) -> Result<Self, SvmError>
    where
        K: Fn(usize, usize) -> f64,
    {
        let n = labels.len();
        if n == 0 {
            return Err(SvmError::EmptyTrainingSet);
        }
        if let Some((index, &value)) = labels.iter().enumerate().find(|(_, &l)| l != 1 && l != -1) {
            return Err(SvmError::InvalidLabel { index, value });
        }
        if !labels.contains(&1) || !labels.contains(&-1) {
            return Err(SvmError::SingleClass);
        }
        let config_valid = config.c > 0.0
            && config.c.is_finite()
            && config.tolerance > 0.0
            && config.tolerance.is_finite();
        if !config_valid {
            return Err(SvmError::InvalidConfig);
        }

        let y: Vec<f64> = labels.iter().map(|&l| f64::from(l)).collect();
        let c = config.c;
        let tol = config.tolerance;
        let mut alpha = vec![0.0f64; n];
        let mut bias = 0.0f64;
        // errors[i] = f(i) − y[i]; with all α = 0 and b = 0, f(i) = 0.
        let mut errors: Vec<f64> = y.iter().map(|&yi| -yi).collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(config.seed);

        let mut quiet_sweeps = 0usize;
        let mut sweeps = 0usize;
        while quiet_sweeps < config.convergence_sweeps && sweeps < config.max_sweeps {
            let mut changed = 0usize;
            for i in 0..n {
                let r = y[i] * errors[i];
                let violates = (r < -tol && alpha[i] < c) || (r > tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Second-choice heuristic: maximise |E_i − E_j| over
                // non-bound multipliers; fall back to a random partner.
                let mut j = usize::MAX;
                let mut best = -1.0f64;
                for (candidate, &a) in alpha.iter().enumerate() {
                    if candidate != i && a > 0.0 && a < c {
                        let gap = (errors[i] - errors[candidate]).abs();
                        if gap > best {
                            best = gap;
                            j = candidate;
                        }
                    }
                }
                if j == usize::MAX {
                    j = loop {
                        let candidate = rng.usize_below(n);
                        if candidate != i {
                            break candidate;
                        }
                    };
                }
                if Self::optimize_pair(i, j, &y, &kernel, c, &mut alpha, &mut bias, &mut errors) {
                    changed += 1;
                }
            }
            sweeps += 1;
            if changed == 0 {
                quiet_sweeps += 1;
            } else {
                quiet_sweeps = 0;
            }
        }

        let mut support = Vec::new();
        let mut alpha_y = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-12 {
                support.push(i);
                alpha_y.push(alpha[i] * y[i]);
            }
        }
        Ok(Self {
            support,
            alpha_y,
            bias,
        })
    }

    /// Jointly optimises the pair (αᵢ, αⱼ) analytically; returns whether a
    /// significant step was taken.
    #[allow(clippy::too_many_arguments)]
    fn optimize_pair<K>(
        i: usize,
        j: usize,
        y: &[f64],
        kernel: &K,
        c: f64,
        alpha: &mut [f64],
        bias: &mut f64,
        errors: &mut [f64],
    ) -> bool
    where
        K: Fn(usize, usize) -> f64,
    {
        if i == j {
            return false;
        }
        let (ai, aj) = (alpha[i], alpha[j]);
        let (low, high) = if (y[i] - y[j]).abs() > f64::EPSILON {
            ((aj - ai).max(0.0), (c + aj - ai).min(c))
        } else {
            ((ai + aj - c).max(0.0), (ai + aj).min(c))
        };
        if low >= high {
            return false;
        }
        let kii = kernel(i, i);
        let kjj = kernel(j, j);
        let kij = kernel(i, j);
        let eta = kii + kjj - 2.0 * kij;
        if eta <= 1e-12 {
            // Non-positive curvature: skip (Platt's objective-evaluation
            // branch buys little on PSD kernels).
            return false;
        }
        let mut aj_new = aj + y[j] * (errors[i] - errors[j]) / eta;
        aj_new = aj_new.clamp(low, high);
        if (aj_new - aj).abs() < 1e-8 * (aj_new + aj + 1e-8) {
            return false;
        }
        let ai_new = ai + y[i] * y[j] * (aj - aj_new);

        let b1 = *bias - errors[i] - y[i] * (ai_new - ai) * kii - y[j] * (aj_new - aj) * kij;
        let b2 = *bias - errors[j] - y[i] * (ai_new - ai) * kij - y[j] * (aj_new - aj) * kjj;
        let bias_new = if ai_new > 0.0 && ai_new < c {
            b1
        } else if aj_new > 0.0 && aj_new < c {
            b2
        } else {
            (b1 + b2) / 2.0
        };

        let delta_i = y[i] * (ai_new - ai);
        let delta_j = y[j] * (aj_new - aj);
        let delta_b = bias_new - *bias;
        for (k, error) in errors.iter_mut().enumerate() {
            *error += delta_i * kernel(i, k) + delta_j * kernel(j, k) + delta_b;
        }
        alpha[i] = ai_new;
        alpha[j] = aj_new;
        *bias = bias_new;
        true
    }

    /// The support-vector indices into the training set.
    #[must_use]
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// The coefficients αₛ·yₛ aligned with [`support`](Self::support).
    #[must_use]
    pub fn alpha_y(&self) -> &[f64] {
        &self.alpha_y
    }

    /// The bias term b.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Evaluates the decision function on a test sample given
    /// `kernel_to_train(s)` = k(test, training sample `s`) for every
    /// support index `s`.
    pub fn decision<K: Fn(usize) -> f64>(&self, kernel_to_train: K) -> f64 {
        self.support
            .iter()
            .zip(&self.alpha_y)
            .map(|(&s, &ay)| ay * kernel_to_train(s))
            .sum::<f64>()
            + self.bias
    }

    /// Classifies a test sample: +1 or −1 (0 decision maps to +1).
    pub fn predict<K: Fn(usize) -> f64>(&self, kernel_to_train: K) -> i8 {
        if self.decision(kernel_to_train) >= 0.0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rbf(points: &[Vec<f64>], gamma: f64) -> impl Fn(usize, usize) -> f64 + '_ {
        move |i, j| {
            let dist2: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            (-gamma * dist2).exp()
        }
    }

    fn rbf_to(points: &[Vec<f64>], x: &[f64], gamma: f64) -> impl Fn(usize) -> f64 {
        let values: Vec<f64> = points
            .iter()
            .map(|p| {
                let dist2: f64 = p.iter().zip(x).map(|(a, b)| (a - b).powi(2)).sum();
                (-gamma * dist2).exp()
            })
            .collect();
        move |s| values[s]
    }

    #[test]
    fn validates_inputs() {
        let k = |_: usize, _: usize| 0.0;
        assert_eq!(
            BinarySvm::train(&[], k, &SvmConfig::default()).unwrap_err(),
            SvmError::EmptyTrainingSet
        );
        assert_eq!(
            BinarySvm::train(&[1, 1], k, &SvmConfig::default()).unwrap_err(),
            SvmError::SingleClass
        );
        assert_eq!(
            BinarySvm::train(&[1, 0], k, &SvmConfig::default()).unwrap_err(),
            SvmError::InvalidLabel { index: 1, value: 0 }
        );
        assert_eq!(
            BinarySvm::train(&[1, -1], k, &SvmConfig::with_c(-1.0)).unwrap_err(),
            SvmError::InvalidConfig
        );
    }

    #[test]
    fn separates_linear_data() {
        let xs = [-3.0, -2.0, -1.0, 1.0, 2.0, 3.0];
        let labels = [-1i8, -1, -1, 1, 1, 1];
        let kernel = |i: usize, j: usize| xs[i] * xs[j] + 1.0;
        let svm = BinarySvm::train(&labels, kernel, &SvmConfig::default()).unwrap();
        for (x, expected) in [(-2.5, -1), (-0.5, -1), (0.5, 1), (2.5, 1)] {
            let pred = svm.predict(|s| xs[s] * x + 1.0);
            assert_eq!(pred, expected, "misclassified x = {x}");
        }
    }

    #[test]
    fn solves_xor_with_rbf() {
        let points = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let labels = [-1i8, -1, 1, 1];
        let svm = BinarySvm::train(&labels, rbf(&points, 2.0), &SvmConfig::with_c(10.0)).unwrap();
        for (idx, &label) in labels.iter().enumerate() {
            let pred = svm.predict(rbf_to(&points, &points[idx], 2.0));
            assert_eq!(pred, label, "training point {idx} misclassified");
        }
    }

    #[test]
    fn dual_constraints_hold() {
        // Σ αᵢ yᵢ = 0 and 0 ≤ αᵢ ≤ C after training.
        let points: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i % 5), f64::from(i / 5)])
            .collect();
        let labels: Vec<i8> = (0..20).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let c = 5.0;
        let svm = BinarySvm::train(&labels, rbf(&points, 1.0), &SvmConfig::with_c(c)).unwrap();
        let sum: f64 = svm.alpha_y().iter().sum();
        assert!(sum.abs() < 1e-6, "sum alpha*y = {sum}");
        for (&s, &ay) in svm.support().iter().zip(svm.alpha_y()) {
            let alpha = ay * f64::from(labels[s]);
            assert!(alpha > 0.0 && alpha <= c + 1e-9, "alpha {alpha} out of box");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let points: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![f64::from(i), f64::from(i * i % 7)])
            .collect();
        let labels: Vec<i8> = (0..12).map(|i| if i < 6 { -1 } else { 1 }).collect();
        let config = SvmConfig::default();
        let a = BinarySvm::train(&labels, rbf(&points, 0.5), &config).unwrap();
        let b = BinarySvm::train(&labels, rbf(&points, 0.5), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn small_c_softens_margin() {
        // With a tiny C every multiplier is boxed at C: noisy points
        // cannot dominate. Just verify training completes and the alphas
        // respect the box.
        let xs = [-1.0, -0.9, 1.0, 0.9, -0.95, 0.95];
        let labels = [-1i8, -1, 1, 1, 1, -1]; // last two are label noise
        let kernel = |i: usize, j: usize| xs[i] * xs[j];
        let c = 0.01;
        let svm = BinarySvm::train(&labels, kernel, &SvmConfig::with_c(c)).unwrap();
        for (&s, &ay) in svm.support().iter().zip(svm.alpha_y()) {
            let alpha = ay * f64::from(labels[s]);
            assert!(alpha <= c + 1e-12);
        }
    }
}
