//! Chaos suite: deterministic fault injection at every engine-side
//! fail point (`engine.dispatch`, `pool.region`), asserting the
//! resilience invariants of `docs/RESILIENCE.md`:
//!
//! - **no stranded submitter** — every submit returns, with a real
//!   answer or a classified error;
//! - **the queue-depth gauge drains to zero** once traffic stops;
//! - **counters reconcile** — `accepted == completed + failed +
//!   expired`, with `shed`/`rejected` counting refusals disjointly;
//! - a supervised dispatcher survives injected crashes, and beyond its
//!   restart budget the engine poisons instead of hanging.
//!
//! Faults are seeded: each scenario runs under `GRAPHHD_FAULTS`-style
//! plans for seeds {1..5} (or just the seed of the ambient
//! `GRAPHHD_FAULTS` when CI's chaos matrix sets one). Engines are
//! always **fitted before faults are armed** — training runs on the
//! same pool the `pool.region` fail point cuts.

use engine::{Engine, EngineStats};
use graphcore::Graph;
use graphhd::Error;
use std::time::{Duration, Instant};

fn workload() -> (Vec<Graph>, Vec<u32>) {
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(77);
    for i in 0..16 {
        let base = graphcore::generate::erdos_renyi(14, 0.2, &mut rng).expect("valid p");
        if i % 2 == 0 {
            graphs.push(base);
            labels.push(0u32);
        } else {
            graphs.push(
                graphcore::generate::with_planted_triangles(&base, 4, &mut rng).expect("n >= 3"),
            );
            labels.push(1u32);
        }
    }
    (graphs, labels)
}

/// The seeds each scenario sweeps: the ambient `GRAPHHD_FAULTS` seed
/// when the CI chaos matrix pins one, otherwise all of {1..5}.
fn seeds() -> Vec<u64> {
    match faultpoint::env_seed() {
        Some(seed) => vec![seed],
        None => (1..=5).collect(),
    }
}

/// The shutdown-time reconciliation contract.
fn assert_reconciled(stats: &EngineStats, context: &str) {
    assert_eq!(
        stats.accepted,
        stats.completed + stats.failed + stats.expired,
        "{context}: accepted != completed + failed + expired: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0, "{context}: gauge not drained");
    assert_eq!(stats.queued, 0, "{context}: queue not drained");
}

/// Drives `threads × per_thread` classify calls and returns every
/// outcome. The join itself is the no-stranded-submitter assertion: a
/// lost request would leave its submitter blocked forever.
fn drive(
    engine: &Engine,
    graphs: &[Graph],
    threads: usize,
    per_thread: usize,
) -> Vec<Result<u32, Error>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|submitter| {
                let engine = engine.clone();
                scope.spawn(move || {
                    (0..per_thread)
                        .map(|i| engine.classify(&graphs[(submitter + i * 3) % graphs.len()]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("submitter never stranded"))
            .collect()
    })
}

#[test]
fn dispatcher_panics_are_supervised_and_no_submitter_is_stranded() {
    let (graphs, labels) = workload();
    for seed in seeds() {
        let engine = Engine::builder()
            .dim(256)
            .queue_capacity(4)
            .max_batch(4)
            .dispatcher_restarts(1_000_000)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");
        let expected: Vec<u32> = graphs.iter().map(|g| engine.model().predict(g)).collect();

        let guard = faultpoint::configure(&format!("seed={seed};engine.dispatch=30%panic"))
            .expect("valid spec");
        let outcomes = drive(&engine, &graphs, 3, 20);
        drop(guard);

        let mut failed = 0u64;
        for outcome in &outcomes {
            match outcome {
                Ok(class) => {
                    assert!(expected.contains(class), "seed {seed}: bogus class");
                }
                Err(Error::TaskFailed) => failed += 1,
                Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
            }
        }
        // Faults are off again: the supervised engine must still serve.
        assert_eq!(
            engine.classify(&graphs[0]).expect("engine recovered"),
            expected[0],
            "seed {seed}"
        );
        engine.shutdown();
        let stats = engine.stats();
        assert_reconciled(&stats, &format!("seed {seed}"));
        assert_eq!(stats.failed, failed, "seed {seed}: failed counter");
        assert!(!stats.poisoned, "seed {seed}: budget was unlimited");
        if failed > 0 {
            assert!(
                stats.dispatcher_restarts >= 1,
                "seed {seed}: panics answered but no restart counted"
            );
        }
    }
}

#[test]
fn injected_dispatch_errors_fail_batches_without_restarting() {
    let (graphs, labels) = workload();
    for seed in seeds() {
        let engine = Engine::builder()
            .dim(256)
            .queue_capacity(4)
            .max_batch(4)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");

        let guard = faultpoint::configure(&format!("seed={seed};engine.dispatch=50%error"))
            .expect("valid spec");
        let outcomes = drive(&engine, &graphs, 3, 15);
        drop(guard);

        let failed = outcomes
            .iter()
            .filter(|o| matches!(o, Err(Error::TaskFailed)))
            .count() as u64;
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, Ok(_) | Err(Error::TaskFailed))),
            "seed {seed}: unexpected outcome"
        );
        engine.classify(&graphs[0]).expect("engine alive");
        engine.shutdown();
        let stats = engine.stats();
        assert_reconciled(&stats, &format!("seed {seed}"));
        assert_eq!(stats.failed, failed, "seed {seed}");
        assert_eq!(
            stats.dispatcher_restarts, 0,
            "seed {seed}: an injected error is not a crash"
        );
    }
}

#[test]
fn slow_dispatch_expires_deadlined_requests_exactly() {
    let (graphs, labels) = workload();
    let engine = Engine::builder()
        .dim(256)
        .queue_capacity(8)
        .max_batch(2)
        .fit(&graphs, &labels, 2)
        .expect("valid inputs");

    // Every batch stalls 25 ms behind a 5 ms deadline: the dispatch-time
    // re-check must expire queue-aged requests without scoring them.
    let guard = faultpoint::configure("seed=1;engine.dispatch=delay(25)").expect("valid spec");
    let outcomes: Vec<Result<u32, Error>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|submitter: usize| {
                let engine = engine.clone();
                let graphs = &graphs;
                scope.spawn(move || {
                    (0..8)
                        .map(|i: usize| {
                            engine.classify_within(
                                &graphs[(submitter + i) % graphs.len()],
                                Duration::from_millis(5),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("submitter never stranded"))
            .collect()
    });
    drop(guard);

    let expired = outcomes
        .iter()
        .filter(|o| matches!(o, Err(Error::DeadlineExceeded)))
        .count() as u64;
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(o, Ok(_) | Err(Error::DeadlineExceeded))),
        "unexpected outcome under pure delay injection"
    );
    assert!(
        expired > 0,
        "25 ms stalls against 5 ms deadlines must expire requests"
    );
    engine.shutdown();
    let stats = engine.stats();
    assert_reconciled(&stats, "delay+deadline");
    assert_eq!(
        stats.expired, expired,
        "expired counter matches observed responses"
    );
}

#[test]
fn pool_region_crashes_are_contained_to_their_batch() {
    let (graphs, labels) = workload();
    for seed in seeds() {
        let engine = Engine::builder()
            .dim(256)
            .queue_capacity(4)
            .max_batch(4)
            .threads(2)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");

        let guard = faultpoint::configure(&format!("seed={seed};pool.region=25%panic"))
            .expect("valid spec");
        let outcomes = drive(&engine, &graphs, 3, 15);
        drop(guard);

        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, Ok(_) | Err(Error::TaskFailed))),
            "seed {seed}: unexpected outcome"
        );
        engine.classify(&graphs[0]).expect("engine alive");
        engine.shutdown();
        let stats = engine.stats();
        assert_reconciled(&stats, &format!("seed {seed}"));
        assert_eq!(
            stats.dispatcher_restarts, 0,
            "seed {seed}: a batch panic is caught below the dispatcher loop"
        );
        assert!(!stats.poisoned, "seed {seed}");
    }
}

#[test]
fn exhausted_restart_budget_poisons_the_engine_and_fails_fast() {
    let (graphs, labels) = workload();
    let engine = Engine::builder()
        .dim(256)
        .queue_capacity(4)
        .max_batch(4)
        .dispatcher_restarts(2)
        .fit(&graphs, &labels, 2)
        .expect("valid inputs");

    let guard = faultpoint::configure("seed=1;engine.dispatch=panic").expect("valid spec");
    // Every batch crashes: after the budget (2 restarts + the final
    // crash) the supervisor poisons the engine. Keep submitting until
    // the poisoned refusal arrives.
    let patience = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < patience,
            "engine did not poison within its restart budget"
        );
        match engine.classify(&graphs[0]) {
            Err(Error::Poisoned) => break,
            Err(Error::TaskFailed) => continue,
            Ok(_) => panic!("no request can be scored while every batch panics"),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    drop(guard);

    assert!(engine.is_poisoned());
    // Fail-fast: a poisoned engine answers immediately, not after a
    // queue wait.
    let started = Instant::now();
    assert_eq!(engine.classify(&graphs[0]).unwrap_err(), Error::Poisoned);
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "poisoned submit must not block"
    );
    let stats = engine.stats();
    assert!(stats.poisoned);
    assert_eq!(stats.dispatcher_restarts, 2, "budget fully consumed");
    assert!(stats.rejected >= 1, "fail-fast refusals are counted");
    assert_reconciled(&stats, "poisoned");
    // Shutdown of a poisoned engine stays idempotent and non-blocking.
    engine.shutdown();
}

#[test]
fn mixed_faults_at_every_engine_fail_point_reconcile_across_seeds() {
    let (graphs, labels) = workload();
    for seed in seeds() {
        let engine = Engine::builder()
            .dim(256)
            .queue_capacity(4)
            .max_batch(3)
            .threads(2)
            .dispatcher_restarts(1_000_000)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");

        let spec = format!(
            "seed={seed};engine.dispatch=10%panic;engine.dispatch=15%error;\
             engine.dispatch=10%delay(3);pool.region=10%panic"
        );
        let guard = faultpoint::configure(&spec).expect("valid spec");
        let outcomes: Vec<Result<u32, Error>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|submitter: usize| {
                    let engine = engine.clone();
                    let graphs = &graphs;
                    scope.spawn(move || {
                        (0..12)
                            .map(|i: usize| {
                                let graph = &graphs[(submitter + i) % graphs.len()];
                                if i % 3 == 0 {
                                    engine.classify_within(graph, Duration::from_millis(50))
                                } else {
                                    engine.classify(graph)
                                }
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("submitter never stranded"))
                .collect()
        });
        drop(guard);

        for outcome in &outcomes {
            assert!(
                matches!(
                    outcome,
                    Ok(_) | Err(Error::TaskFailed) | Err(Error::DeadlineExceeded)
                ),
                "seed {seed}: unexpected outcome {outcome:?}"
            );
        }
        engine.shutdown();
        assert_reconciled(&engine.stats(), &format!("seed {seed}"));
    }
}
