//! Model checking of the engine's bounded request queue.
//!
//! `Shared` in `src/lib.rs` implements a close-aware bounded MPSC
//! queue: submitters block on `not_full` (backpressure), the dispatcher
//! blocks on `not_empty`, and `close` wakes everyone — with the
//! contract that **every accepted request is answered** because the
//! dispatcher keeps draining after close until the queue is empty.
//! These tests rebuild that protocol in miniature on
//! `parallel::model` primitives and explore every interleaving within
//! the preemption bound. The last test hands the checker a dispatcher
//! with the classic drain bug (checking `closed` before emptiness) and
//! requires that the stranded-request schedule is found.

use parallel::model::{self, AtomicUsize, Condvar, Config, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

fn exhaustive() -> Config {
    Config {
        max_schedules: 2_000_000,
        max_steps: 20_000,
        preemption_bound: 3,
    }
}

/// The queue of `engine::Shared`, reduced to its synchronization
/// skeleton: requests are just ids, "answering" is a counter bump.
struct Queue {
    /// `(requests, closed)` — one mutex guards both, as in the engine.
    state: Mutex<(VecDeque<usize>, bool)>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    max_batch: usize,
    accepted: AtomicUsize,
    answered: AtomicUsize,
}

impl Queue {
    fn new(capacity: usize, max_batch: usize) -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            max_batch,
            accepted: AtomicUsize::new(0),
            answered: AtomicUsize::new(0),
        }
    }

    /// Mirrors `Shared::submit`: wait for space, enqueue, wake the
    /// dispatcher. Returns whether the request was accepted.
    fn submit(&self, id: usize) -> bool {
        let mut state = self.state.lock();
        loop {
            if state.1 {
                return false;
            }
            if state.0.len() < self.capacity {
                break;
            }
            state = self.not_full.wait(state);
        }
        state.0.push_back(id);
        self.accepted.fetch_add(1);
        self.not_empty.notify_one();
        drop(state);
        true
    }

    /// Mirrors `Shared::close`: mark closed, wake both sides.
    fn close(&self) {
        let mut state = self.state.lock();
        state.1 = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Mirrors `Shared::dispatch`: drain up to `max_batch`, wake
    /// submitters, answer the batch outside the lock; on close keep
    /// draining until empty, **checking emptiness before closed-ness**.
    fn dispatch(&self) {
        loop {
            let batch: Vec<usize> = {
                let mut state = self.state.lock();
                loop {
                    if !state.0.is_empty() {
                        break;
                    }
                    if state.1 {
                        return;
                    }
                    state = self.not_empty.wait(state);
                }
                let take = state.0.len().min(self.max_batch);
                let batch: Vec<usize> = state.0.drain(..take).collect();
                self.not_full.notify_all();
                batch
            };
            self.answered.fetch_add(batch.len());
        }
    }

    /// The classic drain bug: `closed` checked before emptiness, so a
    /// request enqueued just before close is silently dropped.
    fn dispatch_broken(&self) {
        loop {
            let batch: Vec<usize> = {
                let mut state = self.state.lock();
                loop {
                    // BROKEN on purpose: order of the two checks is
                    // swapped relative to `dispatch`.
                    if state.1 {
                        return;
                    }
                    if !state.0.is_empty() {
                        break;
                    }
                    state = self.not_empty.wait(state);
                }
                let take = state.0.len().min(self.max_batch);
                let batch: Vec<usize> = state.0.drain(..take).collect();
                self.not_full.notify_all();
                batch
            };
            self.answered.fetch_add(batch.len());
        }
    }
}

/// Capacity 1 with two submissions forces the backpressure path: the
/// second submit must block on `not_full` in some schedules and resume
/// when the dispatcher drains. Every accepted request must be answered
/// and both threads must terminate under every interleaving.
#[test]
fn queue_backpressure_never_strands_or_deadlocks() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch());
        assert!(queue.submit(0), "queue closed before close() was called");
        assert!(queue.submit(1), "queue closed before close() was called");
        queue.close();
        dispatcher.join();
        assert_eq!(
            queue.answered.load(),
            queue.accepted.load(),
            "an accepted request was never answered"
        );
        assert_eq!(queue.accepted.load(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// A submit racing `close` must either be accepted (and then answered)
/// or rejected — never accepted-and-dropped. The closing thread here
/// runs concurrently with the submitter, unlike the test above where
/// close follows the submissions in program order.
#[test]
fn close_racing_submit_never_strands_a_request() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch());
        let closer_queue = Arc::clone(&queue);
        let closer = model::spawn(move || closer_queue.close());
        let accepted = queue.submit(0);
        closer.join();
        dispatcher.join();
        if accepted {
            assert_eq!(
                queue.answered.load(),
                1,
                "the accepted request was never answered"
            );
        } else {
            assert_eq!(queue.answered.load(), 0);
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// Checker validation for this protocol family: with the two drain
/// checks swapped, some schedule accepts a request and then lets the
/// dispatcher exit on `closed` without draining it. The checker must
/// find that schedule.
#[test]
fn checker_finds_stranded_request_in_broken_dispatcher() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch_broken());
        assert!(queue.submit(0), "queue closed before close() was called");
        queue.close();
        dispatcher.join();
        assert_eq!(
            queue.answered.load(),
            queue.accepted.load(),
            "an accepted request was never answered"
        );
    });
    let failure = report.failure.expect("the stranded request must be found");
    assert!(
        failure.message.contains("never answered"),
        "unexpected failure: {failure:?}"
    );
}
