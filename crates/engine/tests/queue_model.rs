//! Model checking of the engine's bounded request queue.
//!
//! `Shared` in `src/lib.rs` implements a close-aware bounded MPSC
//! queue: submitters block on `not_full` (backpressure), the dispatcher
//! blocks on `not_empty`, and `close` wakes everyone — with the
//! contract that **every accepted request is answered** because the
//! dispatcher keeps draining after close until the queue is empty.
//! These tests rebuild that protocol in miniature on
//! `parallel::model` primitives and explore every interleaving within
//! the preemption bound. One test hands the checker a dispatcher
//! with the classic drain bug (checking `closed` before emptiness) and
//! requires that the stranded-request schedule is found.
//!
//! The overload policies are modeled too: `Shed` takes no wait
//! transition at all, and `Timeout` is reduced to its synchronization
//! essence — wait **at most once** for space, then shed — because
//! `model::Condvar` deliberately has no `wait_timeout` (a timeout that
//! fires is indistinguishable, for interleaving purposes, from a wake
//! that finds the queue still full). `poison` is modeled as the
//! supervisor's terminal transition: close, drain, answer everything
//! with an error, wake both sides.

use parallel::model::{self, AtomicUsize, Condvar, Config, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

fn exhaustive() -> Config {
    Config {
        max_schedules: 2_000_000,
        max_steps: 20_000,
        preemption_bound: 3,
    }
}

/// The queue of `engine::Shared`, reduced to its synchronization
/// skeleton: requests are just ids, "answering" is a counter bump.
struct Queue {
    /// `(requests, closed)` — one mutex guards both, as in the engine.
    state: Mutex<(VecDeque<usize>, bool)>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    max_batch: usize,
    accepted: AtomicUsize,
    answered: AtomicUsize,
    shed: AtomicUsize,
}

/// What a submit attempt came back with, mirroring the engine's
/// `Ok(slot)` / `Err(Overloaded)` / `Err(ShutDown | Poisoned)` split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Accepted,
    Shed,
    Rejected,
}

impl Queue {
    fn new(capacity: usize, max_batch: usize) -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            max_batch,
            accepted: AtomicUsize::new(0),
            answered: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
        }
    }

    /// Mirrors `Shared::submit`: wait for space, enqueue, wake the
    /// dispatcher. Returns whether the request was accepted.
    fn submit(&self, id: usize) -> bool {
        let mut state = self.state.lock();
        loop {
            if state.1 {
                return false;
            }
            if state.0.len() < self.capacity {
                break;
            }
            state = self.not_full.wait(state);
        }
        state.0.push_back(id);
        self.accepted.fetch_add(1);
        self.not_empty.notify_one();
        drop(state);
        true
    }

    /// Mirrors `Shared::submit` under `OverloadPolicy::Shed`: a full
    /// queue is answered immediately — **no wait transition exists on
    /// this path**, so checker termination across every schedule is
    /// itself the proof that `Shed` can never block.
    fn submit_shed(&self, id: usize) -> Outcome {
        let mut state = self.state.lock();
        if state.1 {
            return Outcome::Rejected;
        }
        if state.0.len() >= self.capacity {
            self.shed.fetch_add(1);
            return Outcome::Shed;
        }
        state.0.push_back(id);
        self.accepted.fetch_add(1);
        self.not_empty.notify_one();
        Outcome::Accepted
    }

    /// Mirrors `Shared::submit` under `OverloadPolicy::Timeout`: wait
    /// at most once for space, then shed. The single wake stands in for
    /// "deadline fired or space appeared" — either way the submitter
    /// re-checks `closed` **before** anything else, which is the
    /// close-awareness this model exists to pin down.
    fn submit_timeout(&self, id: usize) -> Outcome {
        let mut state = self.state.lock();
        let mut waited = false;
        loop {
            if state.1 {
                return Outcome::Rejected;
            }
            if state.0.len() < self.capacity {
                state.0.push_back(id);
                self.accepted.fetch_add(1);
                self.not_empty.notify_one();
                return Outcome::Accepted;
            }
            if waited {
                self.shed.fetch_add(1);
                return Outcome::Shed;
            }
            waited = true;
            state = self.not_full.wait(state);
        }
    }

    /// Mirrors `Shared::poison`: the supervisor's terminal transition.
    /// Close, drain whatever is queued, answer it all with an error
    /// (the model counts an error answer as answered — the submitter is
    /// unblocked either way), and wake both sides.
    fn poison(&self) {
        let mut state = self.state.lock();
        state.1 = true;
        let drained = state.0.len();
        state.0.clear();
        self.answered.fetch_add(drained);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Mirrors `Shared::close`: mark closed, wake both sides.
    fn close(&self) {
        let mut state = self.state.lock();
        state.1 = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Mirrors `Shared::dispatch`: drain up to `max_batch`, wake
    /// submitters, answer the batch outside the lock; on close keep
    /// draining until empty, **checking emptiness before closed-ness**.
    fn dispatch(&self) {
        loop {
            let batch: Vec<usize> = {
                let mut state = self.state.lock();
                loop {
                    if !state.0.is_empty() {
                        break;
                    }
                    if state.1 {
                        return;
                    }
                    state = self.not_empty.wait(state);
                }
                let take = state.0.len().min(self.max_batch);
                let batch: Vec<usize> = state.0.drain(..take).collect();
                self.not_full.notify_all();
                batch
            };
            self.answered.fetch_add(batch.len());
        }
    }

    /// The classic drain bug: `closed` checked before emptiness, so a
    /// request enqueued just before close is silently dropped.
    fn dispatch_broken(&self) {
        loop {
            let batch: Vec<usize> = {
                let mut state = self.state.lock();
                loop {
                    // BROKEN on purpose: order of the two checks is
                    // swapped relative to `dispatch`.
                    if state.1 {
                        return;
                    }
                    if !state.0.is_empty() {
                        break;
                    }
                    state = self.not_empty.wait(state);
                }
                let take = state.0.len().min(self.max_batch);
                let batch: Vec<usize> = state.0.drain(..take).collect();
                self.not_full.notify_all();
                batch
            };
            self.answered.fetch_add(batch.len());
        }
    }
}

/// Capacity 1 with two submissions forces the backpressure path: the
/// second submit must block on `not_full` in some schedules and resume
/// when the dispatcher drains. Every accepted request must be answered
/// and both threads must terminate under every interleaving.
#[test]
fn queue_backpressure_never_strands_or_deadlocks() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch());
        assert!(queue.submit(0), "queue closed before close() was called");
        assert!(queue.submit(1), "queue closed before close() was called");
        queue.close();
        dispatcher.join();
        assert_eq!(
            queue.answered.load(),
            queue.accepted.load(),
            "an accepted request was never answered"
        );
        assert_eq!(queue.accepted.load(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// A submit racing `close` must either be accepted (and then answered)
/// or rejected — never accepted-and-dropped. The closing thread here
/// runs concurrently with the submitter, unlike the test above where
/// close follows the submissions in program order.
#[test]
fn close_racing_submit_never_strands_a_request() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch());
        let closer_queue = Arc::clone(&queue);
        let closer = model::spawn(move || closer_queue.close());
        let accepted = queue.submit(0);
        closer.join();
        dispatcher.join();
        if accepted {
            assert_eq!(
                queue.answered.load(),
                1,
                "the accepted request was never answered"
            );
        } else {
            assert_eq!(queue.answered.load(), 0);
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// Checker validation for this protocol family: with the two drain
/// checks swapped, some schedule accepts a request and then lets the
/// dispatcher exit on `closed` without draining it. The checker must
/// find that schedule.
#[test]
fn checker_finds_stranded_request_in_broken_dispatcher() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch_broken());
        assert!(queue.submit(0), "queue closed before close() was called");
        queue.close();
        dispatcher.join();
        assert_eq!(
            queue.answered.load(),
            queue.accepted.load(),
            "an accepted request was never answered"
        );
    });
    let failure = report.failure.expect("the stranded request must be found");
    assert!(
        failure.message.contains("never answered"),
        "unexpected failure: {failure:?}"
    );
}

/// Under `Shed`, every submit returns immediately — accepted or shed —
/// in every interleaving, each accepted request is answered, and the
/// books balance: `accepted + shed` equals the attempts made.
#[test]
fn shed_policy_never_blocks_and_reconciles() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch());
        let first = queue.submit_shed(0);
        let second = queue.submit_shed(1);
        queue.close();
        dispatcher.join();
        assert_ne!(first, Outcome::Rejected, "close had not happened yet");
        assert_ne!(second, Outcome::Rejected, "close had not happened yet");
        assert_eq!(
            queue.answered.load(),
            queue.accepted.load(),
            "an accepted request was never answered"
        );
        assert_eq!(
            queue.accepted.load() + queue.shed.load(),
            2,
            "an attempt was neither accepted nor shed"
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// Under `Timeout`, a submitter woken on a full queue sheds instead of
/// re-waiting, and a wake caused by `close` is observed as a rejection
/// — never a re-wait (the close-after-wake deadlock) and never a
/// stranded acceptance. The closer races the submits.
#[test]
fn timeout_policy_wakes_are_close_aware_and_never_strand() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let dispatcher_queue = Arc::clone(&queue);
        let dispatcher = model::spawn(move || dispatcher_queue.dispatch());
        let closer_queue = Arc::clone(&queue);
        let closer = model::spawn(move || closer_queue.close());
        let first = queue.submit_timeout(0);
        let second = queue.submit_timeout(1);
        closer.join();
        dispatcher.join();
        let attempts = [first, second];
        let accepted_attempts = attempts.iter().filter(|o| **o == Outcome::Accepted).count();
        assert_eq!(queue.accepted.load(), accepted_attempts);
        assert_eq!(
            queue.answered.load(),
            queue.accepted.load(),
            "an accepted request was never answered"
        );
        let shed_attempts = attempts.iter().filter(|o| **o == Outcome::Shed).count();
        assert_eq!(queue.shed.load(), shed_attempts);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// Poison racing blocked submitters: with **no dispatcher at all**
/// (the situation after the dispatcher's final crash), `poison` is the
/// only thing left that can unblock a submitter waiting on
/// backpressure. Every schedule must terminate, every accepted request
/// must be answered by the poison drain, and post-poison submits must
/// be rejected.
#[test]
fn poison_wakes_blocked_submitters_and_drains_the_queue() {
    let report = model::check(exhaustive(), || {
        let queue = Arc::new(Queue::new(1, 1));
        let poisoner_queue = Arc::clone(&queue);
        let poisoner = model::spawn(move || poisoner_queue.poison());
        let second_accepted = Arc::new(AtomicUsize::new(0));
        let submitter_queue = Arc::clone(&queue);
        let submitter_accepted = Arc::clone(&second_accepted);
        let submitter = model::spawn(move || {
            if submitter_queue.submit(1) {
                submitter_accepted.fetch_add(1);
            }
        });
        let first = queue.submit(0);
        submitter.join();
        poisoner.join();
        assert_eq!(
            queue.accepted.load(),
            usize::from(first) + second_accepted.load()
        );
        assert_eq!(
            queue.answered.load(),
            queue.accepted.load(),
            "an accepted request was never answered by the poison drain"
        );
        assert!(!queue.submit(2), "post-poison submits must be refused");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}
