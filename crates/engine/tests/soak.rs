//! Multi-threaded serving soak: N submitter threads hammering one
//! engine must observe exactly the predictions of the serial
//! `predict_all` path, under real backpressure, and a racing shutdown
//! must never strand or corrupt a request.

use engine::{Engine, OverloadPolicy};
use graphcore::Graph;
use graphhd::{Error, GraphHdConfig, GraphHdModel};
use std::time::{Duration, Instant};

fn workload() -> (Vec<Graph>, Vec<u32>) {
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(41);
    for i in 0..30 {
        let base = graphcore::generate::erdos_renyi(18, 0.18, &mut rng).expect("valid p");
        if i % 2 == 0 {
            graphs.push(base);
            labels.push(0u32);
        } else {
            graphs.push(
                graphcore::generate::with_planted_triangles(&base, 5, &mut rng).expect("n >= 3"),
            );
            labels.push(1u32);
        }
    }
    (graphs, labels)
}

#[test]
fn concurrent_submitters_match_serial_predictions() {
    let (graphs, labels) = workload();
    // A small queue and batch so the soak actually exercises
    // backpressure and multi-batch dispatch, not just the happy path.
    let engine = Engine::builder()
        .dim(2048)
        .seed(23)
        .queue_capacity(4)
        .max_batch(3)
        .fit(&graphs, &labels, 2)
        .expect("valid inputs");
    let expected = engine.model().predict_batch(&graphs);

    const SUBMITTERS: usize = 4;
    const REQUESTS_PER_THREAD: usize = 50;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for submitter in 0..SUBMITTERS {
            let engine = engine.clone();
            let graphs = &graphs;
            handles.push(scope.spawn(move || {
                let mut results = Vec::with_capacity(REQUESTS_PER_THREAD);
                for i in 0..REQUESTS_PER_THREAD {
                    // Each thread walks the graphs with its own stride so
                    // interleavings differ between threads.
                    let index = (submitter + i * (submitter + 1)) % graphs.len();
                    let class = engine.classify(&graphs[index]).expect("engine alive");
                    results.push((index, class));
                }
                results
            }));
        }
        for handle in handles {
            for (index, class) in handle.join().expect("submitter thread") {
                assert_eq!(class, expected[index], "graph {index}");
            }
        }
    });
    assert_eq!(engine.pending(), 0);
    engine.shutdown();
}

#[test]
fn scores_served_concurrently_are_bit_identical() {
    let (graphs, labels) = workload();
    let engine = Engine::builder()
        .dim(1024)
        .queue_capacity(3)
        .max_batch(2)
        .fit(&graphs, &labels, 2)
        .expect("valid inputs");
    let expected: Vec<Vec<f64>> = graphs.iter().map(|g| engine.model().scores(g)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for start in 0..3usize {
            let engine = engine.clone();
            let graphs = &graphs;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for index in (start..graphs.len()).step_by(3) {
                    out.push((index, engine.scores(&graphs[index]).expect("engine alive")));
                }
                out
            }));
        }
        for handle in handles {
            for (index, scores) in handle.join().expect("submitter thread") {
                assert_eq!(scores, expected[index], "graph {index}");
            }
        }
    });
}

#[test]
fn shutdown_racing_submitters_never_corrupts_results() {
    let (graphs, labels) = workload();
    let engine = Engine::builder()
        .dim(512)
        .queue_capacity(2)
        .max_batch(2)
        .fit(&graphs, &labels, 2)
        .expect("valid inputs");
    let expected = engine.model().predict_batch(&graphs);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for submitter in 0..3usize {
            let engine = engine.clone();
            let graphs = &graphs;
            handles.push(scope.spawn(move || {
                let mut outcomes = Vec::new();
                for i in 0..40usize {
                    let index = (submitter * 7 + i) % graphs.len();
                    outcomes.push((index, engine.classify(&graphs[index])));
                }
                outcomes
            }));
        }
        // Let some traffic through, then slam the door while submitters
        // are mid-flight.
        let first = engine.classify(&graphs[0]).expect("engine alive");
        assert_eq!(first, expected[0]);
        engine.shutdown();

        for handle in handles {
            for (index, outcome) in handle.join().expect("submitter thread") {
                match outcome {
                    // Every accepted request is answered correctly...
                    Ok(class) => assert_eq!(class, expected[index], "graph {index}"),
                    // ...every rejected one fails with the shutdown error.
                    Err(e) => assert_eq!(e, Error::ShutDown, "graph {index}"),
                }
            }
        }
    });
}

/// The overload soak: 8 submitters against a capacity-4 queue, once
/// per policy. Every response must still be a correct prediction or an
/// `Overloaded` refusal, the per-policy counters must reconcile
/// exactly against what the submitters observed, and `Shed` must never
/// block a submitter (asserted as a generous wall-clock bound on a
/// loop that would otherwise spend most of its life parked on
/// backpressure).
#[test]
fn overload_policies_reconcile_under_sustained_pressure() {
    let (graphs, labels) = workload();
    const SUBMITTERS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 25;
    const TOTAL: u64 = (SUBMITTERS * REQUESTS_PER_THREAD) as u64;

    for policy in [
        OverloadPolicy::Block,
        OverloadPolicy::Shed,
        OverloadPolicy::Timeout(Duration::from_millis(2)),
    ] {
        let engine = Engine::builder()
            .dim(512)
            .queue_capacity(4)
            .max_batch(2)
            .overload_policy(policy)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");
        let expected = engine.model().predict_batch(&graphs);

        let started = Instant::now();
        let (ok, overloaded) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for submitter in 0..SUBMITTERS {
                let engine = engine.clone();
                let graphs = &graphs;
                let expected = &expected;
                handles.push(scope.spawn(move || {
                    let (mut ok, mut overloaded) = (0u64, 0u64);
                    for i in 0..REQUESTS_PER_THREAD {
                        let index = (submitter * 5 + i) % graphs.len();
                        match engine.classify(&graphs[index]) {
                            Ok(class) => {
                                assert_eq!(class, expected[index], "graph {index}");
                                ok += 1;
                            }
                            Err(Error::Overloaded) => overloaded += 1,
                            Err(other) => panic!("{policy:?}: unexpected error {other:?}"),
                        }
                    }
                    (ok, overloaded)
                }));
            }
            handles
                .into_iter()
                .map(|handle| handle.join().expect("submitter thread"))
                .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
        });

        if policy == OverloadPolicy::Shed {
            // A shedding submit never parks: 200 requests against a
            // capacity-4 queue either enter or bounce immediately, so
            // the whole soak must finish far inside this bound.
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "Shed blocked: soak took {:?}",
                started.elapsed()
            );
        }

        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(
            stats.accepted,
            stats.completed + stats.failed + stats.expired,
            "{policy:?}: accepted != completed + failed + expired: {stats:?}"
        );
        assert_eq!(stats.completed, ok, "{policy:?}: completed counter");
        assert_eq!(stats.shed, overloaded, "{policy:?}: shed counter");
        assert_eq!(
            stats.accepted + stats.shed,
            TOTAL,
            "{policy:?}: an attempt was neither accepted nor shed"
        );
        assert_eq!(stats.queue_depth, 0, "{policy:?}: gauge not drained");
        assert_eq!(stats.failed, 0, "{policy:?}: no faults were armed");
        assert_eq!(stats.expired, 0, "{policy:?}: no deadlines were set");
        if policy == OverloadPolicy::Block {
            assert_eq!(stats.shed, 0, "Block never sheds");
            assert_eq!(stats.completed, TOTAL, "Block completes everything");
        }
    }
}

#[test]
fn snapshot_from_running_engine_reloads_into_identical_engine() {
    let (graphs, labels) = workload();
    let config = GraphHdConfig::builder()
        .dim(1024)
        .seed(9)
        .build()
        .expect("valid dimension");
    let model = GraphHdModel::fit(config, &graphs, &labels, 2).expect("valid inputs");
    let engine = Engine::builder().from_model(model).expect("valid knobs");

    let path = std::env::temp_dir().join(format!("graphhd-engine-soak-{}.ghd", std::process::id()));
    engine.snapshot(&path).expect("writable temp dir");
    let restored = Engine::from_snapshot(&path).expect("valid snapshot");
    std::fs::remove_file(&path).expect("cleanup");

    assert_eq!(
        restored.classify_batch(&graphs).expect("engine alive"),
        engine.classify_batch(&graphs).expect("engine alive"),
    );
}
