//! The engine's observability surface: internal metric handles, the
//! typed [`EngineStats`] snapshot, and the engine-owned registry.
//!
//! Every handle is lock-free to record (see the `telemetry` crate);
//! instrumentation never takes the queue lock and never changes a
//! scheduling decision. Durations are nanoseconds; names follow the
//! `docs/TELEMETRY.md` catalog.

use telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};

/// Metric handles shared by every engine handle and the dispatcher.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    /// Requests accepted but not yet answered: queued **plus** the batch
    /// currently being scored (unlike [`Engine::pending`], which is
    /// queued only).
    ///
    /// [`Engine::pending`]: crate::Engine::pending
    pub queue_depth: Gauge,
    /// Requests accepted into the queue.
    pub accepted: Counter,
    /// Submissions refused because the queue was closed.
    pub rejected: Counter,
    /// Requests answered successfully.
    pub completed: Counter,
    /// Requests answered with an error (panicked batch, internal error).
    pub failed: Counter,
    /// Submissions refused at admission because the queue was full
    /// under a `Shed` or expired `Timeout` overload policy.
    pub shed: Counter,
    /// Requests answered [`Error::DeadlineExceeded`] — expired at
    /// admission or aged out in the queue before dispatch.
    ///
    /// [`Error::DeadlineExceeded`]: graphhd::Error::DeadlineExceeded
    pub expired: Counter,
    /// Times the supervisor respawned a crashed dispatcher loop.
    pub dispatcher_restarts: Counter,
    /// Nanoseconds from acceptance to dispatcher drain (the queue-age
    /// distribution: how long requests sit before being scored).
    pub queue_wait_ns: Histogram,
    /// Requests per dispatched batch (a value histogram, not a duration).
    pub batch_size: Histogram,
    /// Nanoseconds scoring one batch (the parallel region, all requests).
    pub dispatch_ns: Histogram,
    /// Nanoseconds from acceptance to fulfilment, per request.
    pub request_ns: Histogram,
    /// The engine-owned registry rendering these metrics (plus the
    /// pool's and the model crate's) as Prometheus text or JSON.
    pub registry: Registry,
}

impl EngineMetrics {
    /// Creates the handles and registers them into a fresh registry.
    pub(crate) fn new() -> Self {
        let metrics = Self {
            queue_depth: Gauge::new(),
            accepted: Counter::new(),
            rejected: Counter::new(),
            completed: Counter::new(),
            failed: Counter::new(),
            shed: Counter::new(),
            expired: Counter::new(),
            dispatcher_restarts: Counter::new(),
            queue_wait_ns: Histogram::new(),
            batch_size: Histogram::new(),
            dispatch_ns: Histogram::new(),
            request_ns: Histogram::new(),
            registry: Registry::new(),
        };
        let r = &metrics.registry;
        r.register_gauge(
            "engine_queue_depth",
            "Requests accepted but not yet answered (queued + in-flight)",
            &metrics.queue_depth,
        );
        r.register_counter(
            "engine_requests_accepted",
            "Requests accepted into the queue",
            &metrics.accepted,
        );
        r.register_counter(
            "engine_requests_rejected",
            "Submissions refused after shutdown",
            &metrics.rejected,
        );
        r.register_counter(
            "engine_requests_completed",
            "Requests answered successfully",
            &metrics.completed,
        );
        r.register_counter(
            "engine_requests_failed",
            "Requests answered with an error",
            &metrics.failed,
        );
        r.register_counter(
            "engine_shed",
            "Submissions refused because the queue was full under the overload policy",
            &metrics.shed,
        );
        r.register_counter(
            "engine_deadline_expired",
            "Requests answered DeadlineExceeded at admission or dispatch",
            &metrics.expired,
        );
        r.register_counter(
            "engine_dispatcher_restarts",
            "Dispatcher loop crashes the supervisor recovered from",
            &metrics.dispatcher_restarts,
        );
        r.register_histogram(
            "engine_queue_wait_ns",
            "Acceptance to dispatcher drain",
            &metrics.queue_wait_ns,
        );
        r.register_histogram(
            "engine_batch_size",
            "Requests per dispatched batch",
            &metrics.batch_size,
        );
        r.register_histogram(
            "engine_dispatch_ns",
            "Batch scoring wall-clock",
            &metrics.dispatch_ns,
        );
        r.register_histogram(
            "engine_request_ns",
            "Acceptance to fulfilment, per request",
            &metrics.request_ns,
        );
        metrics
    }

    /// The typed snapshot behind [`Engine::stats`](crate::Engine::stats).
    pub(crate) fn snapshot(&self, queued: usize, poisoned: bool) -> EngineStats {
        EngineStats {
            queue_depth: self.queue_depth.get(),
            queued,
            poisoned,
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            shed: self.shed.get(),
            expired: self.expired.get(),
            dispatcher_restarts: self.dispatcher_restarts.get(),
            queue_wait_ns: self.queue_wait_ns.snapshot(),
            batch_size: self.batch_size.snapshot(),
            dispatch_ns: self.dispatch_ns.snapshot(),
            request_ns: self.request_ns.snapshot(),
        }
    }
}

/// A point-in-time reading of the engine's serving telemetry (see
/// [`Engine::stats`](crate::Engine::stats)).
///
/// Counters are cumulative since engine construction; histograms carry
/// the full distribution with `p50()`/`p90()`/`p99()`/`max` readouts,
/// and [`HistogramSnapshot::since`] turns two readings into an interval
/// measurement. Duration histograms are empty when timing is disabled
/// via `GRAPHHD_TELEMETRY=off` (counters and gauges still count).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineStats {
    /// Requests accepted but not yet answered (queued + in-flight).
    /// Zero after a drained shutdown.
    pub queue_depth: i64,
    /// Requests waiting in the queue right now (excludes the in-flight
    /// batch; the same reading as [`Engine::pending`](crate::Engine::pending)).
    pub queued: usize,
    /// Whether the engine is terminally out of service (the dispatcher
    /// exceeded its restart budget; see
    /// [`Engine::is_poisoned`](crate::Engine::is_poisoned)).
    pub poisoned: bool,
    /// Requests accepted into the queue (including ones later answered
    /// `DeadlineExceeded`). At any drained quiescent point,
    /// `accepted == completed + failed + expired`.
    pub accepted: u64,
    /// Submissions refused after shutdown or poisoning (never
    /// accepted; disjoint from `shed`).
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error other than `DeadlineExceeded`.
    pub failed: u64,
    /// Submissions refused `Overloaded` by the `Shed`/`Timeout`
    /// overload policies (never accepted; disjoint from `rejected`).
    pub shed: u64,
    /// Requests answered `DeadlineExceeded` (counted in `accepted`).
    pub expired: u64,
    /// Dispatcher crashes the supervisor recovered from by respawning.
    pub dispatcher_restarts: u64,
    /// Nanoseconds from acceptance to dispatcher drain (queue age at
    /// the moment a request leaves the queue).
    pub queue_wait_ns: HistogramSnapshot,
    /// Requests per dispatched batch.
    pub batch_size: HistogramSnapshot,
    /// Nanoseconds scoring one batch.
    pub dispatch_ns: HistogramSnapshot,
    /// Nanoseconds from acceptance to fulfilment, per request.
    pub request_ns: HistogramSnapshot,
}
