//! **The serving front door.** One long-lived, cheaply-cloneable
//! [`Engine`] owns a trained GraphHD encoder + model and answers
//! `classify`/`scores` requests from any number of threads.
//!
//! GraphHD's pitch (Nunes et al., DATE 2022) is training and inference
//! cheap enough to serve online; the follow-up work (VS-Graph, the FPGA
//! port) treats the trained associative memory as a deployable artifact.
//! This crate is that story end-to-end, on the substrates the earlier
//! PRs built:
//!
//! - requests enter a **bounded queue** — submitters block when it is
//!   full (backpressure), so a burst degrades latency instead of memory;
//! - a dispatcher thread drains the queue in batches and scores each
//!   batch as a [`parallel::Pool`] region, so concurrent requests are
//!   amortized over one parallel sweep exactly like offline batch
//!   prediction;
//! - scoring runs the allocation-free
//!   [`GraphHdModel::scores_encoded_into`] path into a per-worker scratch
//!   buffer, which lands on the blocked+SIMD `hdvec::ClassMemory` engine;
//! - [`Engine::shutdown`] (and dropping the last handle) closes the
//!   queue, **drains** every request already accepted, then joins the
//!   dispatcher — accepted work is never dropped;
//! - every stage is instrumented with lock-free `telemetry` metrics:
//!   [`Engine::stats`] returns a typed [`EngineStats`] (queue depth,
//!   accepted/rejected/failed counters, queue-wait / batch-size /
//!   dispatch / end-to-end latency distributions with p50/p90/p99), and
//!   [`Engine::registry`] renders the engine, pool, and model metrics
//!   as Prometheus text or JSON.
//!
//! Construction goes through one fluent [`EngineBuilder`] (dimension,
//! centrality, seed, retraining epochs, thread count, queue bounds) and
//! the unified [`graphhd::Error`]; a model snapshotted with
//! [`GraphHdModel::save`] reloads into an engine on any machine via
//! [`Engine::from_snapshot`].
//!
//! # Examples
//!
//! ```
//! use engine::Engine;
//! use graphcore::generate;
//!
//! let graphs: Vec<_> = (6..14)
//!     .flat_map(|n| [generate::complete(n), generate::path(n)])
//!     .collect();
//! let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
//!
//! let engine = Engine::builder()
//!     .dim(2048)
//!     .queue_capacity(64)
//!     .fit(&graphs, &labels, 2)?;
//!
//! assert_eq!(engine.classify(&generate::complete(10))?, 0);
//! let worker = engine.clone(); // cheap handle for another thread
//! assert_eq!(worker.classify_batch(&graphs)?, engine.model().predict_batch(&graphs));
//! # Ok::<(), graphhd::Error>(())
//! ```

use graphcore::Graph;
use graphhd::select::argmax_tie_low;
use graphhd::{CentralityKind, EncoderKind, Error, GraphHdConfig, GraphHdModel};
use hdvec::TieBreak;
use parallel::Pool;
use std::borrow::Borrow;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use telemetry::{Registry, Stopwatch};

mod stats;

use stats::EngineMetrics;
pub use stats::EngineStats;

/// Default bound of the request queue (requests, not bytes). Full queue
/// = blocked submitters = backpressure.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Default maximum number of requests the dispatcher scores as one
/// parallel batch.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// What a request wants back.
enum Work {
    /// The winning class id.
    Classify,
    /// The full per-class cosine score vector.
    Scores,
}

/// A fulfilled request.
enum Response {
    Class(u32),
    Scores(Vec<f64>),
}

/// One-shot response slot a submitter blocks on.
struct Slot {
    response: Mutex<Option<Result<Response, Error>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            response: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, response: Result<Response, Error>) {
        let mut guard = self.response.lock().expect("slot lock");
        *guard = Some(response);
        self.ready.notify_one();
    }

    fn is_pending(&self) -> bool {
        self.response.lock().expect("slot lock").is_none()
    }

    fn wait(&self) -> Result<Response, Error> {
        let mut guard = self.response.lock().expect("slot lock");
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self.ready.wait(guard).expect("slot lock");
        }
    }
}

/// A queued request: the graph to score, what to return, where to put
/// it, and when it was accepted (for queue-wait and end-to-end latency;
/// the stopwatch holds nothing when telemetry is disabled).
struct Request {
    graph: Graph,
    work: Work,
    slot: Arc<Slot>,
    watch: Stopwatch,
}

/// Mutable queue state behind the engine's mutex.
struct QueueState {
    requests: VecDeque<Request>,
    closed: bool,
}

/// State shared by every engine handle and the dispatcher thread.
/// (`Debug` is manual: requests hold graphs and response slots that are
/// noise in a handle dump.)
struct Shared {
    model: GraphHdModel,
    state: Mutex<QueueState>,
    /// Signalled when queue space frees up (submitters wait here).
    not_full: Condvar,
    /// Signalled when requests arrive or the queue closes (the
    /// dispatcher waits here).
    not_empty: Condvar,
    capacity: usize,
    max_batch: usize,
    /// Serving telemetry (lock-free to record; never touches `state`).
    metrics: EngineMetrics,
}

impl Shared {
    /// Marks the queue closed and wakes everyone: blocked submitters
    /// return [`Error::ShutDown`], the dispatcher drains and exits.
    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Blocking submit: waits for queue space (backpressure), enqueues,
    /// wakes the dispatcher. Fails once the queue is closed.
    fn submit(&self, graph: Graph, work: Work) -> Result<Arc<Slot>, Error> {
        let slot = Slot::new();
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                self.metrics.rejected.inc();
                return Err(Error::ShutDown);
            }
            if state.requests.len() < self.capacity {
                break;
            }
            state = self.not_full.wait(state).expect("queue lock");
        }
        // The stopwatch starts after the backpressure wait: queue-wait
        // and end-to-end latency measure accepted requests, while time
        // blocked on a full queue shows up in the submitter's own
        // end-to-end numbers (the bench measures both).
        state.requests.push_back(Request {
            graph,
            work,
            slot: Arc::clone(&slot),
            watch: Stopwatch::started(),
        });
        self.metrics.accepted.inc();
        self.metrics.queue_depth.inc();
        self.not_empty.notify_one();
        Ok(slot)
    }

    /// Answers one request: records its outcome and end-to-end latency,
    /// releases its queue-depth slot, and wakes the submitter. Every
    /// fulfilment — success, internal error, panicked batch — goes
    /// through here, which is what keeps the gauge draining to zero.
    fn finish(&self, request: &Request, response: Result<Response, Error>) {
        if response.is_err() {
            self.metrics.failed.inc();
        } else {
            self.metrics.completed.inc();
        }
        request.watch.observe(&self.metrics.request_ns);
        self.metrics.queue_depth.dec();
        request.slot.fulfill(response);
    }

    /// Dispatcher loop: drain up to `max_batch` requests, score them as
    /// one parallel region, repeat. On close, keeps draining until the
    /// queue is empty — accepted requests are always answered.
    fn dispatch(&self) {
        loop {
            let batch: Vec<Request> = {
                let mut state = self.state.lock().expect("queue lock");
                loop {
                    if !state.requests.is_empty() {
                        break;
                    }
                    if state.closed {
                        return;
                    }
                    state = self.not_empty.wait(state).expect("queue lock");
                }
                let take = state.requests.len().min(self.max_batch);
                let batch: Vec<Request> = state.requests.drain(..take).collect();
                // Space freed: wake every blocked submitter (capacity may
                // exceed the number waiting).
                self.not_full.notify_all();
                batch
            };
            self.metrics.batch_size.record(batch.len() as u64);
            for request in &batch {
                request.watch.observe(&self.metrics.queue_wait_ns);
            }
            let dispatch_span = self.metrics.dispatch_ns.start_span();
            self.run_batch(&batch);
            drop(dispatch_span);
        }
    }

    /// Scores one batch on the model's pool. Each worker range reuses
    /// one scratch score buffer across its requests
    /// (`scores_encoded_into`), so the scoring path allocates only for
    /// requests that asked for the score vector itself.
    fn run_batch(&self, batch: &[Request]) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let model = &self.model;
            model
                .encoder()
                .pool()
                .par_for_ranges(batch.len(), 1, |range| {
                    let mut scratch: Vec<f64> = Vec::new();
                    for request in &batch[range] {
                        let encoded = model.encoder().encode(&request.graph);
                        model.scores_encoded_into(&encoded, &mut scratch);
                        let response = match request.work {
                            // A fitted model always scores >= 1 class;
                            // an empty score vector fails the request
                            // rather than aborting the dispatcher.
                            Work::Classify => match argmax_tie_low(&scratch) {
                                Some(best) => Ok(Response::Class(best as u32)),
                                None => Err(Error::Internal {
                                    what: "model produced an empty score vector",
                                }),
                            },
                            Work::Scores => Ok(Response::Scores(scratch.clone())),
                        };
                        self.finish(request, response);
                    }
                });
        }));
        if outcome.is_err() {
            // A panicking batch must not strand its submitters: every
            // slot the region did not reach reports the failure instead.
            for request in batch {
                if request.slot.is_pending() {
                    self.finish(request, Err(Error::TaskFailed));
                }
            }
        }
    }
}

/// Joins the dispatcher when the last engine handle goes away, after
/// closing the queue — the drop path is the same graceful drain as
/// [`Engine::shutdown`].
struct DispatcherGuard {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl DispatcherGuard {
    fn shutdown(&self) {
        self.shared.close();
        let handle = self.handle.lock().expect("dispatcher handle lock").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for DispatcherGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for DispatcherGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatcherGuard").finish_non_exhaustive()
    }
}

/// A long-lived serving handle: owns one trained encoder + model and
/// answers classification requests from many threads through a bounded,
/// batching request queue. Cloning is cheap (two `Arc`s) and every clone
/// talks to the same queue and model.
///
/// Built by [`EngineBuilder`] (see [`Engine::builder`]); restored from a
/// snapshot by [`Engine::from_snapshot`]. See the [crate
/// documentation](crate) for the serving architecture.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
    guard: Arc<DispatcherGuard>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("num_classes", &self.shared.model.num_classes())
            .field("dim", &self.shared.model.encoder().config().dim)
            .field("capacity", &self.shared.capacity)
            .field("max_batch", &self.shared.max_batch)
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts a fluent builder with the paper-default model
    /// configuration and default queue bounds.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Loads a snapshotted model (see [`GraphHdModel::save`]) and serves
    /// it with default engine settings — the two-line path from artifact
    /// to serving process. Use
    /// [`EngineBuilder::from_snapshot`] to customise queue bounds or the
    /// thread pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] / [`Error::Snapshot`] for unreadable or
    /// malformed snapshot files.
    pub fn from_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, Error> {
        EngineBuilder::new().from_snapshot(path)
    }

    /// The served model (read-only; the engine never mutates it).
    #[must_use]
    pub fn model(&self) -> &GraphHdModel {
        &self.shared.model
    }

    /// Number of classes the engine scores against.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.shared.model.num_classes()
    }

    /// Requests currently waiting in the queue (excludes the batch being
    /// scored). A sustained value near the capacity means submitters are
    /// experiencing backpressure.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.state.lock().expect("queue lock").requests.len()
    }

    /// A typed snapshot of the engine's serving telemetry: queue depth
    /// (queued **plus** in-flight, unlike [`pending`](Self::pending)),
    /// accepted/rejected/completed/failed counters, and the
    /// queue-wait / batch-size / dispatch / end-to-end distributions
    /// with `p50()`/`p90()`/`p99()`/`max` readouts.
    ///
    /// Counters are cumulative; use
    /// [`HistogramSnapshot::since`](telemetry::HistogramSnapshot::since)
    /// on two snapshots to measure an interval. With
    /// `GRAPHHD_TELEMETRY=off` the duration histograms stay empty while
    /// counts keep flowing.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.shared.metrics.snapshot(self.pending())
    }

    /// The engine-owned metric registry: the `engine_*` serving metrics
    /// plus the scheduling metrics of the pool it scores on (`pool_*`)
    /// and the model crate's global `graphhd_*` metrics. Render with
    /// [`Registry::render_prometheus`] or [`Registry::render_json`].
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.shared.metrics.registry
    }

    /// Classifies one graph: blocks while the queue is full
    /// (backpressure), then until the dispatcher has scored the request.
    /// The result is bit-identical to [`GraphHdModel::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShutDown`] after [`shutdown`](Self::shutdown)
    /// and [`Error::TaskFailed`] if the request's batch panicked.
    pub fn classify(&self, graph: &Graph) -> Result<u32, Error> {
        let slot = self.shared.submit(graph.clone(), Work::Classify)?;
        match slot.wait()? {
            Response::Class(class) => Ok(class),
            Response::Scores(_) => Err(Error::Internal {
                what: "classify request answered with a score vector",
            }),
        }
    }

    /// Cosine similarity of `graph` to every class vector, served
    /// through the queue. Bit-identical to [`GraphHdModel::scores`].
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn scores(&self, graph: &Graph) -> Result<Vec<f64>, Error> {
        let slot = self.shared.submit(graph.clone(), Work::Scores)?;
        match slot.wait()? {
            Response::Scores(scores) => Ok(scores),
            Response::Class(_) => Err(Error::Internal {
                what: "scores request answered with a class id",
            }),
        }
    }

    /// Classifies a batch: all graphs are enqueued (blocking as
    /// backpressure demands), then awaited in order. Results are
    /// bit-identical to [`GraphHdModel::predict_all`]. Accepts both
    /// `&[Graph]` and `&[&Graph]`.
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify); the first failed request wins.
    pub fn classify_batch<G: Borrow<Graph>>(&self, graphs: &[G]) -> Result<Vec<u32>, Error> {
        let mut slots = Vec::with_capacity(graphs.len());
        for graph in graphs {
            slots.push(self.shared.submit(graph.borrow().clone(), Work::Classify)?);
        }
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.wait()? {
                Response::Class(class) => results.push(class),
                Response::Scores(_) => {
                    return Err(Error::Internal {
                        what: "classify request answered with a score vector",
                    })
                }
            }
        }
        Ok(results)
    }

    /// Snapshots the served model to `path` — the running engine is the
    /// natural place to produce the next deployable artifact.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if writing fails.
    pub fn snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), Error> {
        self.shared.model.save(path)
    }

    /// Graceful shutdown: closes the queue (new submissions fail with
    /// [`Error::ShutDown`]), waits for every already-accepted request to
    /// be answered, and joins the dispatcher. Idempotent; dropping the
    /// last handle does the same.
    pub fn shutdown(&self) {
        self.guard.shutdown();
    }
}

/// Fluent builder for [`Engine`]: model knobs (dimension, centrality,
/// seed, tie-break, retraining epochs), execution knobs (thread count or
/// explicit pool) and serving knobs (queue capacity, batch limit), with
/// one validating construction step at the end ([`fit`](Self::fit),
/// [`from_model`](Self::from_model) or
/// [`from_snapshot`](Self::from_snapshot)).
///
/// # Examples
///
/// ```
/// use engine::Engine;
/// use graphcore::generate;
/// use graphhd::CentralityKind;
///
/// let graphs = vec![generate::complete(8), generate::path(8)];
/// let engine = Engine::builder()
///     .dim(1024)
///     .centrality(CentralityKind::Degree)
///     .seed(7)
///     .retrain_epochs(3)
///     .threads(2)
///     .queue_capacity(32)
///     .max_batch(8)
///     .fit(&graphs, &[0, 1], 2)?;
/// assert_eq!(engine.num_classes(), 2);
/// engine.shutdown();
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `fit`/`from_model`/`from_snapshot`"]
pub struct EngineBuilder {
    config: GraphHdConfig,
    retrain_epochs: usize,
    pool: Option<Arc<Pool>>,
    queue_capacity: usize,
    max_batch: usize,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// Paper-default model configuration, global pool, default queue
    /// bounds.
    pub fn new() -> Self {
        Self {
            config: GraphHdConfig::default(),
            retrain_epochs: 0,
            pool: None,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_batch: DEFAULT_MAX_BATCH,
        }
    }

    /// Sets the hypervector dimensionality d (paper: 10,000).
    pub fn dim(mut self, dim: usize) -> Self {
        self.config.dim = dim;
        self
    }

    /// Sets the centrality metric supplying vertex identifiers.
    pub fn centrality(mut self, centrality: CentralityKind) -> Self {
        self.config.centrality = centrality;
        self
    }

    /// Sets the seed of the basis item memory.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the tie-break policy for bundling majorities.
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.config.tie_break = tie_break;
        self
    }

    /// Selects the graph encoding strategy (paper default: the GraphHD
    /// centrality recipe). The choice is recorded in snapshots, so an
    /// engine restored via [`Engine::from_snapshot`] serves the same
    /// encoder it was trained with.
    pub fn with_encoder(mut self, encoder: EncoderKind) -> Self {
        self.config.encoder = encoder;
        self
    }

    /// Replaces the whole model configuration (e.g. one restored from a
    /// config file); individual setters can still refine it afterwards.
    pub fn config(mut self, config: GraphHdConfig) -> Self {
        self.config = config;
        self
    }

    /// Perceptron retraining epochs applied after [`fit`](Self::fit)
    /// (0 = paper baseline, no retraining).
    pub fn retrain_epochs(mut self, epochs: usize) -> Self {
        self.retrain_epochs = epochs;
        self
    }

    /// Pins the engine to a dedicated pool of `threads.max(1)` threads
    /// (the default is the process-wide [`Pool::global`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.pool = Some(Arc::new(Pool::with_threads(threads)));
        self
    }

    /// Pins the engine to an existing pool (shared with other engines or
    /// pipelines).
    pub fn pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Bounds the request queue: submitters block while `capacity`
    /// requests are waiting. Default
    /// [`DEFAULT_QUEUE_CAPACITY`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Caps how many queued requests the dispatcher scores as one
    /// parallel batch. Default [`DEFAULT_MAX_BATCH`].
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Validates the serving knobs (the model config is validated by the
    /// construction path that consumes it).
    fn validate(&self) -> Result<(), Error> {
        if self.queue_capacity == 0 {
            return Err(Error::ZeroQueueCapacity);
        }
        if self.max_batch == 0 {
            return Err(Error::ZeroBatch);
        }
        Ok(())
    }

    /// Trains a model on `graphs`/`labels` (with the configured
    /// retraining epochs) and starts serving it. Accepts both `&[Graph]`
    /// and `&[&Graph]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for invalid serving knobs, an invalid model
    /// configuration, or inconsistent training inputs.
    pub fn fit<G: Borrow<Graph> + Sync>(
        self,
        graphs: &[G],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Engine, Error> {
        self.validate()?;
        // `GraphEncoder::new` revalidates the configuration (dimension),
        // so the builder's model knobs need no separate build step here.
        let mut encoder = graphhd::GraphEncoder::new(self.config)?;
        if let Some(pool) = &self.pool {
            encoder = encoder.with_pool(Arc::clone(pool));
        }
        let model = GraphHdModel::fit_with_retraining(
            encoder,
            graphs,
            labels,
            num_classes,
            self.retrain_epochs,
        )?;
        self.spawn(model)
    }

    /// Starts serving an already-trained model (the model keeps its own
    /// configuration; the builder's model knobs are ignored, its pool
    /// and queue knobs apply).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for invalid serving knobs.
    pub fn from_model(self, model: GraphHdModel) -> Result<Engine, Error> {
        self.validate()?;
        let model = match &self.pool {
            Some(pool) => model.with_pool(Arc::clone(pool)),
            None => model,
        };
        self.spawn(model)
    }

    /// Loads a snapshot (see [`GraphHdModel::save`]) and starts serving
    /// it. As with [`from_model`](Self::from_model), the snapshot's own
    /// configuration wins over the builder's model knobs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] / [`Error::Snapshot`] for unreadable or
    /// malformed snapshots and [`Error`] for invalid serving knobs.
    pub fn from_snapshot<P: AsRef<Path>>(self, path: P) -> Result<Engine, Error> {
        self.validate()?;
        let model = GraphHdModel::load(path)?;
        self.from_model(model)
    }

    /// Wraps the model in the shared state and spawns the dispatcher.
    fn spawn(self, model: GraphHdModel) -> Result<Engine, Error> {
        let metrics = EngineMetrics::new();
        // One registry per engine, covering all three layers a request
        // crosses: the serving queue, the pool it is scored on, and the
        // model crate's process-global encode/predict counters.
        model.encoder().pool().register_metrics(&metrics.registry);
        graphhd::metrics::register_into(&metrics.registry);
        let shared = Arc::new(Shared {
            model,
            state: Mutex::new(QueueState {
                requests: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: self.queue_capacity,
            max_batch: self.max_batch,
            metrics,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("graphhd-engine".into())
                .spawn(move || shared.dispatch())
                .map_err(Error::from)?
        };
        Ok(Engine {
            guard: Arc::new(DispatcherGuard {
                shared: Arc::clone(&shared),
                handle: Mutex::new(Some(dispatcher)),
            }),
            shared,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn toy() -> (Vec<Graph>, Vec<u32>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..14 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn toy_engine(dim: usize, capacity: usize, max_batch: usize) -> (Engine, Vec<Graph>) {
        let (graphs, labels) = toy();
        let engine = Engine::builder()
            .dim(dim)
            .queue_capacity(capacity)
            .max_batch(max_batch)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");
        (engine, graphs)
    }

    #[test]
    fn classify_matches_model_predict() {
        let (engine, graphs) = toy_engine(1024, 16, 4);
        for graph in &graphs {
            assert_eq!(
                engine.classify(graph).expect("engine alive"),
                engine.model().predict(graph)
            );
        }
    }

    #[test]
    fn scores_match_model_scores_bitwise() {
        let (engine, graphs) = toy_engine(1024, 16, 4);
        for graph in &graphs {
            assert_eq!(
                engine.scores(graph).expect("engine alive"),
                engine.model().scores(graph)
            );
        }
    }

    #[test]
    fn classify_batch_matches_predict_all_through_tiny_queue() {
        // Capacity 2 with a 32-graph batch: the submit loop must ride
        // the backpressure (dispatcher drains while we enqueue).
        let (engine, graphs) = toy_engine(512, 2, 2);
        let expected = engine.model().predict_batch(&graphs);
        assert_eq!(
            engine.classify_batch(&graphs).expect("engine alive"),
            expected
        );
        let refs: Vec<&Graph> = graphs.iter().collect();
        assert_eq!(
            engine.classify_batch(&refs).expect("engine alive"),
            expected
        );
    }

    #[test]
    fn with_encoder_survives_fit_and_snapshot_restore() {
        let (graphs, labels) = toy();
        let kind = EncoderKind::EdgeWeighted { weight_cap: 3 };
        let engine = Engine::builder()
            .dim(512)
            .with_encoder(kind)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");
        assert_eq!(engine.model().encoder().config().encoder, kind);
        let expected: Vec<u32> = graphs.iter().map(|g| engine.model().predict(g)).collect();

        let path =
            std::env::temp_dir().join(format!("graphhd-engine-encoder-{}.ghd", std::process::id()));
        engine.snapshot(&path).expect("snapshot written");
        let restored = Engine::from_snapshot(&path).expect("valid snapshot");
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(restored.model().encoder().config().encoder, kind);
        let served: Vec<u32> = graphs
            .iter()
            .map(|g| restored.classify(g).expect("engine alive"))
            .collect();
        assert_eq!(served, expected);
    }

    #[test]
    fn builder_rejects_zero_bounds() {
        let (graphs, labels) = toy();
        assert_eq!(
            Engine::builder()
                .queue_capacity(0)
                .fit(&graphs, &labels, 2)
                .unwrap_err(),
            Error::ZeroQueueCapacity
        );
        assert_eq!(
            Engine::builder()
                .max_batch(0)
                .fit(&graphs, &labels, 2)
                .unwrap_err(),
            Error::ZeroBatch
        );
        assert_eq!(
            Engine::builder()
                .dim(0)
                .fit(&graphs, &labels, 2)
                .unwrap_err(),
            Error::ZeroDimension
        );
        assert_eq!(
            Engine::builder()
                .dim(64)
                .fit::<Graph>(&[], &[], 2)
                .unwrap_err(),
            Error::EmptyTrainingSet
        );
    }

    #[test]
    fn shutdown_rejects_new_requests_on_every_clone() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        let clone = engine.clone();
        assert!(engine.classify(&graphs[0]).is_ok());
        engine.shutdown();
        assert_eq!(engine.classify(&graphs[0]).unwrap_err(), Error::ShutDown);
        assert_eq!(clone.classify(&graphs[0]).unwrap_err(), Error::ShutDown);
        // Idempotent.
        clone.shutdown();
    }

    #[test]
    fn retrain_epochs_match_offline_retraining() {
        let (graphs, labels) = toy();
        let engine = Engine::builder()
            .dim(1024)
            .seed(5)
            .retrain_epochs(4)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");

        let config = GraphHdConfig::builder()
            .dim(1024)
            .seed(5)
            .build()
            .expect("valid dimension");
        let encoder = graphhd::GraphEncoder::new(config).expect("valid config");
        let encodings = encoder.encode_all(&graphs);
        let mut reference = GraphHdModel::fit_encoded(encoder, &encodings, &labels, 2);
        let _ = reference.retrain(&encodings, &labels, 4);

        assert_eq!(engine.model().class_vectors(), reference.class_vectors());
    }

    #[test]
    fn stats_track_served_requests() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        let n = graphs.len() as u64;
        for graph in &graphs {
            engine.classify(graph).expect("engine alive");
        }
        let stats = engine.stats();
        assert_eq!(stats.accepted, n);
        assert_eq!(stats.completed, n);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queue_depth, 0, "all answered -> gauge drained");
        // Sum over the batch-size histogram = total requests dispatched.
        assert_eq!(stats.batch_size.sum, n);
        assert!(stats.batch_size.max <= 4, "max_batch respected");
        if telemetry::enabled() {
            assert_eq!(stats.request_ns.count, n);
            assert_eq!(stats.queue_wait_ns.count, n);
            assert!(stats.dispatch_ns.count > 0);
            assert!(stats.request_ns.p99() >= stats.request_ns.p50());
            assert!(stats.request_ns.max >= stats.queue_wait_ns.min);
        }

        engine.shutdown();
        assert!(engine.classify(&graphs[0]).is_err());
        let stats = engine.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn shutdown_drains_gauges_to_zero() {
        // Many clones hammering a tiny queue, then a shutdown racing the
        // tail of the traffic: every accepted request must be answered
        // and the depth gauge must come back to exactly zero.
        let (engine, graphs) = toy_engine(512, 2, 2);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = engine.clone();
                let graphs = &graphs;
                scope.spawn(move || {
                    for graph in graphs {
                        let _ = engine.classify(graph);
                    }
                });
            }
        });
        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.accepted, stats.completed + stats.failed);
    }

    #[test]
    fn registry_renders_all_three_layers() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        engine.classify(&graphs[0]).expect("engine alive");
        let text = engine.registry().render_prometheus();
        telemetry::validate_exposition(&text).expect("well-formed exposition");
        for needle in [
            "engine_queue_depth",
            "engine_requests_accepted",
            "pool_tasks",
            "graphhd_graphs_encoded",
        ] {
            assert!(text.contains(needle), "{needle} missing from exposition");
        }
        let json = engine.registry().render_json();
        assert!(json.contains("\"engine_request_ns\""));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn from_model_serves_an_existing_model() {
        let (graphs, labels) = toy();
        let config = GraphHdConfig::builder()
            .dim(1024)
            .build()
            .expect("valid dimension");
        let model = GraphHdModel::fit(config, &graphs, &labels, 2).expect("valid inputs");
        let expected = model.predict_batch(&graphs);
        let engine = Engine::builder()
            .threads(2)
            .from_model(model)
            .expect("valid knobs");
        assert_eq!(
            engine.classify_batch(&graphs).expect("engine alive"),
            expected
        );
        assert_eq!(engine.pending(), 0);
    }
}
