//! **The serving front door.** One long-lived, cheaply-cloneable
//! [`Engine`] owns a trained GraphHD encoder + model and answers
//! `classify`/`scores` requests from any number of threads.
//!
//! GraphHD's pitch (Nunes et al., DATE 2022) is training and inference
//! cheap enough to serve online; the follow-up work (VS-Graph, the FPGA
//! port) treats the trained associative memory as a deployable artifact.
//! This crate is that story end-to-end, on the substrates the earlier
//! PRs built:
//!
//! - requests enter a **bounded queue** — submitters block when it is
//!   full (backpressure), so a burst degrades latency instead of memory;
//! - a dispatcher thread drains the queue in batches and scores each
//!   batch as a [`parallel::Pool`] region, so concurrent requests are
//!   amortized over one parallel sweep exactly like offline batch
//!   prediction;
//! - scoring runs the allocation-free
//!   [`GraphHdModel::scores_encoded_into`] path into a per-worker scratch
//!   buffer, which lands on the blocked+SIMD `hdvec::ClassMemory` engine;
//! - [`Engine::shutdown`] (and dropping the last handle) closes the
//!   queue, **drains** every request already accepted, then joins the
//!   dispatcher — accepted work is never dropped;
//! - every stage is instrumented with lock-free `telemetry` metrics:
//!   [`Engine::stats`] returns a typed [`EngineStats`] (queue depth,
//!   accepted/rejected/failed counters, queue-wait / batch-size /
//!   dispatch / end-to-end latency distributions with p50/p90/p99), and
//!   [`Engine::registry`] renders the engine, pool, and model metrics
//!   as Prometheus text or JSON.
//!
//! # Resilience
//!
//! Three mechanisms keep an overloaded or failing engine well-behaved
//! (full treatment in `docs/RESILIENCE.md`):
//!
//! - **Admission control** — [`OverloadPolicy`] decides what a full
//!   queue does to a submitter: [`Block`](OverloadPolicy::Block)
//!   (today's backpressure), [`Shed`](OverloadPolicy::Shed) (immediate
//!   [`Error::Overloaded`]) or [`Timeout`](OverloadPolicy::Timeout)
//!   (bounded blocking, then `Overloaded`).
//! - **Deadlines** — [`Engine::classify_within`] /
//!   [`Engine::scores_within`] (or a builder-wide
//!   [`default_deadline`](EngineBuilder::default_deadline)) bound each
//!   request's total latency; an expired request is answered
//!   [`Error::DeadlineExceeded`] at admission **and re-checked at
//!   dispatch**, so queue-aged work never wastes pool time.
//! - **Supervision** — a panicking dispatcher loop is caught by a
//!   supervisor that answers the dropped batch, respawns the loop with
//!   capped exponential backoff, and after a bounded number of
//!   restarts ([`EngineBuilder::dispatcher_restarts`]) moves the
//!   engine to a terminal *poisoned* state where submits fail fast
//!   with [`Error::Poisoned`].
//!
//! The failure paths are exercised deterministically through the
//! `faultpoint` fail points `engine.dispatch` and `pool.region` by the
//! chaos suite (`crates/engine/tests/chaos.rs`).
//!
//! Construction goes through one fluent [`EngineBuilder`] (dimension,
//! centrality, seed, retraining epochs, thread count, queue bounds) and
//! the unified [`graphhd::Error`]; a model snapshotted with
//! [`GraphHdModel::save`] reloads into an engine on any machine via
//! [`Engine::from_snapshot`].
//!
//! # Examples
//!
//! ```
//! use engine::Engine;
//! use graphcore::generate;
//!
//! let graphs: Vec<_> = (6..14)
//!     .flat_map(|n| [generate::complete(n), generate::path(n)])
//!     .collect();
//! let labels: Vec<u32> = (0..graphs.len()).map(|i| (i % 2) as u32).collect();
//!
//! let engine = Engine::builder()
//!     .dim(2048)
//!     .queue_capacity(64)
//!     .fit(&graphs, &labels, 2)?;
//!
//! assert_eq!(engine.classify(&generate::complete(10))?, 0);
//! let worker = engine.clone(); // cheap handle for another thread
//! assert_eq!(worker.classify_batch(&graphs)?, engine.model().predict_batch(&graphs));
//! # Ok::<(), graphhd::Error>(())
//! ```

use graphcore::Graph;
use graphhd::select::argmax_tie_low;
use graphhd::{CentralityKind, EncoderKind, Error, GraphHdConfig, GraphHdModel};
use hdvec::TieBreak;
use parallel::Pool;
use std::borrow::Borrow;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::{Registry, Stopwatch};

mod stats;

use stats::EngineMetrics;
pub use stats::EngineStats;

/// Default bound of the request queue (requests, not bytes). Full queue
/// = blocked submitters = backpressure.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Default maximum number of requests the dispatcher scores as one
/// parallel batch.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// Default number of dispatcher crashes the supervisor absorbs before
/// declaring the engine poisoned.
pub const DEFAULT_DISPATCHER_RESTARTS: u32 = 5;

/// What a submitter experiences when the request queue is full.
///
/// Selected per engine via
/// [`EngineBuilder::overload_policy`]; the refusal counters
/// (`engine_shed`) and the reconciliation rules are documented in
/// `docs/RESILIENCE.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block until space frees up (classic backpressure; the default).
    /// A request with a deadline still stops waiting — and is answered
    /// [`Error::DeadlineExceeded`] — when the deadline passes.
    #[default]
    Block,
    /// Refuse immediately with [`Error::Overloaded`]. The submitter
    /// never blocks; the refusal is counted in `engine_shed`.
    Shed,
    /// Block up to the given duration, then refuse with
    /// [`Error::Overloaded`] (counted in `engine_shed`). A sharper
    /// request deadline bounds the wait further.
    Timeout(Duration),
}

/// What a request wants back.
enum Work {
    /// The winning class id.
    Classify,
    /// The full per-class cosine score vector.
    Scores,
}

/// A fulfilled request.
enum Response {
    Class(u32),
    Scores(Vec<f64>),
}

/// One-shot response slot a submitter blocks on.
///
/// The slot's locks recover from poisoning rather than propagate it:
/// fulfilment can run inside a `Drop` during a panic unwind (a
/// supervisor catching a crashed dispatcher), where a second panic
/// would abort the process — and the stored `Option` is never observable
/// half-written.
struct Slot {
    response: Mutex<Option<Result<Response, Error>>>,
    ready: Condvar,
    /// Set by the first finisher; later finish attempts become no-ops,
    /// so a request answered by the batch loop is not answered again by
    /// its own drop-safety net (which would double-count metrics).
    claimed: AtomicBool,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            response: Mutex::new(None),
            ready: Condvar::new(),
            claimed: AtomicBool::new(false),
        })
    }

    /// True exactly once, for the caller that gets to answer.
    fn claim(&self) -> bool {
        !self.claimed.swap(true, Ordering::AcqRel)
    }

    fn fulfill(&self, response: Result<Response, Error>) {
        let mut guard = self.response.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = Some(response);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Response, Error> {
        let mut guard = self.response.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A queued request: the graph to score, what to return, where to put
/// it, when it was accepted (for queue-wait and end-to-end latency; the
/// stopwatch holds nothing when telemetry is disabled), when it stops
/// being worth serving, and the metric handles its outcome is recorded
/// against.
struct Request {
    graph: Graph,
    work: Work,
    slot: Arc<Slot>,
    watch: Stopwatch,
    deadline: Option<Instant>,
    metrics: Arc<EngineMetrics>,
}

impl Request {
    /// Answers the request **exactly once**: classifies the outcome
    /// into the completed/expired/failed counters, records end-to-end
    /// latency, releases the queue-depth slot, and wakes the submitter.
    /// Every fulfilment — success, deadline expiry, internal error,
    /// panicked batch, poison drain — goes through here, which is what
    /// keeps the gauge draining to zero; the claim flag makes duplicate
    /// calls (the drop safety net after an explicit answer) no-ops.
    fn finish(&self, response: Result<Response, Error>) {
        if !self.slot.claim() {
            return;
        }
        match &response {
            Ok(_) => self.metrics.completed.inc(),
            Err(Error::DeadlineExceeded) => self.metrics.expired.inc(),
            Err(_) => self.metrics.failed.inc(),
        }
        self.watch.observe(&self.metrics.request_ns);
        self.metrics.queue_depth.dec();
        self.slot.fulfill(response);
    }
}

impl Drop for Request {
    /// Safety net: an accepted request must never be dropped
    /// unanswered. The normal paths all finish explicitly; this catches
    /// a dispatcher panic unwinding with a drained batch still in a
    /// local buffer, turning a stranded submitter into a
    /// [`Error::TaskFailed`] response.
    fn drop(&mut self) {
        self.finish(Err(Error::TaskFailed));
    }
}

/// Mutable queue state behind the engine's mutex.
struct QueueState {
    requests: VecDeque<Request>,
    closed: bool,
    /// Terminal: the dispatcher exhausted its restart budget. Implies
    /// `closed`; submits fail fast with [`Error::Poisoned`].
    poisoned: bool,
}

/// State shared by every engine handle and the dispatcher thread.
/// (`Debug` is manual: requests hold graphs and response slots that are
/// noise in a handle dump.)
struct Shared {
    model: GraphHdModel,
    state: Mutex<QueueState>,
    /// Signalled when queue space frees up (submitters wait here).
    not_full: Condvar,
    /// Signalled when requests arrive or the queue closes (the
    /// dispatcher waits here).
    not_empty: Condvar,
    capacity: usize,
    max_batch: usize,
    policy: OverloadPolicy,
    /// Deadline applied to requests submitted without an explicit one.
    default_deadline: Option<Duration>,
    /// Serving telemetry (lock-free to record; never touches `state`).
    /// Shared with every queued [`Request`], whose finish path records
    /// its own outcome.
    metrics: Arc<EngineMetrics>,
}

impl Shared {
    /// The queue lock, recovering from poisoning: every `QueueState`
    /// mutation is a single push/pop/flag write that cannot be observed
    /// half-done, and the supervisor must still be able to drain and
    /// poison the queue after an injected panic unwound the dispatcher.
    fn state_lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks the queue closed and wakes everyone: blocked submitters
    /// return [`Error::ShutDown`], the dispatcher drains and exits.
    fn close(&self) {
        let mut state = self.state_lock();
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Terminal failure: the dispatcher exhausted its restart budget.
    /// Closes the queue, marks the engine poisoned, fails every queued
    /// request with [`Error::Poisoned`], and wakes everyone — blocked
    /// submitters observe the flag and fail fast.
    fn poison(&self) {
        let stranded: Vec<Request> = {
            let mut state = self.state_lock();
            state.poisoned = true;
            state.closed = true;
            state.requests.drain(..).collect()
        };
        for request in &stranded {
            request.finish(Err(Error::Poisoned));
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Builds the accepted-request record (stopwatch running, counters
    /// bumped). The caller either queues it or finishes it on the spot.
    fn accept(&self, graph: Graph, work: Work, deadline: Option<Instant>) -> Request {
        self.metrics.accepted.inc();
        self.metrics.queue_depth.inc();
        Request {
            graph,
            work,
            slot: Slot::new(),
            watch: Stopwatch::started(),
            deadline,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Submit under the engine's overload policy: waits for queue space
    /// as the policy allows, enqueues, wakes the dispatcher.
    ///
    /// Refusals are never accepted (closed/poisoned → `rejected`, full
    /// queue under `Shed`/`Timeout` → `shed`). A request whose deadline
    /// passes before space frees up *is* accepted and immediately
    /// answered [`Error::DeadlineExceeded`] — expiry is an outcome of
    /// an admitted request, which is what keeps
    /// `accepted == completed + failed + expired` reconcilable.
    fn submit(
        &self,
        graph: Graph,
        work: Work,
        deadline: Option<Instant>,
    ) -> Result<Arc<Slot>, Error> {
        let deadline = deadline.or_else(|| self.default_deadline.map(|d| Instant::now() + d));
        // Bound of a Timeout-policy wait, fixed at entry.
        let policy_bound = match self.policy {
            OverloadPolicy::Timeout(limit) => Some(Instant::now() + limit),
            _ => None,
        };
        let mut state = self.state_lock();
        loop {
            if state.poisoned {
                self.metrics.rejected.inc();
                return Err(Error::Poisoned);
            }
            if state.closed {
                self.metrics.rejected.inc();
                return Err(Error::ShutDown);
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    // Expired while blocked (or dead on arrival):
                    // accepted, then answered DeadlineExceeded.
                    drop(state);
                    let request = self.accept(graph, work, Some(deadline));
                    request.finish(Err(Error::DeadlineExceeded));
                    return Ok(request.slot.clone());
                }
            }
            if state.requests.len() < self.capacity {
                break;
            }
            match self.policy {
                OverloadPolicy::Shed => {
                    self.metrics.shed.inc();
                    return Err(Error::Overloaded);
                }
                OverloadPolicy::Block => match deadline {
                    None => {
                        state = self
                            .not_full
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner)
                    }
                    Some(deadline) => {
                        state = self.wait_until(state, deadline);
                    }
                },
                OverloadPolicy::Timeout(_) => {
                    let bound = policy_bound.unwrap_or_else(Instant::now);
                    if Instant::now() >= bound {
                        self.metrics.shed.inc();
                        return Err(Error::Overloaded);
                    }
                    let wake = match deadline {
                        Some(deadline) => bound.min(deadline),
                        None => bound,
                    };
                    state = self.wait_until(state, wake);
                }
            }
        }
        // The stopwatch starts after the backpressure wait: queue-wait
        // and end-to-end latency measure accepted requests, while time
        // blocked on a full queue shows up in the submitter's own
        // end-to-end numbers (the bench measures both).
        let request = self.accept(graph, work, deadline);
        let slot = Arc::clone(&request.slot);
        state.requests.push_back(request);
        self.not_empty.notify_one();
        Ok(slot)
    }

    /// Waits on `not_full` until signalled or `until` passes (whichever
    /// first); the caller re-evaluates the queue and its own bounds.
    fn wait_until<'a>(
        &self,
        state: MutexGuard<'a, QueueState>,
        until: Instant,
    ) -> MutexGuard<'a, QueueState> {
        let timeout = until.saturating_duration_since(Instant::now());
        let (state, _timed_out) = self
            .not_full
            .wait_timeout(state, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        state
    }

    /// Dispatcher loop: drain up to `max_batch` requests, re-check
    /// deadlines, score the survivors as one parallel region, repeat.
    /// On close, keeps draining until the queue is empty — accepted
    /// requests are always answered.
    fn dispatch(&self) {
        loop {
            let batch: Vec<Request> = {
                let mut state = self.state_lock();
                loop {
                    if !state.requests.is_empty() {
                        break;
                    }
                    if state.closed {
                        return;
                    }
                    state = self
                        .not_empty
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                let take = state.requests.len().min(self.max_batch);
                let batch: Vec<Request> = state.requests.drain(..take).collect();
                // Space freed: wake every blocked submitter (capacity may
                // exceed the number waiting).
                self.not_full.notify_all();
                batch
            };
            self.metrics.batch_size.record(batch.len() as u64);
            for request in &batch {
                request.watch.observe(&self.metrics.queue_wait_ns);
            }
            // Chaos hook: an injected error fails the drained batch the
            // way a crashed region would; an injected panic unwinds to
            // the supervisor (the batch answers itself via Drop); an
            // injected delay ages the queue behind a slow dispatcher.
            if faultpoint::inject("engine.dispatch") {
                for request in &batch {
                    request.finish(Err(Error::TaskFailed));
                }
                continue;
            }
            // Deadline re-check at dispatch: a request that aged out in
            // the queue is answered without spending pool time on it.
            // One clock read covers the whole batch.
            let live: Vec<&Request> = if batch.iter().any(|r| r.deadline.is_some()) {
                let now = Instant::now();
                batch
                    .iter()
                    .filter(|request| match request.deadline {
                        Some(deadline) if now >= deadline => {
                            request.finish(Err(Error::DeadlineExceeded));
                            false
                        }
                        _ => true,
                    })
                    .collect()
            } else {
                batch.iter().collect()
            };
            if live.is_empty() {
                continue;
            }
            let dispatch_span = self.metrics.dispatch_ns.start_span();
            self.run_batch(&live);
            drop(dispatch_span);
        }
    }

    /// Scores one batch on the model's pool. Each worker range reuses
    /// one scratch score buffer across its requests
    /// (`scores_encoded_into`), so the scoring path allocates only for
    /// requests that asked for the score vector itself.
    fn run_batch(&self, batch: &[&Request]) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let model = &self.model;
            model
                .encoder()
                .pool()
                .par_for_ranges(batch.len(), 1, |range| {
                    let mut scratch: Vec<f64> = Vec::new();
                    for request in &batch[range] {
                        let encoded = model.encoder().encode(&request.graph);
                        model.scores_encoded_into(&encoded, &mut scratch);
                        let response = match request.work {
                            // A fitted model always scores >= 1 class;
                            // an empty score vector fails the request
                            // rather than aborting the dispatcher.
                            Work::Classify => match argmax_tie_low(&scratch) {
                                Some(best) => Ok(Response::Class(best as u32)),
                                None => Err(Error::Internal {
                                    what: "model produced an empty score vector",
                                }),
                            },
                            Work::Scores => Ok(Response::Scores(scratch.clone())),
                        };
                        request.finish(response);
                    }
                });
        }));
        if outcome.is_err() {
            // A panicking batch must not strand its submitters: every
            // request the region did not answer reports the failure
            // instead (already-claimed slots make this a no-op).
            for request in batch {
                request.finish(Err(Error::TaskFailed));
            }
        }
    }

    /// Supervisor loop, run on the dispatcher thread: catches a
    /// panicking [`dispatch`](Self::dispatch) loop, counts the restart,
    /// backs off exponentially (1 ms doubling, capped at 50 ms) and
    /// respawns the loop — up to `max_restarts` times, after which the
    /// engine is [poisoned](Self::poison). In-flight requests of a
    /// crashed iteration are answered by the [`Request`] drop safety
    /// net as the panic unwinds.
    fn supervise(&self, max_restarts: u32) {
        let mut restarts: u32 = 0;
        loop {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| self.dispatch()));
            match outcome {
                // Clean exit: queue closed and drained.
                Ok(()) => return,
                Err(_) => {
                    if restarts >= max_restarts {
                        self.poison();
                        return;
                    }
                    restarts += 1;
                    self.metrics.dispatcher_restarts.inc();
                    let backoff = Duration::from_millis((1u64 << restarts.min(6)).min(50));
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// Joins the dispatcher when the last engine handle goes away, after
/// closing the queue — the drop path is the same graceful drain as
/// [`Engine::shutdown`].
struct DispatcherGuard {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl DispatcherGuard {
    /// Closes the queue and joins the dispatcher, **holding the handle
    /// lock through the join**: when an explicit `shutdown` races the
    /// last handle's drop (or another `shutdown`), the loser blocks
    /// here until the winner's drain completes, so every caller
    /// observes a fully-drained engine — not merely a closed one.
    fn shutdown(&self) {
        self.shared.close();
        let mut handle = self.handle.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(handle) = handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DispatcherGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for DispatcherGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatcherGuard").finish_non_exhaustive()
    }
}

/// A long-lived serving handle: owns one trained encoder + model and
/// answers classification requests from many threads through a bounded,
/// batching request queue. Cloning is cheap (two `Arc`s) and every clone
/// talks to the same queue and model.
///
/// Built by [`EngineBuilder`] (see [`Engine::builder`]); restored from a
/// snapshot by [`Engine::from_snapshot`]. See the [crate
/// documentation](crate) for the serving architecture.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
    guard: Arc<DispatcherGuard>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("num_classes", &self.shared.model.num_classes())
            .field("dim", &self.shared.model.encoder().config().dim)
            .field("capacity", &self.shared.capacity)
            .field("max_batch", &self.shared.max_batch)
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts a fluent builder with the paper-default model
    /// configuration and default queue bounds.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Loads a snapshotted model (see [`GraphHdModel::save`]) and serves
    /// it with default engine settings — the two-line path from artifact
    /// to serving process. Use
    /// [`EngineBuilder::from_snapshot`] to customise queue bounds or the
    /// thread pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] / [`Error::Snapshot`] for unreadable or
    /// malformed snapshot files.
    pub fn from_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, Error> {
        EngineBuilder::new().from_snapshot(path)
    }

    /// The served model (read-only; the engine never mutates it).
    #[must_use]
    pub fn model(&self) -> &GraphHdModel {
        &self.shared.model
    }

    /// Number of classes the engine scores against.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.shared.model.num_classes()
    }

    /// Requests currently waiting in the queue (excludes the batch being
    /// scored). A sustained value near the capacity means submitters are
    /// experiencing backpressure.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.state_lock().requests.len()
    }

    /// Whether the engine is terminally out of service: its dispatcher
    /// crashed more times than the restart budget
    /// ([`EngineBuilder::dispatcher_restarts`]) allows. A poisoned
    /// engine answers every submit with [`Error::Poisoned`]; the only
    /// recovery is building a new engine.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.shared.state_lock().poisoned
    }

    /// A typed snapshot of the engine's serving telemetry: queue depth
    /// (queued **plus** in-flight, unlike [`pending`](Self::pending)),
    /// accepted/rejected/completed/failed counters, and the
    /// queue-wait / batch-size / dispatch / end-to-end distributions
    /// with `p50()`/`p90()`/`p99()`/`max` readouts.
    ///
    /// Counters are cumulative; use
    /// [`HistogramSnapshot::since`](telemetry::HistogramSnapshot::since)
    /// on two snapshots to measure an interval. With
    /// `GRAPHHD_TELEMETRY=off` the duration histograms stay empty while
    /// counts keep flowing.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let (queued, poisoned) = {
            let state = self.shared.state_lock();
            (state.requests.len(), state.poisoned)
        };
        self.shared.metrics.snapshot(queued, poisoned)
    }

    /// The engine-owned metric registry: the `engine_*` serving metrics
    /// plus the scheduling metrics of the pool it scores on (`pool_*`)
    /// and the model crate's global `graphhd_*` metrics. Render with
    /// [`Registry::render_prometheus`] or [`Registry::render_json`].
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.shared.metrics.registry
    }

    /// Classifies one graph: blocks as the overload policy allows while
    /// the queue is full, then until the dispatcher has scored the
    /// request. The result is bit-identical to
    /// [`GraphHdModel::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShutDown`] after [`shutdown`](Self::shutdown),
    /// [`Error::Poisoned`] on a dead engine, [`Error::Overloaded`] when
    /// a full queue sheds the request, [`Error::DeadlineExceeded`] if a
    /// configured [`default_deadline`](EngineBuilder::default_deadline)
    /// expires first, and [`Error::TaskFailed`] if the request's batch
    /// panicked.
    pub fn classify(&self, graph: &Graph) -> Result<u32, Error> {
        let slot = self.shared.submit(graph.clone(), Work::Classify, None)?;
        Self::await_class(&slot)
    }

    /// [`classify`](Self::classify) with a per-request latency bound:
    /// the request is answered within roughly `timeout` or fails with
    /// [`Error::DeadlineExceeded`]. The deadline covers the whole
    /// journey — admission wait, queue time (re-checked at dispatch, so
    /// expired requests never waste pool time) — and overrides the
    /// builder's [`default_deadline`](EngineBuilder::default_deadline).
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn classify_within(&self, graph: &Graph, timeout: Duration) -> Result<u32, Error> {
        let deadline = Instant::now() + timeout;
        let slot = self
            .shared
            .submit(graph.clone(), Work::Classify, Some(deadline))?;
        Self::await_class(&slot)
    }

    fn await_class(slot: &Slot) -> Result<u32, Error> {
        match slot.wait()? {
            Response::Class(class) => Ok(class),
            Response::Scores(_) => Err(Error::Internal {
                what: "classify request answered with a score vector",
            }),
        }
    }

    /// Cosine similarity of `graph` to every class vector, served
    /// through the queue. Bit-identical to [`GraphHdModel::scores`].
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn scores(&self, graph: &Graph) -> Result<Vec<f64>, Error> {
        let slot = self.shared.submit(graph.clone(), Work::Scores, None)?;
        Self::await_scores(&slot)
    }

    /// [`scores`](Self::scores) with a per-request latency bound (see
    /// [`classify_within`](Self::classify_within)).
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn scores_within(&self, graph: &Graph, timeout: Duration) -> Result<Vec<f64>, Error> {
        let deadline = Instant::now() + timeout;
        let slot = self
            .shared
            .submit(graph.clone(), Work::Scores, Some(deadline))?;
        Self::await_scores(&slot)
    }

    fn await_scores(slot: &Slot) -> Result<Vec<f64>, Error> {
        match slot.wait()? {
            Response::Scores(scores) => Ok(scores),
            Response::Class(_) => Err(Error::Internal {
                what: "scores request answered with a class id",
            }),
        }
    }

    /// Classifies a batch: all graphs are enqueued (blocking as
    /// backpressure demands), then awaited in order. Results are
    /// bit-identical to [`GraphHdModel::predict_all`]. Accepts both
    /// `&[Graph]` and `&[&Graph]`.
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify); the first failed request wins.
    pub fn classify_batch<G: Borrow<Graph>>(&self, graphs: &[G]) -> Result<Vec<u32>, Error> {
        let mut slots = Vec::with_capacity(graphs.len());
        for graph in graphs {
            slots.push(
                self.shared
                    .submit(graph.borrow().clone(), Work::Classify, None)?,
            );
        }
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.wait()? {
                Response::Class(class) => results.push(class),
                Response::Scores(_) => {
                    return Err(Error::Internal {
                        what: "classify request answered with a score vector",
                    })
                }
            }
        }
        Ok(results)
    }

    /// [`classify_batch`](Self::classify_batch) with one deadline
    /// covering the whole batch: every request is enqueued with the
    /// same absolute expiry, so a batch that cannot finish inside
    /// `timeout` answers [`Error::DeadlineExceeded`] for the stragglers
    /// instead of holding the caller indefinitely. The network serving
    /// tier uses this for batched submits whose frame carries a
    /// deadline.
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify); the first failed request wins.
    pub fn classify_batch_within<G: Borrow<Graph>>(
        &self,
        graphs: &[G],
        timeout: Duration,
    ) -> Result<Vec<u32>, Error> {
        let deadline = Instant::now() + timeout;
        let mut slots = Vec::with_capacity(graphs.len());
        for graph in graphs {
            slots.push(self.shared.submit(
                graph.borrow().clone(),
                Work::Classify,
                Some(deadline),
            )?);
        }
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.wait()? {
                Response::Class(class) => results.push(class),
                Response::Scores(_) => {
                    return Err(Error::Internal {
                        what: "classify request answered with a score vector",
                    })
                }
            }
        }
        Ok(results)
    }

    /// Snapshots the served model to `path` — the running engine is the
    /// natural place to produce the next deployable artifact.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if writing fails.
    pub fn snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), Error> {
        self.shared.model.save(path)
    }

    /// Graceful shutdown: closes the queue (new submissions fail with
    /// [`Error::ShutDown`]), waits for every already-accepted request to
    /// be answered, and joins the dispatcher. Idempotent; dropping the
    /// last handle does the same.
    pub fn shutdown(&self) {
        self.guard.shutdown();
    }
}

/// Fluent builder for [`Engine`]: model knobs (dimension, centrality,
/// seed, tie-break, retraining epochs), execution knobs (thread count or
/// explicit pool) and serving knobs (queue capacity, batch limit), with
/// one validating construction step at the end ([`fit`](Self::fit),
/// [`from_model`](Self::from_model) or
/// [`from_snapshot`](Self::from_snapshot)).
///
/// # Examples
///
/// ```
/// use engine::Engine;
/// use graphcore::generate;
/// use graphhd::CentralityKind;
///
/// let graphs = vec![generate::complete(8), generate::path(8)];
/// let engine = Engine::builder()
///     .dim(1024)
///     .centrality(CentralityKind::Degree)
///     .seed(7)
///     .retrain_epochs(3)
///     .threads(2)
///     .queue_capacity(32)
///     .max_batch(8)
///     .fit(&graphs, &[0, 1], 2)?;
/// assert_eq!(engine.num_classes(), 2);
/// engine.shutdown();
/// # Ok::<(), graphhd::Error>(())
/// ```
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `fit`/`from_model`/`from_snapshot`"]
pub struct EngineBuilder {
    config: GraphHdConfig,
    retrain_epochs: usize,
    pool: Option<Arc<Pool>>,
    queue_capacity: usize,
    max_batch: usize,
    overload_policy: OverloadPolicy,
    default_deadline: Option<Duration>,
    dispatcher_restarts: u32,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// Paper-default model configuration, global pool, default queue
    /// bounds.
    pub fn new() -> Self {
        Self {
            config: GraphHdConfig::default(),
            retrain_epochs: 0,
            pool: None,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_batch: DEFAULT_MAX_BATCH,
            overload_policy: OverloadPolicy::default(),
            default_deadline: None,
            dispatcher_restarts: DEFAULT_DISPATCHER_RESTARTS,
        }
    }

    /// Sets the hypervector dimensionality d (paper: 10,000).
    pub fn dim(mut self, dim: usize) -> Self {
        self.config.dim = dim;
        self
    }

    /// Sets the centrality metric supplying vertex identifiers.
    pub fn centrality(mut self, centrality: CentralityKind) -> Self {
        self.config.centrality = centrality;
        self
    }

    /// Sets the seed of the basis item memory.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the tie-break policy for bundling majorities.
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.config.tie_break = tie_break;
        self
    }

    /// Selects the graph encoding strategy (paper default: the GraphHD
    /// centrality recipe). The choice is recorded in snapshots, so an
    /// engine restored via [`Engine::from_snapshot`] serves the same
    /// encoder it was trained with.
    pub fn with_encoder(mut self, encoder: EncoderKind) -> Self {
        self.config.encoder = encoder;
        self
    }

    /// Replaces the whole model configuration (e.g. one restored from a
    /// config file); individual setters can still refine it afterwards.
    pub fn config(mut self, config: GraphHdConfig) -> Self {
        self.config = config;
        self
    }

    /// Perceptron retraining epochs applied after [`fit`](Self::fit)
    /// (0 = paper baseline, no retraining).
    pub fn retrain_epochs(mut self, epochs: usize) -> Self {
        self.retrain_epochs = epochs;
        self
    }

    /// Pins the engine to a dedicated pool of `threads.max(1)` threads
    /// (the default is the process-wide [`Pool::global`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.pool = Some(Arc::new(Pool::with_threads(threads)));
        self
    }

    /// Pins the engine to an existing pool (shared with other engines or
    /// pipelines).
    pub fn pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Bounds the request queue: submitters block while `capacity`
    /// requests are waiting. Default
    /// [`DEFAULT_QUEUE_CAPACITY`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Caps how many queued requests the dispatcher scores as one
    /// parallel batch. Default [`DEFAULT_MAX_BATCH`].
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Selects what a full queue does to submitters: block (default),
    /// shed immediately, or block up to a bound. See [`OverloadPolicy`].
    pub fn overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload_policy = policy;
        self
    }

    /// Applies a deadline of `deadline` from submission to every
    /// request that does not carry its own (see
    /// [`Engine::classify_within`]). Unset by default: requests wait as
    /// long as they must.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Bounds how many dispatcher crashes the supervisor absorbs before
    /// the engine is declared poisoned (default
    /// [`DEFAULT_DISPATCHER_RESTARTS`]). Zero means the first crash is
    /// terminal.
    pub fn dispatcher_restarts(mut self, restarts: u32) -> Self {
        self.dispatcher_restarts = restarts;
        self
    }

    /// Validates the serving knobs (the model config is validated by the
    /// construction path that consumes it).
    fn validate(&self) -> Result<(), Error> {
        if self.queue_capacity == 0 {
            return Err(Error::ZeroQueueCapacity);
        }
        if self.max_batch == 0 {
            return Err(Error::ZeroBatch);
        }
        Ok(())
    }

    /// Trains a model on `graphs`/`labels` (with the configured
    /// retraining epochs) and starts serving it. Accepts both `&[Graph]`
    /// and `&[&Graph]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for invalid serving knobs, an invalid model
    /// configuration, or inconsistent training inputs.
    pub fn fit<G: Borrow<Graph> + Sync>(
        self,
        graphs: &[G],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<Engine, Error> {
        self.validate()?;
        // `GraphEncoder::new` revalidates the configuration (dimension),
        // so the builder's model knobs need no separate build step here.
        let mut encoder = graphhd::GraphEncoder::new(self.config)?;
        if let Some(pool) = &self.pool {
            encoder = encoder.with_pool(Arc::clone(pool));
        }
        let model = GraphHdModel::fit_with_retraining(
            encoder,
            graphs,
            labels,
            num_classes,
            self.retrain_epochs,
        )?;
        self.spawn(model)
    }

    /// Starts serving an already-trained model (the model keeps its own
    /// configuration; the builder's model knobs are ignored, its pool
    /// and queue knobs apply).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for invalid serving knobs.
    pub fn from_model(self, model: GraphHdModel) -> Result<Engine, Error> {
        self.validate()?;
        let model = match &self.pool {
            Some(pool) => model.with_pool(Arc::clone(pool)),
            None => model,
        };
        self.spawn(model)
    }

    /// Loads a snapshot (see [`GraphHdModel::save`]) and starts serving
    /// it. As with [`from_model`](Self::from_model), the snapshot's own
    /// configuration wins over the builder's model knobs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] / [`Error::Snapshot`] for unreadable or
    /// malformed snapshots and [`Error`] for invalid serving knobs.
    pub fn from_snapshot<P: AsRef<Path>>(self, path: P) -> Result<Engine, Error> {
        self.validate()?;
        let model = GraphHdModel::load(path)?;
        self.from_model(model)
    }

    /// Wraps the model in the shared state and spawns the supervised
    /// dispatcher.
    fn spawn(self, model: GraphHdModel) -> Result<Engine, Error> {
        let metrics = Arc::new(EngineMetrics::new());
        // One registry per engine, covering all three layers a request
        // crosses: the serving queue, the pool it is scored on, and the
        // model crate's process-global encode/predict counters.
        model.encoder().pool().register_metrics(&metrics.registry);
        graphhd::metrics::register_into(&metrics.registry);
        let shared = Arc::new(Shared {
            model,
            state: Mutex::new(QueueState {
                requests: VecDeque::new(),
                closed: false,
                poisoned: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: self.queue_capacity,
            max_batch: self.max_batch,
            policy: self.overload_policy,
            default_deadline: self.default_deadline,
            metrics,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let max_restarts = self.dispatcher_restarts;
            std::thread::Builder::new()
                .name("graphhd-engine".into())
                .spawn(move || shared.supervise(max_restarts))
                .map_err(Error::from)?
        };
        Ok(Engine {
            guard: Arc::new(DispatcherGuard {
                shared: Arc::clone(&shared),
                handle: Mutex::new(Some(dispatcher)),
            }),
            shared,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn toy() -> (Vec<Graph>, Vec<u32>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..14 {
            graphs.push(generate::complete(n));
            labels.push(0);
            graphs.push(generate::path(n));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn toy_engine(dim: usize, capacity: usize, max_batch: usize) -> (Engine, Vec<Graph>) {
        let (graphs, labels) = toy();
        let engine = Engine::builder()
            .dim(dim)
            .queue_capacity(capacity)
            .max_batch(max_batch)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");
        (engine, graphs)
    }

    #[test]
    fn classify_matches_model_predict() {
        let (engine, graphs) = toy_engine(1024, 16, 4);
        for graph in &graphs {
            assert_eq!(
                engine.classify(graph).expect("engine alive"),
                engine.model().predict(graph)
            );
        }
    }

    #[test]
    fn scores_match_model_scores_bitwise() {
        let (engine, graphs) = toy_engine(1024, 16, 4);
        for graph in &graphs {
            assert_eq!(
                engine.scores(graph).expect("engine alive"),
                engine.model().scores(graph)
            );
        }
    }

    #[test]
    fn classify_batch_matches_predict_all_through_tiny_queue() {
        // Capacity 2 with a 32-graph batch: the submit loop must ride
        // the backpressure (dispatcher drains while we enqueue).
        let (engine, graphs) = toy_engine(512, 2, 2);
        let expected = engine.model().predict_batch(&graphs);
        assert_eq!(
            engine.classify_batch(&graphs).expect("engine alive"),
            expected
        );
        let refs: Vec<&Graph> = graphs.iter().collect();
        assert_eq!(
            engine.classify_batch(&refs).expect("engine alive"),
            expected
        );
    }

    #[test]
    fn with_encoder_survives_fit_and_snapshot_restore() {
        let (graphs, labels) = toy();
        let kind = EncoderKind::EdgeWeighted { weight_cap: 3 };
        let engine = Engine::builder()
            .dim(512)
            .with_encoder(kind)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");
        assert_eq!(engine.model().encoder().config().encoder, kind);
        let expected: Vec<u32> = graphs.iter().map(|g| engine.model().predict(g)).collect();

        let path =
            std::env::temp_dir().join(format!("graphhd-engine-encoder-{}.ghd", std::process::id()));
        engine.snapshot(&path).expect("snapshot written");
        let restored = Engine::from_snapshot(&path).expect("valid snapshot");
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(restored.model().encoder().config().encoder, kind);
        let served: Vec<u32> = graphs
            .iter()
            .map(|g| restored.classify(g).expect("engine alive"))
            .collect();
        assert_eq!(served, expected);
    }

    #[test]
    fn builder_rejects_zero_bounds() {
        let (graphs, labels) = toy();
        assert_eq!(
            Engine::builder()
                .queue_capacity(0)
                .fit(&graphs, &labels, 2)
                .unwrap_err(),
            Error::ZeroQueueCapacity
        );
        assert_eq!(
            Engine::builder()
                .max_batch(0)
                .fit(&graphs, &labels, 2)
                .unwrap_err(),
            Error::ZeroBatch
        );
        assert_eq!(
            Engine::builder()
                .dim(0)
                .fit(&graphs, &labels, 2)
                .unwrap_err(),
            Error::ZeroDimension
        );
        assert_eq!(
            Engine::builder()
                .dim(64)
                .fit::<Graph>(&[], &[], 2)
                .unwrap_err(),
            Error::EmptyTrainingSet
        );
    }

    #[test]
    fn shutdown_rejects_new_requests_on_every_clone() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        let clone = engine.clone();
        assert!(engine.classify(&graphs[0]).is_ok());
        engine.shutdown();
        assert_eq!(engine.classify(&graphs[0]).unwrap_err(), Error::ShutDown);
        assert_eq!(clone.classify(&graphs[0]).unwrap_err(), Error::ShutDown);
        // Idempotent.
        clone.shutdown();
    }

    #[test]
    fn retrain_epochs_match_offline_retraining() {
        let (graphs, labels) = toy();
        let engine = Engine::builder()
            .dim(1024)
            .seed(5)
            .retrain_epochs(4)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");

        let config = GraphHdConfig::builder()
            .dim(1024)
            .seed(5)
            .build()
            .expect("valid dimension");
        let encoder = graphhd::GraphEncoder::new(config).expect("valid config");
        let encodings = encoder.encode_all(&graphs);
        let mut reference = GraphHdModel::fit_encoded(encoder, &encodings, &labels, 2);
        let _ = reference.retrain(&encodings, &labels, 4);

        assert_eq!(engine.model().class_vectors(), reference.class_vectors());
    }

    #[test]
    fn stats_track_served_requests() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        let n = graphs.len() as u64;
        for graph in &graphs {
            engine.classify(graph).expect("engine alive");
        }
        let stats = engine.stats();
        assert_eq!(stats.accepted, n);
        assert_eq!(stats.completed, n);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queue_depth, 0, "all answered -> gauge drained");
        // Sum over the batch-size histogram = total requests dispatched.
        assert_eq!(stats.batch_size.sum, n);
        assert!(stats.batch_size.max <= 4, "max_batch respected");
        if telemetry::enabled() {
            assert_eq!(stats.request_ns.count, n);
            assert_eq!(stats.queue_wait_ns.count, n);
            assert!(stats.dispatch_ns.count > 0);
            assert!(stats.request_ns.p99() >= stats.request_ns.p50());
            assert!(stats.request_ns.max >= stats.queue_wait_ns.min);
        }

        engine.shutdown();
        assert!(engine.classify(&graphs[0]).is_err());
        let stats = engine.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn shutdown_drains_gauges_to_zero() {
        // Many clones hammering a tiny queue, then a shutdown racing the
        // tail of the traffic: every accepted request must be answered
        // and the depth gauge must come back to exactly zero.
        let (engine, graphs) = toy_engine(512, 2, 2);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = engine.clone();
                let graphs = &graphs;
                scope.spawn(move || {
                    for graph in graphs {
                        let _ = engine.classify(graph);
                    }
                });
            }
        });
        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.accepted, stats.completed + stats.failed);
    }

    #[test]
    fn registry_renders_all_three_layers() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        engine.classify(&graphs[0]).expect("engine alive");
        let text = engine.registry().render_prometheus();
        telemetry::validate_exposition(&text).expect("well-formed exposition");
        for needle in [
            "engine_queue_depth",
            "engine_requests_accepted",
            "pool_tasks",
            "graphhd_graphs_encoded",
        ] {
            assert!(text.contains(needle), "{needle} missing from exposition");
        }
        let json = engine.registry().render_json();
        assert!(json.contains("\"engine_request_ns\""));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn expired_deadline_is_accepted_and_answered_deadline_exceeded() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        // A zero timeout is already expired at admission: the request
        // is accepted (for reconciliation) and answered immediately.
        assert_eq!(
            engine
                .classify_within(&graphs[0], Duration::ZERO)
                .unwrap_err(),
            Error::DeadlineExceeded
        );
        let stats = engine.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.queue_depth, 0, "expired request released its slot");
        // A generous timeout serves normally.
        assert_eq!(
            engine
                .classify_within(&graphs[0], Duration::from_secs(60))
                .expect("served"),
            engine.model().predict(&graphs[0])
        );
        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(
            stats.accepted,
            stats.completed + stats.failed + stats.expired
        );
    }

    #[test]
    fn default_deadline_applies_to_plain_classify() {
        let (graphs, labels) = toy();
        let engine = Engine::builder()
            .dim(256)
            .default_deadline(Duration::ZERO)
            .fit(&graphs, &labels, 2)
            .expect("valid inputs");
        assert_eq!(
            engine.classify(&graphs[0]).unwrap_err(),
            Error::DeadlineExceeded
        );
        assert_eq!(engine.stats().expired, 1);
    }

    #[test]
    fn healthy_engine_reports_no_resilience_events() {
        let (engine, graphs) = toy_engine(512, 8, 4);
        for graph in &graphs {
            engine.classify(graph).expect("engine alive");
        }
        let stats = engine.stats();
        assert!(!stats.poisoned);
        assert!(!engine.is_poisoned());
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.dispatcher_restarts, 0);
    }

    #[test]
    fn concurrent_shutdowns_both_observe_a_drained_engine() {
        // The drop/shutdown race fix: whichever caller loses the join
        // race must still block until the drain completes.
        let (engine, graphs) = toy_engine(512, 4, 2);
        let clone = engine.clone();
        std::thread::scope(|scope| {
            let submitters: Vec<_> = (0..3)
                .map(|_| {
                    let engine = engine.clone();
                    let graphs = &graphs;
                    scope.spawn(move || {
                        for graph in graphs {
                            let _ = engine.classify(graph);
                        }
                    })
                })
                .collect();
            scope.spawn(move || clone.shutdown());
            scope.spawn(|| engine.shutdown());
            for submitter in submitters {
                submitter.join().expect("submitter exits");
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.queued, 0);
        assert_eq!(
            stats.accepted,
            stats.completed + stats.failed + stats.expired
        );
    }

    #[test]
    fn from_model_serves_an_existing_model() {
        let (graphs, labels) = toy();
        let config = GraphHdConfig::builder()
            .dim(1024)
            .build()
            .expect("valid dimension");
        let model = GraphHdModel::fit(config, &graphs, &labels, 2).expect("valid inputs");
        let expected = model.predict_batch(&graphs);
        let engine = Engine::builder()
            .threads(2)
            .from_model(model)
            .expect("valid knobs");
        assert_eq!(
            engine.classify_batch(&graphs).expect("engine alive"),
            expected
        );
        assert_eq!(engine.pending(), 0);
    }
}
