//! Hyperdimensional computing (HDC) substrate.
//!
//! This crate implements the representation and the three fundamental HDC
//! operations that GraphHD (Nunes et al., DATE 2022, Section III) builds on:
//!
//! - [`Hypervector`] — a *bipolar* vector in {+1, −1}^d, stored one bit per
//!   dimension so that **binding** (element-wise multiplication) is a word
//!   XOR and similarity reduces to popcounts.
//! - [`Accumulator`] — signed per-dimension counters implementing
//!   **bundling** (element-wise majority voting) exactly, including explicit
//!   [`TieBreak`] policies for the even-count ties the paper leaves
//!   unspecified.
//! - [`Hypervector::permute`] — the **permutation** operation (circular
//!   shift), completing Kanerva's operation triple.
//! - [`ItemMemory`] / [`CachedItemMemory`] — deterministic basis
//!   ("item") hypervector generation: the hypervector for symbol *i* is a
//!   pure function of `(seed, i)`, so independent processes agree on the
//!   basis without sharing state.
//! - [`ClassMemory`] — a word-interleaved layout for one-query-to-many
//!   similarity scoring (the associative-memory lookup of HDC inference),
//!   streaming each query word once across a block of stored vectors.
//!
//! The word-level kernels underneath (`XOR`+popcount, counter updates,
//! thresholding, sign packing) are runtime-dispatched through
//! [`Backend`]: an AVX2+POPCNT implementation is selected when the CPU
//! supports it, a portable Harley–Seal scalar reference otherwise, and
//! setting `GRAPHHD_FORCE_SCALAR=1` pins the scalar path for
//! differential testing. All backends are bit-identical by contract and
//! by test.
//!
//! # Examples
//!
//! Bind two random hypervectors and verify quasi-orthogonality, the
//! statistical property HDC encodings rely on:
//!
//! ```
//! use hdvec::ItemMemory;
//!
//! let memory = ItemMemory::new(10_000, 42)?;
//! let a = memory.hypervector(0);
//! let b = memory.hypervector(1);
//! let edge = a.bind(&b);
//! // The bound vector is quasi-orthogonal to both operands.
//! assert!(edge.cosine(&a).abs() < 0.05);
//! assert!(edge.cosine(&b).abs() < 0.05);
//! // Binding is self-inverse: unbinding recovers the other operand.
//! assert_eq!(edge.bind(&a), b);
//! # Ok::<(), hdvec::HdvError>(())
//! ```

// Unsafe code is allowed only in vetted leaf modules, and even
// there every unsafe operation inside an `unsafe fn` must sit in
// an explicit `unsafe {}` block with its own `// SAFETY:` record.
#![deny(unsafe_op_in_unsafe_fn)]

mod accumulator;
pub mod backend;
mod bitslice;
mod class_memory;
mod error;
mod hypervector;
mod item_memory;
mod level_memory;

pub use accumulator::{Accumulator, TieBreak};
pub use backend::Backend;
pub use bitslice::BitSliceAccumulator;
pub use class_memory::ClassMemory;
pub use error::HdvError;
pub use hypervector::Hypervector;
pub use item_memory::{CachedItemMemory, ItemMemory};
pub use level_memory::LevelMemory;

/// The hypervector dimensionality used by the paper in all experiments
/// (Section V: "GraphHD uses 10,000-dimensional bipolar hypervectors").
pub const DEFAULT_DIM: usize = 10_000;

/// Bundles an iterator of hypervectors into their element-wise majority.
///
/// This is the `bundle(·)` of the paper's Algorithm 1: ties (possible when
/// an even number of vectors is bundled) are resolved by `tie_break`.
///
/// # Errors
///
/// Returns [`HdvError::EmptyBundle`] if the iterator is empty and
/// [`HdvError::DimensionMismatch`] if the vectors disagree on dimension.
///
/// # Examples
///
/// ```
/// use hdvec::{bundle, ItemMemory, TieBreak};
///
/// let memory = ItemMemory::new(10_000, 7)?;
/// let vs: Vec<_> = (0..5).map(|i| memory.hypervector(i)).collect();
/// let sum = bundle(vs.iter(), TieBreak::Positive)?;
/// // The bundle is similar to each of its (quasi-orthogonal) inputs.
/// for v in &vs {
///     assert!(sum.cosine(v) > 0.2);
/// }
/// # Ok::<(), hdvec::HdvError>(())
/// ```
pub fn bundle<'a, I>(vectors: I, tie_break: TieBreak) -> Result<Hypervector, HdvError>
where
    I: IntoIterator<Item = &'a Hypervector>,
{
    let mut iter = vectors.into_iter();
    let first = iter.next().ok_or(HdvError::EmptyBundle)?;
    let mut acc = Accumulator::new(first.dim())?;
    acc.add(first);
    for v in iter {
        if v.dim() != first.dim() {
            return Err(HdvError::DimensionMismatch {
                left: first.dim(),
                right: v.dim(),
            });
        }
        acc.add(v);
    }
    Ok(acc.to_hypervector(tie_break))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_of_one_is_identity() {
        let memory = ItemMemory::new(256, 1).unwrap();
        let v = memory.hypervector(3);
        let out = bundle([&v], TieBreak::Positive).unwrap();
        assert_eq!(out, v);
    }

    #[test]
    fn bundle_empty_errors() {
        let out = bundle([], TieBreak::Positive);
        assert!(matches!(out, Err(HdvError::EmptyBundle)));
    }

    #[test]
    fn bundle_dimension_mismatch_errors() {
        let a = ItemMemory::new(128, 1).unwrap().hypervector(0);
        let b = ItemMemory::new(256, 1).unwrap().hypervector(0);
        let out = bundle([&a, &b], TieBreak::Positive);
        assert!(matches!(out, Err(HdvError::DimensionMismatch { .. })));
    }

    #[test]
    fn bundle_majority_of_three() {
        let memory = ItemMemory::new(512, 9).unwrap();
        let a = memory.hypervector(0);
        let b = memory.hypervector(1);
        // Majority of {a, a, b} is a at every dimension (2 votes vs 1).
        let out = bundle([&a, &a, &b], TieBreak::Positive).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn default_dim_matches_paper() {
        assert_eq!(DEFAULT_DIM, 10_000);
    }
}
