//! Correlated "level" hypervectors for encoding scalar magnitudes.
//!
//! An [`ItemMemory`](crate::ItemMemory) makes every index quasi-orthogonal
//! to every other — the right property for *categorical* symbols, and the
//! wrong one for *magnitudes*, where nearby values should stay similar.
//! A [`LevelMemory`] covers the magnitude case with the standard HDC
//! level-hypervector scheme: level 0 is a random base vector, and each
//! subsequent level flips the next slice of a fixed random index
//! permutation, so adjacent levels are highly correlated while the
//! extreme levels are quasi-orthogonal (half the bits differ).

use crate::{HdvError, Hypervector};
use prng::{mix_seed, WordRng, Xoshiro256PlusPlus};

/// A deterministic family of correlated level hypervectors.
///
/// The whole family is a pure function of `(dim, levels, seed)`: two
/// memories built from equal parameters produce bit-identical vectors on
/// any machine, the same reproducibility contract as
/// [`ItemMemory`](crate::ItemMemory). Unlike an item memory the family is
/// materialised eagerly — `levels × dim` bits is small for any sensible
/// quantization depth, and encoders index levels in hot loops.
///
/// # Examples
///
/// ```
/// use hdvec::LevelMemory;
///
/// let memory = LevelMemory::new(10_000, 16, 7)?;
/// // Adjacent levels correlate; extreme levels are quasi-orthogonal.
/// let lo = memory.hypervector(0);
/// assert!(lo.cosine(memory.hypervector(1)) > 0.9);
/// assert!(lo.cosine(memory.hypervector(15)).abs() < 0.05);
/// // Scalars in [0, 1] quantize onto the level axis.
/// assert_eq!(memory.quantize(0.0), 0);
/// assert_eq!(memory.quantize(1.0), 15);
/// # Ok::<(), hdvec::HdvError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMemory {
    dim: usize,
    seed: u64,
    vectors: Vec<Hypervector>,
}

impl LevelMemory {
    /// Creates a level memory of `levels` correlated `dim`-dimensional
    /// hypervectors.
    ///
    /// Level `i` flips the first `i · d / (2(L−1))` indices of a seeded
    /// random permutation of the base vector, so the last level differs
    /// from the first in exactly half the positions.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0` and
    /// [`HdvError::TooFewLevels`] if `levels < 2` (a single level cannot
    /// express a magnitude).
    pub fn new(dim: usize, levels: usize, seed: u64) -> Result<Self, HdvError> {
        if dim == 0 {
            return Err(HdvError::ZeroDimension);
        }
        if levels < 2 {
            return Err(HdvError::TooFewLevels { levels });
        }
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(seed, 0));
        let base = Hypervector::random(dim, &mut rng)?;
        let mut order: Vec<usize> = (0..dim).collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(seed, 1));
        rng.shuffle(&mut order);
        let mut vectors = Vec::with_capacity(levels);
        let mut current = base;
        let mut flipped = 0usize;
        for level in 0..levels {
            // Cumulative flip count for this level; the increment is the
            // slice of the permutation between the previous target and
            // this one, so `current` evolves instead of restarting.
            let target = level * (dim / 2) / (levels - 1);
            current.flip_indices(&order[flipped..target]);
            flipped = target;
            vectors.push(current.clone());
        }
        Ok(Self { dim, seed, vectors })
    }

    /// The dimensionality of the level hypervectors.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.vectors.len()
    }

    /// The base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The hypervector of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`; quantize with
    /// [`quantize`](Self::quantize) to stay in range.
    #[must_use]
    pub fn hypervector(&self, level: usize) -> &Hypervector {
        assert!(
            level < self.vectors.len(),
            "level {level} out of range for {} levels",
            self.vectors.len()
        );
        &self.vectors[level]
    }

    /// Maps a scalar in `[0, 1]` onto a level index.
    ///
    /// Values are clamped: anything `<= 0` (including NaN) maps to level
    /// 0 and anything `>= 1` to the last level, so arbitrary feature
    /// values never panic downstream.
    #[must_use]
    pub fn quantize(&self, value: f64) -> usize {
        // `is_sign_positive` alone would admit NaN; this branch sends
        // NaN and every non-positive value to level 0.
        if value.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater) {
            return 0;
        }
        let scaled = (value * self.vectors.len() as f64) as usize;
        scaled.min(self.vectors.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert_eq!(
            LevelMemory::new(0, 4, 1).unwrap_err(),
            HdvError::ZeroDimension
        );
        assert_eq!(
            LevelMemory::new(128, 1, 1).unwrap_err(),
            HdvError::TooFewLevels { levels: 1 }
        );
        assert_eq!(
            LevelMemory::new(128, 0, 1).unwrap_err(),
            HdvError::TooFewLevels { levels: 0 }
        );
    }

    #[test]
    fn deterministic_for_equal_parameters() {
        let a = LevelMemory::new(1024, 8, 42).expect("valid");
        let b = LevelMemory::new(1024, 8, 42).expect("valid");
        assert_eq!(a, b);
        let c = LevelMemory::new(1024, 8, 43).expect("valid");
        assert_ne!(a.hypervector(0), c.hypervector(0));
    }

    #[test]
    fn correlation_decays_monotonically_from_the_base() {
        let m = LevelMemory::new(10_000, 10, 7).expect("valid");
        let base = m.hypervector(0);
        let mut last = 1.1f64;
        for level in 1..m.levels() {
            let cos = base.cosine(m.hypervector(level));
            assert!(cos < last, "level {level}: {cos} !< {last}");
            last = cos;
        }
        // Extremes differ in exactly half the positions: cosine 0.
        assert!(base.cosine(m.hypervector(9)).abs() < 1e-9);
    }

    #[test]
    fn adjacent_levels_are_more_similar_than_distant_ones() {
        let m = LevelMemory::new(4096, 16, 3).expect("valid");
        let mid = m.hypervector(8);
        assert!(mid.cosine(m.hypervector(9)) > mid.cosine(m.hypervector(15)));
        assert!(mid.cosine(m.hypervector(7)) > mid.cosine(m.hypervector(0)));
    }

    #[test]
    fn quantize_covers_and_clamps() {
        let m = LevelMemory::new(256, 4, 1).expect("valid");
        assert_eq!(m.quantize(-1.0), 0);
        assert_eq!(m.quantize(0.0), 0);
        assert_eq!(m.quantize(0.24), 0);
        assert_eq!(m.quantize(0.26), 1);
        assert_eq!(m.quantize(0.99), 3);
        assert_eq!(m.quantize(1.0), 3);
        assert_eq!(m.quantize(2.5), 3);
        assert_eq!(m.quantize(f64::NAN), 0);
        // Every level is reachable.
        let hit: std::collections::HashSet<usize> =
            (0..=100).map(|i| m.quantize(i as f64 / 100.0)).collect();
        assert_eq!(hit.len(), m.levels());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_panics() {
        let m = LevelMemory::new(64, 2, 1).expect("valid");
        let _ = m.hypervector(2);
    }
}
