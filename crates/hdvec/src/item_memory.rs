//! Deterministic basis ("item") hypervector memories.

use crate::{HdvError, Hypervector};
use prng::{mix_seed, Xoshiro256PlusPlus};

/// A deterministic, conceptually infinite set of random basis hypervectors.
///
/// The hypervector for item `i` is a pure function of `(seed, i)`: each item
/// gets its own PRNG stream via [`prng::mix_seed`]. This is how GraphHD's
/// vertex basis set H_v is realised — rank *r* across all graphs maps to
/// `memory.hypervector(r)` without ever materialising the whole basis.
///
/// Distinct items are quasi-orthogonal with overwhelming probability, the
/// property the paper requires of categorical value hypervectors
/// (δ(Vi, Vj) ≃ 0 for i ≠ j).
///
/// # Examples
///
/// ```
/// use hdvec::ItemMemory;
///
/// let memory = ItemMemory::new(10_000, 99)?;
/// // Same (seed, index) — same hypervector, even across processes.
/// assert_eq!(memory.hypervector(5), memory.hypervector(5));
/// // Different indices — quasi-orthogonal.
/// let sim = memory.hypervector(0).cosine(&memory.hypervector(1));
/// assert!(sim.abs() < 0.05);
/// # Ok::<(), hdvec::HdvError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItemMemory {
    dim: usize,
    seed: u64,
}

impl ItemMemory {
    /// Creates an item memory producing `dim`-dimensional hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Result<Self, HdvError> {
        if dim == 0 {
            return Err(HdvError::ZeroDimension);
        }
        Ok(Self { dim, seed })
    }

    /// The dimensionality of produced hypervectors.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the basis hypervector for `index`.
    #[must_use]
    pub fn hypervector(&self, index: u64) -> Hypervector {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(self.seed, index));
        Hypervector::random(self.dim, &mut rng).expect("dimension already validated")
    }
}

/// An [`ItemMemory`] with a growable cache of generated hypervectors, for
/// hot loops that repeatedly touch the same low indices (e.g. encoding all
/// graphs of a dataset, where ranks 0..max_n recur constantly).
///
/// # Examples
///
/// ```
/// use hdvec::CachedItemMemory;
///
/// let mut memory = CachedItemMemory::new(10_000, 99)?;
/// let first = memory.hypervector(3).clone();
/// let again = memory.hypervector(3).clone();
/// assert_eq!(first, again);
/// # Ok::<(), hdvec::HdvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CachedItemMemory {
    inner: ItemMemory,
    cache: Vec<Hypervector>,
}

impl CachedItemMemory {
    /// Creates an empty cached memory.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Result<Self, HdvError> {
        Ok(Self {
            inner: ItemMemory::new(dim, seed)?,
            cache: Vec::new(),
        })
    }

    /// Creates a cached memory with the first `prefill` items generated
    /// eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn with_prefill(dim: usize, seed: u64, prefill: usize) -> Result<Self, HdvError> {
        let mut mem = Self::new(dim, seed)?;
        mem.ensure(prefill);
        Ok(mem)
    }

    /// The dimensionality of produced hypervectors.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Number of currently cached items.
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Returns the hypervector for `index`, generating and caching it (and
    /// any missing predecessors) on first use.
    pub fn hypervector(&mut self, index: usize) -> &Hypervector {
        self.ensure(index + 1);
        &self.cache[index]
    }

    /// Ensures at least `len` items are cached.
    pub fn ensure(&mut self, len: usize) {
        while self.cache.len() < len {
            let next = self.cache.len() as u64;
            self.cache.push(self.inner.hypervector(next));
        }
    }

    /// A shared view of the underlying deterministic memory.
    #[must_use]
    pub fn as_item_memory(&self) -> ItemMemory {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            ItemMemory::new(0, 1),
            Err(HdvError::ZeroDimension)
        ));
        assert!(matches!(
            CachedItemMemory::new(0, 1),
            Err(HdvError::ZeroDimension)
        ));
    }

    #[test]
    fn deterministic_per_index() {
        let m = ItemMemory::new(512, 21).unwrap();
        assert_eq!(m.hypervector(9), m.hypervector(9));
    }

    #[test]
    fn distinct_indices_distinct_vectors() {
        let m = ItemMemory::new(10_000, 22).unwrap();
        let a = m.hypervector(0);
        let b = m.hypervector(1);
        assert_ne!(a, b);
        assert!(a.cosine(&b).abs() < 0.05);
    }

    #[test]
    fn distinct_seeds_distinct_bases() {
        let m1 = ItemMemory::new(1024, 1).unwrap();
        let m2 = ItemMemory::new(1024, 2).unwrap();
        assert_ne!(m1.hypervector(0), m2.hypervector(0));
    }

    #[test]
    fn pairwise_quasi_orthogonality_over_many_items() {
        let m = ItemMemory::new(10_000, 23).unwrap();
        let items: Vec<_> = (0..20).map(|i| m.hypervector(i)).collect();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let sim = items[i].cosine(&items[j]);
                assert!(sim.abs() < 0.06, "items {i} and {j} too similar: {sim}");
            }
        }
    }

    #[test]
    fn cache_matches_uncached() {
        let plain = ItemMemory::new(256, 24).unwrap();
        let mut cached = CachedItemMemory::new(256, 24).unwrap();
        for i in [5usize, 2, 7, 5, 0] {
            assert_eq!(cached.hypervector(i), &plain.hypervector(i as u64));
        }
        assert_eq!(cached.cached_len(), 8);
    }

    #[test]
    fn prefill_generates_eagerly() {
        let cached = CachedItemMemory::with_prefill(128, 25, 10).unwrap();
        assert_eq!(cached.cached_len(), 10);
    }
}
