//! Runtime-dispatched kernel backends for the packed-word hot paths.
//!
//! Every similarity, bundling and packing operation in this crate reduces
//! to a handful of bulk kernels over `u64` words (XOR+popcount, signed
//! counter updates, thresholding, sign packing). This module provides two
//! implementations of each:
//!
//! - **Scalar** — portable Rust, the *source of truth*. The popcount
//!   kernels use an unrolled Harley–Seal carry-save-adder tree (16 words
//!   per round), which cuts the number of `count_ones` invocations ~4×;
//!   that matters on targets where `count_ones` lowers to the SWAR
//!   bit-twiddling sequence rather than a `popcnt` instruction.
//! - **Avx2** — `std::arch` intrinsics (AVX2 + POPCNT, via the positional
//!   nibble-lookup popcount of Muła et al.), selected at runtime with
//!   `is_x86_feature_detected!`.
//!
//! Dispatch happens once per process: [`Backend::active`] caches the
//! detected backend, and setting the environment variable
//! `GRAPHHD_FORCE_SCALAR` (to anything but `0` or the empty string)
//! pins the scalar reference — the differential-testing and
//! benchmarking switch. Tests compare backends directly by value:
//! [`Backend::scalar`] versus every entry of [`Backend::available`], so
//! they do not depend on process-global environment state.
//!
//! The SIMD paths are required to be **bit-identical** to the scalar
//! reference for every input; `tests/backend_differential.rs` enforces
//! this across word-boundary dimension grids.

// The workspace denies `unsafe_code`; `std::arch` intrinsics are unsafe
// by construction, so this one module opts out. Every unsafe block must
// still carry a SAFETY comment (clippy::undocumented_unsafe_blocks is
// denied workspace-wide).
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Number of vectors interleaved per block by
/// [`ClassMemory`](crate::ClassMemory); the block kernels below are
/// written against this width (8 × u64 = two 256-bit lanes).
pub const BLOCK_LANES: usize = 8;

/// Tie-resolution input for the [`Backend::threshold`] kernel: for each
/// 64-counter chunk, the word whose bits decide zero-count dimensions.
#[derive(Debug, Clone, Copy)]
pub enum TieWords<'a> {
    /// Every chunk uses the same tie word (all-zeros resolves ties to +1,
    /// all-ones to −1).
    Constant(u64),
    /// Chunk `i` uses `pattern[i]` (the seeded pseudo-random policy).
    Pattern(&'a [u64]),
}

impl TieWords<'_> {
    #[inline]
    fn word(&self, chunk: usize) -> u64 {
        match self {
            TieWords::Constant(w) => *w,
            TieWords::Pattern(p) => p[chunk],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

/// A kernel implementation selected at runtime.
///
/// The inner kind is private so that the AVX2 variant can only be
/// obtained through [`Backend::detect`] / [`Backend::available`], both of
/// which verify the CPU features first — that containment is what makes
/// the `unsafe` intrinsic calls below sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend(Kind);

impl Backend {
    /// The portable scalar reference backend (always available).
    #[must_use]
    pub fn scalar() -> Self {
        Backend(Kind::Scalar)
    }

    /// The fastest backend supported by the running CPU.
    #[must_use]
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
                return Backend(Kind::Avx2);
            }
        }
        Backend(Kind::Scalar)
    }

    /// Every backend usable on the running CPU, scalar first — the
    /// iteration set for differential tests.
    #[must_use]
    pub fn available() -> Vec<Backend> {
        let mut backends = vec![Backend::scalar()];
        let best = Backend::detect();
        if best != Backend::scalar() {
            backends.push(best);
        }
        backends
    }

    /// The process-wide backend: [`detect`](Self::detect), unless
    /// `GRAPHHD_FORCE_SCALAR` pins the scalar reference. Resolved once
    /// and cached.
    #[must_use]
    pub fn active() -> Self {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(|| match std::env::var("GRAPHHD_FORCE_SCALAR") {
            Ok(v) if !v.is_empty() && v != "0" => Backend::scalar(),
            _ => Backend::detect(),
        })
    }

    /// A short human-readable name (`"scalar"` / `"avx2"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self.0 {
            Kind::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Kind::Avx2 => "avx2",
        }
    }

    /// Whether this backend uses explicit SIMD intrinsics.
    #[must_use]
    pub fn is_simd(self) -> bool {
        self != Backend::scalar()
    }

    /// Fused XOR + popcount over two equal-length word slices — the
    /// Hamming-distance kernel.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[must_use]
    pub fn hamming(self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len(), "hamming kernel needs equal word counts");
        match self.0 {
            Kind::Scalar => scalar::hamming(a, b),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` values are only created by `detect()`
            // after `is_x86_feature_detected!` confirmed AVX2 and POPCNT.
            Kind::Avx2 => unsafe { avx2::hamming(a, b) },
        }
    }

    /// Popcount over a word slice (the `count_negative` kernel).
    #[must_use]
    pub fn popcount(self, words: &[u64]) -> u64 {
        match self.0 {
            Kind::Scalar => scalar::popcount(words),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` implies runtime-verified AVX2+POPCNT.
            Kind::Avx2 => unsafe { avx2::popcount(words) },
        }
    }

    /// In-place XOR (`dst[i] ^= src[i]`) — the binding kernel.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn xor_assign(self, dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "xor kernel needs equal word counts");
        match self.0 {
            Kind::Scalar => scalar::xor_assign(dst, src),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` implies runtime-verified AVX2+POPCNT.
            Kind::Avx2 => unsafe { avx2::xor_assign(dst, src) },
        }
    }

    /// Signed counter update: `counts[i] += weight` where bit `i` of
    /// `words` is clear, `counts[i] -= weight` where it is set. `counts`
    /// may be shorter than `64 * words.len()` (partial tail word); bits
    /// beyond `counts.len()` must be clear, which is the hypervector
    /// storage invariant.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly `counts.len().div_ceil(64)` long.
    pub fn add_weighted(self, counts: &mut [i32], words: &[u64], weight: i32) {
        assert_eq!(
            words.len(),
            counts.len().div_ceil(64),
            "counter update needs one word per 64 counters"
        );
        match self.0 {
            Kind::Scalar => scalar::add_weighted(counts, words, weight),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` implies runtime-verified AVX2+POPCNT.
            Kind::Avx2 => unsafe { avx2::add_weighted(counts, words, weight) },
        }
    }

    /// Thresholds signed counters into packed sign words: bit `i` of the
    /// output is 1 (component −1) when `counts[i] < 0`, 0 when positive,
    /// and takes the matching bit of `tie` when the counter is zero.
    /// Output bits beyond `counts.len()` are clear.
    ///
    /// # Panics
    ///
    /// Panics if a [`TieWords::Pattern`] holds fewer than one word per
    /// 64-counter chunk.
    #[must_use]
    pub fn threshold(self, counts: &[i32], tie: TieWords<'_>) -> Vec<u64> {
        if let TieWords::Pattern(pattern) = tie {
            assert!(
                pattern.len() >= counts.len().div_ceil(64),
                "tie pattern needs one word per 64 counters"
            );
        }
        match self.0 {
            Kind::Scalar => scalar::threshold(counts, tie),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` implies runtime-verified AVX2+POPCNT.
            Kind::Avx2 => unsafe { avx2::threshold(counts, tie) },
        }
    }

    /// Packs ±1 components into sign words (bit = 1 ⇔ −1). On the first
    /// value that is neither +1 nor −1, returns `Err((index, value))`.
    ///
    /// # Errors
    ///
    /// Returns the index and value of the first invalid component.
    pub fn pack_components(self, components: &[i8]) -> Result<Vec<u64>, (usize, i8)> {
        match self.0 {
            Kind::Scalar => scalar::pack_components(components),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` implies runtime-verified AVX2+POPCNT.
            Kind::Avx2 => unsafe { avx2::pack_components(components) },
        }
    }

    /// The multi-query building block: accumulates, for each of the
    /// [`BLOCK_LANES`] vectors interleaved in `block`
    /// (`block[w * BLOCK_LANES + lane]` is word `w` of vector `lane`),
    /// the XOR-popcount against `query` into `acc`. Each query word is
    /// loaded once and streamed across all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != query.len() * BLOCK_LANES`.
    pub fn hamming_block(self, query: &[u64], block: &[u64], acc: &mut [u64; BLOCK_LANES]) {
        assert_eq!(
            block.len(),
            query.len() * BLOCK_LANES,
            "interleaved block must hold BLOCK_LANES words per query word"
        );
        match self.0 {
            Kind::Scalar => scalar::hamming_block(query, block, acc),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` implies runtime-verified AVX2+POPCNT.
            Kind::Avx2 => unsafe { avx2::hamming_block(query, block, acc) },
        }
    }
}

/// Portable reference kernels. Exact by construction; every other backend
/// is tested bit-identical against these.
mod scalar {
    use super::{TieWords, BLOCK_LANES};

    /// Carry-save adder: compresses three equal-weight words into a sum
    /// word (same weight) and a carry word (double weight).
    #[inline(always)]
    fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
        let partial = a ^ b;
        (partial ^ c, (a & b) | (partial & c))
    }

    /// Harley–Seal popcount over `len` words produced by `word(i)`:
    /// a 16-word CSA tree per round turns 16 `count_ones` calls into one
    /// (plus four at drain time). Exact for any input.
    #[inline(always)]
    fn harley_seal<F: FnMut(usize) -> u64>(len: usize, mut word: F) -> u64 {
        let (mut ones, mut twos, mut fours, mut eights) = (0u64, 0u64, 0u64, 0u64);
        let mut total = 0u64;
        let rounds = len / 16;
        for r in 0..rounds {
            let base = r * 16;
            let mut twos_a;
            let mut twos_b;
            let mut fours_a;
            let mut fours_b;
            let eights_a;
            let eights_b;
            (ones, twos_a) = csa(ones, word(base), word(base + 1));
            (ones, twos_b) = csa(ones, word(base + 2), word(base + 3));
            (twos, fours_a) = csa(twos, twos_a, twos_b);
            (ones, twos_a) = csa(ones, word(base + 4), word(base + 5));
            (ones, twos_b) = csa(ones, word(base + 6), word(base + 7));
            (twos, fours_b) = csa(twos, twos_a, twos_b);
            (fours, eights_a) = csa(fours, fours_a, fours_b);
            (ones, twos_a) = csa(ones, word(base + 8), word(base + 9));
            (ones, twos_b) = csa(ones, word(base + 10), word(base + 11));
            (twos, fours_a) = csa(twos, twos_a, twos_b);
            (ones, twos_a) = csa(ones, word(base + 12), word(base + 13));
            (ones, twos_b) = csa(ones, word(base + 14), word(base + 15));
            (twos, fours_b) = csa(twos, twos_a, twos_b);
            (fours, eights_b) = csa(fours, fours_a, fours_b);
            let sixteens;
            (eights, sixteens) = csa(eights, eights_a, eights_b);
            total += 16 * u64::from(sixteens.count_ones());
        }
        total += 8 * u64::from(eights.count_ones());
        total += 4 * u64::from(fours.count_ones());
        total += 2 * u64::from(twos.count_ones());
        total += u64::from(ones.count_ones());
        for i in rounds * 16..len {
            total += u64::from(word(i).count_ones());
        }
        total
    }

    pub fn hamming(a: &[u64], b: &[u64]) -> u64 {
        harley_seal(a.len(), |i| a[i] ^ b[i])
    }

    pub fn popcount(words: &[u64]) -> u64 {
        harley_seal(words.len(), |i| words[i])
    }

    pub fn xor_assign(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }

    pub fn add_weighted(counts: &mut [i32], words: &[u64], weight: i32) {
        // Per packed word (bit=1 ⇔ −1): credit every counter with +weight
        // in a branch-free (vectorizable) pass, then walk only the set
        // bits to turn their +weight into −weight. Constant words skip a
        // pass entirely.
        for (word_idx, &word) in words.iter().enumerate() {
            let base = word_idx * 64;
            let upper = usize::min(base + 64, counts.len());
            let chunk = &mut counts[base..upper];
            // Wrapping arithmetic throughout: the SIMD paths wrap on i32
            // overflow by construction, and the backends must stay
            // bit-identical even on that (unreachable in practice) edge.
            if word == 0 {
                for count in chunk.iter_mut() {
                    *count = count.wrapping_add(weight);
                }
            } else if word == !0u64 && chunk.len() == 64 {
                for count in chunk.iter_mut() {
                    *count = count.wrapping_sub(weight);
                }
            } else {
                for count in chunk.iter_mut() {
                    *count = count.wrapping_add(weight);
                }
                let mut bits = word;
                while bits != 0 {
                    // Bits beyond the chunk are clear per the kernel
                    // contract, so every set bit indexes a valid counter.
                    let bit = bits.trailing_zeros() as usize;
                    chunk[bit] = chunk[bit].wrapping_sub(weight).wrapping_sub(weight);
                    bits &= bits - 1;
                }
            }
        }
    }

    pub fn threshold(counts: &[i32], tie: TieWords<'_>) -> Vec<u64> {
        let mut words = Vec::with_capacity(counts.len().div_ceil(64));
        for (chunk_idx, chunk) in counts.chunks(64).enumerate() {
            let tie_word = tie.word(chunk_idx);
            let mut word = 0u64;
            for (bit, &c) in chunk.iter().enumerate() {
                let negative = match c.cmp(&0) {
                    core::cmp::Ordering::Less => true,
                    core::cmp::Ordering::Greater => false,
                    core::cmp::Ordering::Equal => (tie_word >> bit) & 1 == 1,
                };
                word |= u64::from(negative) << bit;
            }
            words.push(word);
        }
        words
    }

    pub fn pack_components(components: &[i8]) -> Result<Vec<u64>, (usize, i8)> {
        let mut words = Vec::with_capacity(components.len().div_ceil(64));
        // Build 64 components per word: the sign bits accumulate in a
        // register instead of read-modify-write cycles through the vector.
        for (word_idx, chunk) in components.chunks(64).enumerate() {
            let mut word = 0u64;
            for (bit, &c) in chunk.iter().enumerate() {
                match c {
                    1 => {}
                    -1 => word |= 1u64 << bit,
                    other => return Err((word_idx * 64 + bit, other)),
                }
            }
            words.push(word);
        }
        Ok(words)
    }

    pub fn hamming_block(query: &[u64], block: &[u64], acc: &mut [u64; BLOCK_LANES]) {
        for (w, &q) in query.iter().enumerate() {
            let base = w * BLOCK_LANES;
            for (lane, slot) in acc.iter_mut().enumerate() {
                *slot += u64::from((q ^ block[base + lane]).count_ones());
            }
        }
    }
}

/// AVX2 + POPCNT kernels. Every function in this module is
/// `#[target_feature]`-gated; callers must have verified the features at
/// runtime (enforced by the private `Kind::Avx2` constructor).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{TieWords, BLOCK_LANES};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256,
        _mm256_castsi256_ps, _mm256_cmpeq_epi32, _mm256_cmpeq_epi8, _mm256_cmpgt_epi32,
        _mm256_extract_epi64, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_movemask_ps,
        _mm256_or_si256, _mm256_sad_epu8, _mm256_set1_epi32, _mm256_set1_epi64x, _mm256_set1_epi8,
        _mm256_setr_epi32, _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8,
        _mm256_srli_epi16, _mm256_storeu_si256, _mm256_sub_epi32, _mm256_xor_si256,
    };

    /// Per-64-bit-lane popcount of a 256-bit vector (Muła's positional
    /// nibble lookup: two `pshufb` table probes summed per byte, then
    /// `psadbw` folds bytes into the four u64 lanes).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn popcnt256(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Sums the four u64 lanes of an accumulator vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum256(v: __m256i) -> u64 {
        let a = _mm256_extract_epi64::<0>(v) as u64;
        let b = _mm256_extract_epi64::<1>(v) as u64;
        let c = _mm256_extract_epi64::<2>(v) as u64;
        let d = _mm256_extract_epi64::<3>(v) as u64;
        a.wrapping_add(b).wrapping_add(c).wrapping_add(d)
    }

    /// # Safety
    ///
    /// The caller must have verified at runtime that the CPU supports
    /// AVX2 and POPCNT, and `b` must be at least as long as `a`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn hamming(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len();
        let vectors = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: `4 * i + 3 < n` holds for every `i < n / 4`, so
            // both unaligned 4-word loads stay inside the slices.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(4 * i).cast()),
                    _mm256_loadu_si256(b.as_ptr().add(4 * i).cast()),
                )
            };
            acc = _mm256_add_epi64(acc, popcnt256(_mm256_xor_si256(va, vb)));
        }
        let mut total = hsum256(acc);
        for i in vectors * 4..n {
            total += u64::from((a[i] ^ b[i]).count_ones());
        }
        total
    }

    /// # Safety
    ///
    /// The caller must have verified at runtime that the CPU supports
    /// AVX2 and POPCNT.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn popcount(words: &[u64]) -> u64 {
        let n = words.len();
        let vectors = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: `4 * i + 3 < n` holds for every `i < n / 4`, so
            // the unaligned 4-word load stays inside the slice.
            let v = unsafe { _mm256_loadu_si256(words.as_ptr().add(4 * i).cast()) };
            acc = _mm256_add_epi64(acc, popcnt256(v));
        }
        let mut total = hsum256(acc);
        for &w in &words[vectors * 4..] {
            total += u64::from(w.count_ones());
        }
        total
    }

    /// # Safety
    ///
    /// The caller must have verified at runtime that the CPU supports
    /// AVX2, and `src` must be at least as long as `dst`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_assign(dst: &mut [u64], src: &[u64]) {
        let n = dst.len();
        let vectors = n / 4;
        for i in 0..vectors {
            // SAFETY: `4 * i + 3 < n` holds for every `i < n / 4`, so
            // the loads and the store stay inside their slices; `dst`
            // and `src` are distinct borrows, so the store cannot alias
            // the `src` load.
            unsafe {
                let d = _mm256_loadu_si256(dst.as_ptr().add(4 * i).cast());
                let s = _mm256_loadu_si256(src.as_ptr().add(4 * i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(4 * i).cast(), _mm256_xor_si256(d, s));
            }
        }
        for i in vectors * 4..n {
            dst[i] ^= src[i];
        }
    }

    /// Expands bits `8*group..8*group+8` of `word` into an 8×i32 all-ones
    /// mask per set bit.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn bit_mask8(word: u64, group: usize) -> __m256i {
        let byte = _mm256_set1_epi32(((word >> (8 * group)) & 0xff) as i32);
        let bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
        _mm256_cmpeq_epi32(_mm256_and_si256(byte, bits), bits)
    }

    /// # Safety
    ///
    /// The caller must have verified at runtime that the CPU supports
    /// AVX2 and POPCNT, and `counts` must hold 64 counters per word of
    /// `words` (`counts.len() >= 64 * words.len()` up to the tail).
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn add_weighted(counts: &mut [i32], words: &[u64], weight: i32) {
        let full = counts.len() / 64;
        let vw = _mm256_set1_epi32(weight);
        for (word_idx, &word) in words.iter().take(full).enumerate() {
            let base = word_idx * 64;
            for group in 0..8 {
                // delta = +w where the bit is clear, −w where set:
                // (w ^ m) − m with m ∈ {0, −1} per lane.
                let mask = bit_mask8(word, group);
                let delta = _mm256_sub_epi32(_mm256_xor_si256(vw, mask), mask);
                // SAFETY: `base + 8 * group + 7 < 64 * full <=
                // counts.len()`, so the 8-counter read-modify-write
                // stays inside `counts`.
                unsafe {
                    let ptr: *mut __m256i = counts.as_mut_ptr().add(base + 8 * group).cast();
                    let cur = _mm256_loadu_si256(ptr);
                    _mm256_storeu_si256(ptr, _mm256_add_epi32(cur, delta));
                }
            }
        }
        if full < words.len() {
            super::scalar::add_weighted(&mut counts[full * 64..], &words[full..], weight);
        }
    }

    /// # Safety
    ///
    /// The caller must have verified at runtime that the CPU supports
    /// AVX2 and POPCNT; `tie` must cover `counts.len()` counters when it
    /// is a pattern.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn threshold(counts: &[i32], tie: TieWords<'_>) -> Vec<u64> {
        let mut words = Vec::with_capacity(counts.len().div_ceil(64));
        let full = counts.len() / 64;
        let zero = _mm256_setzero_si256();
        for chunk_idx in 0..full {
            let tie_word = tie.word(chunk_idx);
            let mut word = 0u64;
            for group in 0..8 {
                // SAFETY: `chunk_idx * 64 + 8 * group + 7 < 64 * full
                // <= counts.len()`, so the 8-counter load stays inside
                // `counts`.
                let c = unsafe {
                    _mm256_loadu_si256(counts.as_ptr().add(chunk_idx * 64 + 8 * group).cast())
                };
                let negative = _mm256_cmpgt_epi32(zero, c);
                let tied =
                    _mm256_and_si256(_mm256_cmpeq_epi32(c, zero), bit_mask8(tie_word, group));
                let m = _mm256_or_si256(negative, tied);
                // movemask over the 8 f32-lane sign bits: one output bit
                // per counter.
                let bits = _mm256_movemask_ps(_mm256_castsi256_ps(m)) as u32 as u64;
                word |= bits << (8 * group);
            }
            words.push(word);
        }
        if full * 64 < counts.len() {
            let tail_tie = match tie {
                TieWords::Constant(w) => TieWords::Constant(w),
                TieWords::Pattern(p) => TieWords::Pattern(&p[full..]),
            };
            words.extend(super::scalar::threshold(&counts[full * 64..], tail_tie));
        }
        words
    }

    /// # Safety
    ///
    /// The caller must have verified at runtime that the CPU supports
    /// AVX2 and POPCNT.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn pack_components(components: &[i8]) -> Result<Vec<u64>, (usize, i8)> {
        let mut words = Vec::with_capacity(components.len().div_ceil(64));
        let full = components.len() / 64;
        let minus = _mm256_set1_epi8(-1);
        let plus = _mm256_set1_epi8(1);
        for word_idx in 0..full {
            let mut word = 0u64;
            for half in 0..2 {
                // SAFETY: `word_idx * 64 + 32 * half + 31 < 64 * full
                // <= components.len()`, so the 32-byte load stays
                // inside `components`.
                let v = unsafe {
                    _mm256_loadu_si256(components.as_ptr().add(word_idx * 64 + 32 * half).cast())
                };
                let neg = _mm256_cmpeq_epi8(v, minus);
                let pos = _mm256_cmpeq_epi8(v, plus);
                let valid = _mm256_movemask_epi8(_mm256_or_si256(neg, pos));
                if valid != -1i32 {
                    let offset = word_idx * 64 + 32 * half + (!valid).trailing_zeros() as usize;
                    return Err((offset, components[offset]));
                }
                let bits = _mm256_movemask_epi8(neg) as u32 as u64;
                word |= bits << (32 * half);
            }
            words.push(word);
        }
        if full * 64 < components.len() {
            match super::scalar::pack_components(&components[full * 64..]) {
                Ok(tail) => words.extend(tail),
                Err((index, value)) => return Err((full * 64 + index, value)),
            }
        }
        Ok(words)
    }

    /// # Safety
    ///
    /// The caller must have verified at runtime that the CPU supports
    /// AVX2 and POPCNT, and `block` must hold [`BLOCK_LANES`] words per
    /// query word (`block.len() >= BLOCK_LANES * query.len()`).
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn hamming_block(query: &[u64], block: &[u64], acc: &mut [u64; BLOCK_LANES]) {
        let mut acc_lo = _mm256_setzero_si256();
        let mut acc_hi = _mm256_setzero_si256();
        for (w, &q) in query.iter().enumerate() {
            let vq = _mm256_set1_epi64x(q as i64);
            let base = w * BLOCK_LANES;
            // SAFETY: the caller guarantees `base + BLOCK_LANES <=
            // block.len()`, so both 4-word loads stay inside `block`.
            let (lo, hi) = unsafe {
                (
                    _mm256_loadu_si256(block.as_ptr().add(base).cast()),
                    _mm256_loadu_si256(block.as_ptr().add(base + 4).cast()),
                )
            };
            acc_lo = _mm256_add_epi64(acc_lo, popcnt256(_mm256_xor_si256(vq, lo)));
            acc_hi = _mm256_add_epi64(acc_hi, popcnt256(_mm256_xor_si256(vq, hi)));
        }
        let mut lanes = [0u64; BLOCK_LANES];
        // SAFETY: `lanes` is exactly `BLOCK_LANES == 8` words, so the
        // two 4-word stores exactly tile it.
        unsafe {
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc_lo);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(4).cast(), acc_hi);
        }
        for (slot, lane) in acc.iter_mut().zip(lanes) {
            *slot += lane;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prng::{SplitMix64, WordRng};

    fn words(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn scalar_is_always_available_and_named() {
        let backends = Backend::available();
        assert_eq!(backends[0], Backend::scalar());
        assert_eq!(Backend::scalar().name(), "scalar");
        assert!(!Backend::scalar().is_simd());
        for b in &backends[1..] {
            assert!(b.is_simd());
        }
    }

    #[test]
    fn active_is_one_of_available() {
        assert!(Backend::available().contains(&Backend::active()));
    }

    #[test]
    fn harley_seal_matches_naive_popcount_at_every_length() {
        // Cover the 16-word round boundary and the drain path.
        for n in [0usize, 1, 15, 16, 17, 31, 32, 33, 48, 100, 157] {
            let a = words(n, 0xA11CE ^ n as u64);
            let naive: u64 = a.iter().map(|w| u64::from(w.count_ones())).sum();
            assert_eq!(Backend::scalar().popcount(&a), naive, "n={n}");
        }
    }

    #[test]
    fn scalar_hamming_matches_naive() {
        for n in [0usize, 1, 16, 17, 157] {
            let a = words(n, 1);
            let b = words(n, 2);
            let naive: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum();
            assert_eq!(Backend::scalar().hamming(&a, &b), naive, "n={n}");
        }
    }

    #[test]
    fn every_backend_agrees_on_core_kernels() {
        let reference = Backend::scalar();
        for backend in Backend::available() {
            for n in [0usize, 1, 3, 4, 5, 16, 31, 157, 1563] {
                let a = words(n, 7 ^ n as u64);
                let b = words(n, 9 ^ n as u64);
                assert_eq!(
                    backend.hamming(&a, &b),
                    reference.hamming(&a, &b),
                    "{} hamming n={n}",
                    backend.name()
                );
                assert_eq!(
                    backend.popcount(&a),
                    reference.popcount(&a),
                    "{} popcount n={n}",
                    backend.name()
                );
                let mut x = a.clone();
                let mut y = a.clone();
                backend.xor_assign(&mut x, &b);
                reference.xor_assign(&mut y, &b);
                assert_eq!(x, y, "{} xor n={n}", backend.name());
            }
        }
    }

    #[test]
    fn every_backend_agrees_on_counter_kernels() {
        let reference = Backend::scalar();
        for backend in Backend::available() {
            for dim in [1usize, 63, 64, 65, 127, 128, 500] {
                let packed: Vec<u64> = {
                    let mut w = words(dim.div_ceil(64), dim as u64);
                    // Clear tail bits to honor the kernel contract.
                    if dim % 64 != 0 {
                        let last = w.last_mut().unwrap();
                        *last &= (1u64 << (dim % 64)) - 1;
                    }
                    w
                };
                for weight in [1i32, -1, 5, -17] {
                    let mut a = vec![3i32; dim];
                    let mut b = vec![3i32; dim];
                    backend.add_weighted(&mut a, &packed, weight);
                    reference.add_weighted(&mut b, &packed, weight);
                    assert_eq!(a, b, "{} add_weighted dim={dim}", backend.name());
                }
                let counts: Vec<i32> = (0..dim).map(|i| (i as i32 % 5) - 2).collect();
                let pattern = words(dim.div_ceil(64), 99);
                for tie in [
                    TieWords::Constant(0),
                    TieWords::Constant(!0),
                    TieWords::Pattern(&pattern),
                ] {
                    assert_eq!(
                        backend.threshold(&counts, tie),
                        reference.threshold(&counts, tie),
                        "{} threshold dim={dim}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pack_components_reports_first_invalid_index() {
        for backend in Backend::available() {
            let mut comps = vec![1i8; 130];
            comps[67] = -1;
            let packed = backend.pack_components(&comps).expect("valid input");
            assert_eq!(packed[1] & (1 << 3), 1 << 3, "{}", backend.name());
            comps[100] = 0;
            comps[120] = 7;
            assert_eq!(
                backend.pack_components(&comps),
                Err((100, 0)),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn hamming_block_matches_per_lane_hamming() {
        let reference = Backend::scalar();
        for backend in Backend::available() {
            for nwords in [0usize, 1, 2, 157] {
                let query = words(nwords, 5);
                let block = words(nwords * BLOCK_LANES, 6);
                let mut acc = [1u64; BLOCK_LANES];
                backend.hamming_block(&query, &block, &mut acc);
                for lane in 0..BLOCK_LANES {
                    let lane_words: Vec<u64> =
                        (0..nwords).map(|w| block[w * BLOCK_LANES + lane]).collect();
                    assert_eq!(
                        acc[lane],
                        1 + reference.hamming(&query, &lane_words),
                        "{} lane {lane} nwords {nwords}",
                        backend.name()
                    );
                }
            }
        }
    }
}
