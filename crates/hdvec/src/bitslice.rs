//! Bit-sliced ("vertical counter") bundling.
//!
//! Bundling m hypervectors needs, per dimension, the count of −1
//! components. [`Accumulator`](crate::Accumulator) keeps one `i32` per
//! dimension, costing d integer updates per bundled vector. This module
//! instead keeps the per-dimension counts *in binary across bit-planes*:
//! plane k holds bit k of every dimension's count, so adding one
//! hypervector is a ripple-carry increment over whole 64-bit words —
//! amortized **two word operations per word of the input**, a ~20×
//! speed-up that mirrors the "binarized bundling" hardware optimization
//! of Schmuck et al. (JETC 2019), which the paper cites as the HDC
//! efficiency enabler.
//!
//! The result converts losslessly to an [`Accumulator`], so thresholding
//! and tie-breaking behave identically to the reference path; the
//! equivalence is property-tested.

use crate::{Accumulator, HdvError, Hypervector};

/// A bundling accumulator storing per-dimension −1 counts in bit-planes.
///
/// Supports only *addition* of hypervectors (counts are unsigned); for
/// signed updates (retraining) use [`Accumulator`].
///
/// # Examples
///
/// ```
/// use hdvec::{Accumulator, BitSliceAccumulator, ItemMemory, TieBreak};
///
/// let memory = ItemMemory::new(10_000, 1)?;
/// let mut fast = BitSliceAccumulator::new(10_000)?;
/// let mut reference = Accumulator::new(10_000)?;
/// for i in 0..9 {
///     let hv = memory.hypervector(i);
///     fast.add(&hv);
///     reference.add(&hv);
/// }
/// assert_eq!(fast.to_accumulator(), reference);
/// # Ok::<(), hdvec::HdvError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSliceAccumulator {
    dim: usize,
    words: usize,
    /// `planes[k][w]` holds bit k of the count for the 64 dimensions of
    /// word w.
    planes: Vec<Vec<u64>>,
    added: u64,
    /// Scratch carry buffer reused across adds.
    carry: Vec<u64>,
}

impl BitSliceAccumulator {
    /// Creates an empty bit-sliced accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, HdvError> {
        if dim == 0 {
            return Err(HdvError::ZeroDimension);
        }
        let words = dim.div_ceil(64);
        Ok(Self {
            dim,
            words,
            planes: Vec::new(),
            added: 0,
            carry: vec![0u64; words],
        })
    }

    /// The dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of hypervectors bundled so far.
    #[must_use]
    pub fn added(&self) -> u64 {
        self.added
    }

    /// Number of bit-planes currently allocated (⌈log₂(added+1)⌉).
    #[must_use]
    pub fn plane_count(&self) -> usize {
        self.planes.len()
    }

    /// Adds one vote of `hv`: per dimension, the −1 count increments when
    /// the component is −1 (ripple-carry binary increment per bit-plane).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add(&mut self, hv: &Hypervector) {
        assert_eq!(
            self.dim,
            hv.dim(),
            "cannot accumulate a {}-dimensional hypervector into a {}-dimensional accumulator",
            hv.dim(),
            self.dim
        );
        self.carry.copy_from_slice(hv.words());
        for plane in &mut self.planes {
            let mut any_carry = 0u64;
            for (p, c) in plane.iter_mut().zip(&mut self.carry) {
                let sum = *p ^ *c;
                let out = *p & *c;
                *p = sum;
                *c = out;
                any_carry |= out;
            }
            if any_carry == 0 {
                self.added += 1;
                return;
            }
        }
        // Carry overflowed the top plane: grow by one.
        self.planes.push(self.carry.clone());
        self.added += 1;
    }

    /// Reconstructs the per-dimension −1 counts.
    #[must_use]
    pub fn negative_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.dim];
        for (k, plane) in self.planes.iter().enumerate() {
            for (w, &bits) in plane.iter().enumerate() {
                let mut remaining = bits;
                while remaining != 0 {
                    let bit = remaining.trailing_zeros() as usize;
                    let index = w * 64 + bit;
                    if index < self.dim {
                        counts[index] += 1 << k;
                    }
                    remaining &= remaining - 1;
                }
            }
        }
        counts
    }

    /// Converts to the signed-counter representation: dimension i gets
    /// `added − 2·negative_count(i)` (the +1 votes minus the −1 votes).
    #[must_use]
    pub fn to_accumulator(&self) -> Accumulator {
        let negatives = self.negative_counts();
        let added = self.added;
        let counts: Vec<i32> = negatives
            .into_iter()
            .map(|n| {
                i32::try_from(added).expect("bundle sizes fit i32")
                    - 2 * i32::try_from(n).expect("counts fit i32")
            })
            .collect();
        Accumulator::from_counts(counts, added).expect("dimension validated at construction")
    }

    /// Clears all planes.
    pub fn reset(&mut self) {
        self.planes.clear();
        self.added = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemMemory, TieBreak};

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            BitSliceAccumulator::new(0),
            Err(HdvError::ZeroDimension)
        ));
    }

    #[test]
    fn empty_accumulator_converts_to_zeros() {
        let acc = BitSliceAccumulator::new(100).unwrap().to_accumulator();
        assert!(acc.is_empty());
        assert!(acc.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn matches_reference_accumulator() {
        let memory = ItemMemory::new(777, 3).unwrap();
        let mut fast = BitSliceAccumulator::new(777).unwrap();
        let mut reference = Accumulator::new(777).unwrap();
        for i in 0..33 {
            let hv = memory.hypervector(i);
            fast.add(&hv);
            reference.add(&hv);
        }
        assert_eq!(fast.added(), 33);
        assert_eq!(fast.to_accumulator(), reference);
        // And the thresholded bundles agree for every tie policy.
        for tie in [TieBreak::Positive, TieBreak::Negative, TieBreak::Seeded(5)] {
            assert_eq!(
                fast.to_accumulator().to_hypervector(tie),
                reference.to_hypervector(tie)
            );
        }
    }

    #[test]
    fn plane_count_is_logarithmic() {
        let memory = ItemMemory::new(64, 4).unwrap();
        let mut acc = BitSliceAccumulator::new(64).unwrap();
        for i in 0..100 {
            acc.add(&memory.hypervector(i));
        }
        // 100 adds need at most ceil(log2(101)) = 7 planes.
        assert!(acc.plane_count() <= 7, "planes {}", acc.plane_count());
    }

    #[test]
    fn negative_counts_of_constant_vectors() {
        let dim = 130; // crosses word boundaries
        let neg = Hypervector::negative(dim).unwrap();
        let pos = Hypervector::positive(dim).unwrap();
        let mut acc = BitSliceAccumulator::new(dim).unwrap();
        for _ in 0..5 {
            acc.add(&neg);
        }
        for _ in 0..3 {
            acc.add(&pos);
        }
        let counts = acc.negative_counts();
        assert!(counts.iter().all(|&c| c == 5));
        let signed = acc.to_accumulator();
        assert!(signed.counts().iter().all(|&c| c == 8 - 2 * 5));
    }

    #[test]
    fn reset_clears() {
        let memory = ItemMemory::new(64, 6).unwrap();
        let mut acc = BitSliceAccumulator::new(64).unwrap();
        acc.add(&memory.hypervector(0));
        acc.reset();
        assert_eq!(acc.added(), 0);
        assert_eq!(acc.plane_count(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot accumulate")]
    fn dimension_mismatch_panics() {
        let memory = ItemMemory::new(64, 7).unwrap();
        let mut acc = BitSliceAccumulator::new(128).unwrap();
        acc.add(&memory.hypervector(0));
    }
}
