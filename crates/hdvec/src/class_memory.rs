//! Blocked multi-query similarity memory.
//!
//! Scoring a query against K stored vectors with K separate
//! [`Hypervector::hamming`] calls re-reads the query words K times and
//! re-enters the kernel dispatch K times. [`ClassMemory`] instead stores
//! the vectors **word-interleaved** in blocks of
//! [`BLOCK_LANES`](crate::backend::BLOCK_LANES) lanes — word `w` of the
//! block's lanes sits at `block[w * BLOCK_LANES + lane]` — so
//! [`hamming_many`](ClassMemory::hamming_many) streams each query word
//! once per block across all of its lanes while the per-lane distance
//! accumulators stay in registers (or two SIMD vectors on the AVX2
//! backend). This is the structure-of-arrays "associative memory" layout
//! that HDC inference engines batch their similarity pipelines over, and
//! the substrate `GraphHdModel` scores class vectors on.

use crate::backend::{Backend, BLOCK_LANES};
use crate::{HdvError, Hypervector};

/// A set of same-dimension hypervectors laid out for one-query-to-many
/// similarity scoring.
///
/// # Examples
///
/// ```
/// use hdvec::{ClassMemory, ItemMemory};
///
/// let items = ItemMemory::new(10_000, 42)?;
/// let classes: Vec<_> = (0..23).map(|i| items.hypervector(i)).collect();
/// let memory = ClassMemory::from_vectors(&classes)?;
/// let query = items.hypervector(3);
/// let distances = memory.hamming_many(&query);
/// assert_eq!(distances.len(), 23);
/// assert_eq!(distances[3], 0);
/// assert_eq!(memory.cosine_many(&query)[3], 1.0);
/// # Ok::<(), hdvec::HdvError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassMemory {
    dim: usize,
    words: usize,
    len: usize,
    /// Word-interleaved lane blocks, `words * BLOCK_LANES` words each;
    /// lanes at index ≥ `len` (in the last block) hold zeros and are
    /// never read back.
    blocks: Vec<Vec<u64>>,
    /// The same vectors contiguous, in storage order. A block kernel
    /// always pays for all [`BLOCK_LANES`] lanes, so below one full
    /// block (the binary-classification case) scoring runs per-vector
    /// over these instead — measurably faster at 2 classes, identical
    /// results either way.
    plain: Vec<Hypervector>,
}

impl ClassMemory {
    /// Creates an empty memory for `dim`-dimensional vectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, HdvError> {
        if dim == 0 {
            return Err(HdvError::ZeroDimension);
        }
        Ok(Self {
            dim,
            words: dim.div_ceil(64),
            len: 0,
            blocks: Vec::new(),
            plain: Vec::new(),
        })
    }

    /// Builds a memory holding `vectors`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::EmptyBundle`] for an empty slice (the
    /// dimension would be unknown) and [`HdvError::DimensionMismatch`] if
    /// the vectors disagree on dimension.
    pub fn from_vectors(vectors: &[Hypervector]) -> Result<Self, HdvError> {
        let first = vectors.first().ok_or(HdvError::EmptyBundle)?;
        let mut memory = Self::new(first.dim())?;
        for v in vectors {
            if v.dim() != first.dim() {
                return Err(HdvError::DimensionMismatch {
                    left: first.dim(),
                    right: v.dim(),
                });
            }
            memory.push(v);
        }
        Ok(memory)
    }

    /// The dimensionality of the stored vectors.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no vectors are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a vector (lane `len()` of the interleaved layout).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn push(&mut self, hv: &Hypervector) {
        assert_eq!(
            self.dim,
            hv.dim(),
            "cannot store a {}-dimensional hypervector in a {}-dimensional class memory",
            hv.dim(),
            self.dim
        );
        let lane = self.len % BLOCK_LANES;
        if lane == 0 {
            self.blocks.push(vec![0u64; self.words * BLOCK_LANES]);
        }
        let block = self.blocks.last_mut().expect("block just ensured");
        for (w, &word) in hv.words().iter().enumerate() {
            block[w * BLOCK_LANES + lane] = word;
        }
        self.plain.push(hv.clone());
        self.len += 1;
    }

    /// Replaces the vector at `index` — the retraining hook: a class
    /// vector that was re-thresholded after a perceptron update is
    /// written back into its lane in place.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()` or the dimensions differ.
    pub fn set(&mut self, index: usize, hv: &Hypervector) {
        assert!(
            index < self.len,
            "class memory index {index} out of bounds for {} vectors",
            self.len
        );
        assert_eq!(
            self.dim,
            hv.dim(),
            "cannot store a {}-dimensional hypervector in a {}-dimensional class memory",
            hv.dim(),
            self.dim
        );
        let block = &mut self.blocks[index / BLOCK_LANES];
        let lane = index % BLOCK_LANES;
        for (w, &word) in hv.words().iter().enumerate() {
            block[w * BLOCK_LANES + lane] = word;
        }
        self.plain[index] = hv.clone();
    }

    /// All stored vectors, contiguous and in storage order.
    #[must_use]
    pub fn vectors(&self) -> &[Hypervector] {
        &self.plain
    }

    /// The vector at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn get(&self, index: usize) -> &Hypervector {
        assert!(
            index < self.len,
            "class memory index {index} out of bounds for {} vectors",
            self.len
        );
        &self.plain[index]
    }

    /// Streams the Hamming distance of `query` to every stored vector
    /// (in order) into `emit`. The blocked layout pays for all
    /// [`BLOCK_LANES`] lanes of a block and only beats the per-vector
    /// kernel when the lanes fill SIMD registers, so scoring runs
    /// per-vector over the contiguous copies below one full block *or*
    /// whenever the scalar backend is active (its per-vector path is the
    /// Harley–Seal tree, which the lane-parallel loop cannot match).
    /// Both paths are exact popcounts and agree bit-for-bit.
    fn distances<F: FnMut(u64)>(&self, query: &Hypervector, mut emit: F) {
        assert_eq!(
            self.dim,
            query.dim(),
            "cannot compare a {}-dimensional query against a {}-dimensional class memory",
            query.dim(),
            self.dim
        );
        let backend = Backend::active();
        if self.len < BLOCK_LANES || !backend.is_simd() {
            for hv in &self.plain {
                emit(backend.hamming(query.words(), hv.words()));
            }
            return;
        }
        let mut remaining = self.len;
        for block in &self.blocks {
            let mut acc = [0u64; BLOCK_LANES];
            backend.hamming_block(query.words(), block, &mut acc);
            let lanes = usize::min(remaining, BLOCK_LANES);
            for &d in &acc[..lanes] {
                emit(d);
            }
            remaining -= lanes;
        }
    }

    /// Hamming distance of `query` to every stored vector, in storage
    /// order, written into `out` (resized to `len()`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hamming_many_into(&self, query: &Hypervector, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(self.len);
        self.distances(query, |d| out.push(d as usize));
    }

    /// Hamming distance of `query` to every stored vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn hamming_many(&self, query: &Hypervector) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len);
        self.hamming_many_into(query, &mut out);
        out
    }

    /// Dot product (`d − 2·hamming`) of `query` with every stored vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn dot_many(&self, query: &Hypervector) -> Vec<i64> {
        self.hamming_many(query)
            .into_iter()
            .map(|h| self.dim as i64 - 2 * h as i64)
            .collect()
    }

    /// Cosine similarity of `query` with every stored vector, written
    /// into `out` (resized to `len()`). Bit-identical to calling
    /// [`Hypervector::cosine`] per vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn cosine_many_into(&self, query: &Hypervector, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len);
        let dim = self.dim as f64;
        self.distances(query, |h| {
            out.push((self.dim as i64 - 2 * h as i64) as f64 / dim);
        });
    }

    /// Cosine similarity of `query` with every stored vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn cosine_many(&self, query: &Hypervector) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        self.cosine_many_into(query, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ItemMemory;

    fn vectors(dim: usize, n: usize, seed: u64) -> Vec<Hypervector> {
        let items = ItemMemory::new(dim, seed).expect("non-zero dimension");
        (0..n as u64).map(|i| items.hypervector(i)).collect()
    }

    #[test]
    fn zero_dimension_and_empty_inputs_rejected() {
        assert!(matches!(ClassMemory::new(0), Err(HdvError::ZeroDimension)));
        assert!(matches!(
            ClassMemory::from_vectors(&[]),
            Err(HdvError::EmptyBundle)
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut vs = vectors(100, 2, 1);
        vs.push(ItemMemory::new(101, 1).unwrap().hypervector(0));
        assert!(matches!(
            ClassMemory::from_vectors(&vs),
            Err(HdvError::DimensionMismatch {
                left: 100,
                right: 101
            })
        ));
    }

    #[test]
    fn roundtrip_across_block_boundaries() {
        // 23 vectors span three 8-lane blocks with a partial tail block.
        let vs = vectors(130, 23, 2);
        let memory = ClassMemory::from_vectors(&vs).unwrap();
        assert_eq!(memory.len(), 23);
        assert_eq!(memory.dim(), 130);
        assert!(!memory.is_empty());
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(memory.get(i), v, "vector {i}");
        }
    }

    #[test]
    fn hamming_many_matches_pairwise_hamming() {
        for n in [1usize, 2, 7, 8, 9, 23] {
            for dim in [1usize, 64, 65, 1000] {
                let vs = vectors(dim, n, 3);
                let memory = ClassMemory::from_vectors(&vs).unwrap();
                let query = ItemMemory::new(dim, 77).unwrap().hypervector(0);
                let blocked = memory.hamming_many(&query);
                let naive: Vec<usize> = vs.iter().map(|v| v.hamming(&query)).collect();
                assert_eq!(blocked, naive, "n={n} dim={dim}");
            }
        }
    }

    #[test]
    fn cosine_and_dot_match_pairwise() {
        let vs = vectors(10_000, 23, 4);
        let memory = ClassMemory::from_vectors(&vs).unwrap();
        let query = ItemMemory::new(10_000, 5).unwrap().hypervector(9);
        let cosines = memory.cosine_many(&query);
        let dots = memory.dot_many(&query);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(cosines[i], v.cosine(&query), "cosine {i}");
            assert_eq!(dots[i], v.dot(&query), "dot {i}");
        }
    }

    #[test]
    fn set_replaces_one_lane_only() {
        let vs = vectors(500, 10, 6);
        let mut memory = ClassMemory::from_vectors(&vs).unwrap();
        let replacement = ItemMemory::new(500, 7).unwrap().hypervector(0);
        memory.set(9, &replacement);
        assert_eq!(memory.get(9), &replacement);
        for (i, v) in vs.iter().enumerate().take(9) {
            assert_eq!(memory.get(i), v, "lane {i} must be untouched");
        }
        let query = ItemMemory::new(500, 8).unwrap().hypervector(0);
        assert_eq!(memory.hamming_many(&query)[9], replacement.hamming(&query));
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let vs = vectors(256, 3, 9);
        let memory = ClassMemory::from_vectors(&vs).unwrap();
        let query = ItemMemory::new(256, 10).unwrap().hypervector(0);
        let mut hams = vec![123usize; 17];
        let mut cosines = vec![9.0f64; 17];
        memory.hamming_many_into(&query, &mut hams);
        memory.cosine_many_into(&query, &mut cosines);
        assert_eq!(hams, memory.hamming_many(&query));
        assert_eq!(cosines, memory.cosine_many(&query));
    }

    #[test]
    #[should_panic(expected = "cannot compare")]
    fn query_dimension_mismatch_panics() {
        let memory = ClassMemory::from_vectors(&vectors(128, 2, 11)).unwrap();
        let query = ItemMemory::new(64, 1).unwrap().hypervector(0);
        let _ = memory.hamming_many(&query);
    }

    #[test]
    #[should_panic(expected = "cannot store")]
    fn push_dimension_mismatch_panics() {
        let mut memory = ClassMemory::new(128).unwrap();
        memory.push(&ItemMemory::new(64, 1).unwrap().hypervector(0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut memory = ClassMemory::from_vectors(&vectors(64, 2, 12)).unwrap();
        let v = ItemMemory::new(64, 1).unwrap().hypervector(0);
        memory.set(2, &v);
    }
}
