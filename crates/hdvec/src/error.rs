//! Error types for hypervector construction and bundling.

/// Errors produced by fallible `hdvec` operations.
///
/// Binary operations between hypervectors of mismatched dimensions are
/// programming errors and panic instead (documented on each method); this
/// enum covers failures of *construction* and of dataset-driven bundling,
/// where the inputs may legitimately be empty or inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdvError {
    /// A hypervector or accumulator was requested with dimension zero.
    ZeroDimension,
    /// Two collections of hypervectors disagreed on dimensionality.
    DimensionMismatch {
        /// Dimension of the first operand.
        left: usize,
        /// Dimension of the offending operand.
        right: usize,
    },
    /// A component value other than +1/−1 was supplied.
    InvalidComponent {
        /// Index of the offending component.
        index: usize,
        /// The value found there.
        value: i8,
    },
    /// A bundle of zero hypervectors was requested.
    EmptyBundle,
    /// A level memory was requested with fewer than two levels.
    TooFewLevels {
        /// The level count supplied.
        levels: usize,
    },
}

impl core::fmt::Display for HdvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HdvError::ZeroDimension => write!(f, "hypervector dimension must be positive"),
            HdvError::DimensionMismatch { left, right } => {
                write!(f, "hypervector dimensions differ: {left} vs {right}")
            }
            HdvError::InvalidComponent { index, value } => {
                write!(f, "component {index} has value {value}, expected +1 or -1")
            }
            HdvError::EmptyBundle => write!(f, "cannot bundle zero hypervectors"),
            HdvError::TooFewLevels { levels } => {
                write!(f, "level memory needs at least 2 levels, got {levels}")
            }
        }
    }
}

impl std::error::Error for HdvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            HdvError::ZeroDimension.to_string(),
            HdvError::DimensionMismatch { left: 3, right: 5 }.to_string(),
            HdvError::InvalidComponent { index: 2, value: 0 }.to_string(),
            HdvError::EmptyBundle.to_string(),
            HdvError::TooFewLevels { levels: 1 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<HdvError>();
    }
}
