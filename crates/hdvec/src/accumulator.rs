//! Bundling accumulators: exact element-wise majority voting.

use crate::backend::{Backend, TieWords};
use crate::{HdvError, Hypervector};

/// Policy for resolving per-dimension ties when an [`Accumulator`] is
/// thresholded to a bipolar hypervector.
///
/// Ties occur whenever an even number of vectors has been bundled and a
/// dimension received exactly as many +1 as −1 votes. The paper does not
/// specify a rule; all three policies below are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieBreak {
    /// Resolve every tie to +1.
    Positive,
    /// Resolve every tie to −1.
    Negative,
    /// Resolve ties pseudo-randomly but reproducibly: dimension `i` of a
    /// tie takes the sign of a fixed random pattern derived from the seed.
    Seeded(u64),
}

impl Default for TieBreak {
    /// The suite-wide default: seeded pseudo-random ties with seed 0, which
    /// avoids the systematic bias of `Positive`/`Negative` while staying
    /// reproducible.
    fn default() -> Self {
        TieBreak::Seeded(0)
    }
}

/// Signed per-dimension vote counters implementing HDC bundling exactly.
///
/// The paper's Σ (bundling) is element-wise majority voting. Summing ±1
/// components in `i32` counters and thresholding at zero implements it
/// without the precision loss of iterated pairwise majorities.
///
/// # Examples
///
/// ```
/// use hdvec::{Accumulator, ItemMemory, TieBreak};
///
/// let memory = ItemMemory::new(10_000, 3)?;
/// let mut acc = Accumulator::new(10_000)?;
/// for i in 0..7 {
///     acc.add(&memory.hypervector(i));
/// }
/// let class_vector = acc.to_hypervector(TieBreak::default());
/// assert_eq!(class_vector.dim(), 10_000);
/// # Ok::<(), hdvec::HdvError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accumulator {
    counts: Vec<i32>,
    added: u64,
}

impl Accumulator {
    /// Creates an empty accumulator of the given dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, HdvError> {
        if dim == 0 {
            return Err(HdvError::ZeroDimension);
        }
        Ok(Self {
            counts: vec![0; dim],
            added: 0,
        })
    }

    /// The dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.counts.len()
    }

    /// Number of `add` calls minus `sub` calls weighted by their weights —
    /// i.e. the net number of vectors currently bundled.
    #[must_use]
    pub fn added(&self) -> u64 {
        self.added
    }

    /// Whether nothing has been accumulated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added == 0 && self.counts.iter().all(|&c| c == 0)
    }

    /// The raw signed counters.
    #[must_use]
    pub fn counts(&self) -> &[i32] {
        &self.counts
    }

    /// Builds an accumulator from raw signed counters and a vote count —
    /// the conversion target of
    /// [`BitSliceAccumulator`](crate::BitSliceAccumulator).
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `counts` is empty.
    pub fn from_counts(counts: Vec<i32>, added: u64) -> Result<Self, HdvError> {
        if counts.is_empty() {
            return Err(HdvError::ZeroDimension);
        }
        Ok(Self { counts, added })
    }

    /// Adds one vote of `hv` (+1 components increment, −1 decrement).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add(&mut self, hv: &Hypervector) {
        self.add_weighted(hv, 1);
    }

    /// Removes one vote of `hv`; the inverse of [`add`](Self::add), used by
    /// retraining to subtract a mispredicted sample from a class.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn sub(&mut self, hv: &Hypervector) {
        self.add_weighted(hv, -1);
    }

    /// Adds `weight` votes of `hv` at once.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_weighted(&mut self, hv: &Hypervector, weight: i32) {
        assert_eq!(
            self.dim(),
            hv.dim(),
            "cannot accumulate a {}-dimensional hypervector into a {}-dimensional accumulator",
            hv.dim(),
            self.dim()
        );
        // Per packed word (bit=1 ⇔ −1): ±weight across 64 counters at a
        // time on the dispatched backend (sign-select vectors on AVX2, a
        // branch-free credit pass plus set-bit fixups scalar).
        Backend::active().add_weighted(&mut self.counts, hv.words(), weight);
        self.added = self.added.saturating_add_signed(i64::from(weight));
    }

    /// Merges another accumulator into this one (vote-wise addition).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn merge(&mut self, other: &Accumulator) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "cannot merge accumulators of dimensions {} and {}",
            self.dim(),
            other.dim()
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.added = self.added.saturating_add(other.added);
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.added = 0;
    }

    /// Thresholds the counters into a bipolar hypervector: positive counts
    /// map to +1, negative to −1, and zeros are resolved by `tie_break`.
    /// This is the normalization `[...]` of the paper's encoding equations.
    #[must_use]
    pub fn to_hypervector(&self, tie_break: TieBreak) -> Hypervector {
        let dim = self.dim();
        let pattern = match tie_break {
            TieBreak::Positive | TieBreak::Negative => None,
            TieBreak::Seeded(seed) => Some(Hypervector::tie_pattern(dim, seed)),
        };
        let tie = match (&pattern, tie_break) {
            (Some(p), _) => TieWords::Pattern(p.words()),
            (None, TieBreak::Negative) => TieWords::Constant(!0u64),
            (None, _) => TieWords::Constant(0u64),
        };
        // Assemble 64 thresholded dimensions per word on the dispatched
        // backend; ties take the matching bit of the tie source. The last
        // chunk is `dim % 64` counters long, so tail bits beyond `dim`
        // are never set and the storage invariant holds by shape.
        let words = Backend::active().threshold(&self.counts, tie);
        Hypervector::from_raw(dim, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ItemMemory;

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(Accumulator::new(0), Err(HdvError::ZeroDimension)));
    }

    #[test]
    fn add_then_threshold_is_identity() {
        let memory = ItemMemory::new(200, 5).unwrap();
        let v = memory.hypervector(0);
        let mut acc = Accumulator::new(200).unwrap();
        acc.add(&v);
        assert_eq!(acc.to_hypervector(TieBreak::Positive), v);
        assert_eq!(acc.added(), 1);
    }

    #[test]
    fn add_sub_cancels() {
        let memory = ItemMemory::new(200, 6).unwrap();
        let v = memory.hypervector(1);
        let mut acc = Accumulator::new(200).unwrap();
        acc.add(&v);
        acc.sub(&v);
        assert!(acc.is_empty());
        assert!(acc.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn majority_beats_minority() {
        let memory = ItemMemory::new(512, 7).unwrap();
        let a = memory.hypervector(0);
        let b = memory.hypervector(1);
        let mut acc = Accumulator::new(512).unwrap();
        acc.add(&a);
        acc.add(&a);
        acc.add(&a);
        acc.add(&b);
        // a has 3 votes vs 1: result equals a wherever they disagree, so
        // the result is exactly a (where they agree it is trivially a).
        assert_eq!(acc.to_hypervector(TieBreak::Positive), a);
    }

    #[test]
    fn weighted_add_equals_repeated_add() {
        let memory = ItemMemory::new(128, 8).unwrap();
        let v = memory.hypervector(2);
        let mut a = Accumulator::new(128).unwrap();
        let mut b = Accumulator::new(128).unwrap();
        for _ in 0..5 {
            a.add(&v);
        }
        b.add_weighted(&v, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_equals_joint_accumulation() {
        let memory = ItemMemory::new(128, 9).unwrap();
        let mut left = Accumulator::new(128).unwrap();
        let mut right = Accumulator::new(128).unwrap();
        let mut joint = Accumulator::new(128).unwrap();
        for i in 0..4 {
            let v = memory.hypervector(i);
            if i % 2 == 0 {
                left.add(&v);
            } else {
                right.add(&v);
            }
            joint.add(&v);
        }
        left.merge(&right);
        assert_eq!(left, joint);
    }

    #[test]
    fn tie_break_policies_differ_only_on_ties() {
        let memory = ItemMemory::new(1000, 10).unwrap();
        let a = memory.hypervector(0);
        let b = memory.hypervector(1);
        let mut acc = Accumulator::new(1000).unwrap();
        acc.add(&a);
        acc.add(&b);
        let pos = acc.to_hypervector(TieBreak::Positive);
        let neg = acc.to_hypervector(TieBreak::Negative);
        let seeded = acc.to_hypervector(TieBreak::Seeded(42));
        for i in 0..1000 {
            if acc.counts()[i] != 0 {
                assert_eq!(pos.component(i), neg.component(i));
                assert_eq!(pos.component(i), seeded.component(i));
            } else {
                assert_eq!(pos.component(i), 1);
                assert_eq!(neg.component(i), -1);
            }
        }
        // Roughly half the dimensions of two random vectors tie.
        let ties = acc.counts().iter().filter(|&&c| c == 0).count();
        assert!(ties > 350 && ties < 650, "tie count {ties}");
    }

    #[test]
    fn seeded_tie_break_is_deterministic() {
        let memory = ItemMemory::new(256, 11).unwrap();
        let mut acc = Accumulator::new(256).unwrap();
        acc.add(&memory.hypervector(0));
        acc.add(&memory.hypervector(1));
        let x = acc.to_hypervector(TieBreak::Seeded(7));
        let y = acc.to_hypervector(TieBreak::Seeded(7));
        assert_eq!(x, y);
    }

    #[test]
    fn reset_clears_state() {
        let memory = ItemMemory::new(64, 12).unwrap();
        let mut acc = Accumulator::new(64).unwrap();
        acc.add(&memory.hypervector(0));
        acc.reset();
        assert!(acc.is_empty());
        assert_eq!(acc.added(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot accumulate")]
    fn dimension_mismatch_panics() {
        let memory = ItemMemory::new(64, 13).unwrap();
        let mut acc = Accumulator::new(128).unwrap();
        acc.add(&memory.hypervector(0));
    }

    #[test]
    #[should_panic(expected = "cannot merge accumulators of dimensions 128 and 64")]
    fn merge_mismatch_reports_dimensions_in_receiver_argument_order() {
        // Regression: the message used to print `other` before `self`,
        // reporting the dimensions swapped relative to the call.
        let mut acc = Accumulator::new(128).unwrap();
        let other = Accumulator::new(64).unwrap();
        acc.merge(&other);
    }

    #[test]
    fn add_weighted_matches_per_bit_reference() {
        // Per-bit reference for the word-level update, covering mixed,
        // all-clear and all-set words plus a partial tail word.
        fn reference_add(counts: &mut [i32], hv: &Hypervector, weight: i32) {
            for (i, count) in counts.iter_mut().enumerate() {
                if hv.component(i) == -1 {
                    *count -= weight;
                } else {
                    *count += weight;
                }
            }
        }
        for dim in [1usize, 63, 64, 65, 130, 500] {
            let memory = ItemMemory::new(dim, 21).unwrap();
            let mut acc = Accumulator::new(dim).unwrap();
            let mut expected = vec![0i32; dim];
            let vectors = [
                memory.hypervector(0),
                Hypervector::positive(dim).unwrap(),
                Hypervector::negative(dim).unwrap(),
                memory.hypervector(1),
            ];
            for (hv, weight) in vectors.iter().zip([1, -2, 5, 3]) {
                acc.add_weighted(hv, weight);
                reference_add(&mut expected, hv, weight);
            }
            assert_eq!(acc.counts(), expected.as_slice(), "dim {dim}");
        }
    }

    #[test]
    fn bundle_similarity_grows_with_votes() {
        // A vector bundled twice among unrelated vectors is closer to the
        // bundle than one bundled once.
        let memory = ItemMemory::new(10_000, 14).unwrap();
        let favored = memory.hypervector(0);
        let other = memory.hypervector(1);
        let mut acc = Accumulator::new(10_000).unwrap();
        acc.add_weighted(&favored, 3);
        acc.add(&other);
        for i in 2..6 {
            acc.add(&memory.hypervector(i));
        }
        let bundle = acc.to_hypervector(TieBreak::default());
        assert!(bundle.cosine(&favored) > bundle.cosine(&other));
    }
}
