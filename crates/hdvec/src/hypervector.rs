//! The bit-packed bipolar hypervector type.

use crate::backend::Backend;
use crate::HdvError;
use prng::{SplitMix64, WordRng};

/// A bipolar hypervector in {+1, −1}^d.
///
/// Components are stored one bit per dimension with the convention
/// **bit = 1 ⇔ component = −1**, so that element-wise multiplication
/// (HDC *binding*) is a bitwise XOR and the dot product is
/// `d − 2·hamming`. The storage invariant is that bits beyond `dim` in the
/// last word are always zero; every operation preserves it.
///
/// # Examples
///
/// ```
/// use hdvec::Hypervector;
///
/// let v = Hypervector::from_components(&[1, -1, 1, 1])?;
/// assert_eq!(v.component(1), -1);
/// assert_eq!(v.dot(&v), 4);
/// assert_eq!(v.cosine(&v), 1.0);
/// # Ok::<(), hdvec::HdvError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Hypervector {
    dim: usize,
    words: Vec<u64>,
}

impl Hypervector {
    /// Number of 64-bit words needed for `dim` dimensions.
    fn word_count(dim: usize) -> usize {
        dim.div_ceil(64)
    }

    /// Mask with ones at every valid bit position of the final word.
    fn tail_mask(dim: usize) -> u64 {
        match dim % 64 {
            0 => !0u64,
            r => (1u64 << r) - 1,
        }
    }

    fn check_dim(dim: usize) -> Result<(), HdvError> {
        if dim == 0 {
            Err(HdvError::ZeroDimension)
        } else {
            Ok(())
        }
    }

    /// Assembles a hypervector from already-packed words. The caller must
    /// uphold the storage invariant (word count and clear tail bits).
    pub(crate) fn from_raw(dim: usize, words: Vec<u64>) -> Self {
        debug_assert_eq!(words.len(), Self::word_count(dim));
        debug_assert!(words.last().is_none_or(|w| w & !Self::tail_mask(dim) == 0));
        Self { dim, words }
    }

    /// Creates the all-(+1) hypervector, the identity element of binding.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn positive(dim: usize) -> Result<Self, HdvError> {
        Self::check_dim(dim)?;
        Ok(Self {
            dim,
            words: vec![0u64; Self::word_count(dim)],
        })
    }

    /// Creates the all-(−1) hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn negative(dim: usize) -> Result<Self, HdvError> {
        Self::check_dim(dim)?;
        let mut words = vec![!0u64; Self::word_count(dim)];
        if let Some(last) = words.last_mut() {
            *last &= Self::tail_mask(dim);
        }
        Ok(Self { dim, words })
    }

    /// Draws a uniformly random hypervector from `rng`.
    ///
    /// Each component is independently ±1 with probability ½, which makes
    /// distinct random hypervectors quasi-orthogonal in high dimension —
    /// the property HDC basis sets rely on.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn random<R: WordRng>(dim: usize, rng: &mut R) -> Result<Self, HdvError> {
        Self::check_dim(dim)?;
        let mut words: Vec<u64> = (0..Self::word_count(dim)).map(|_| rng.next_u64()).collect();
        if let Some(last) = words.last_mut() {
            *last &= Self::tail_mask(dim);
        }
        Ok(Self { dim, words })
    }

    /// Builds a hypervector from explicit ±1 components.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] for an empty slice and
    /// [`HdvError::InvalidComponent`] if any value is not +1 or −1.
    pub fn from_components(components: &[i8]) -> Result<Self, HdvError> {
        Self::check_dim(components.len())?;
        let dim = components.len();
        // Sign packing runs on the dispatched backend (64 components per
        // word scalar, 32 per compare+movemask on AVX2).
        let words = Backend::active()
            .pack_components(components)
            .map_err(|(index, value)| HdvError::InvalidComponent { index, value })?;
        Ok(Self { dim, words })
    }

    /// Builds a hypervector from a predicate over dimensions; `true` maps
    /// to −1 (set bit), mirroring the storage convention.
    ///
    /// # Errors
    ///
    /// Returns [`HdvError::ZeroDimension`] if `dim == 0`.
    pub fn from_fn<F: FnMut(usize) -> bool>(dim: usize, mut f: F) -> Result<Self, HdvError> {
        Self::check_dim(dim)?;
        let mut words = Vec::with_capacity(Self::word_count(dim));
        for base in (0..dim).step_by(64) {
            let take = usize::min(64, dim - base);
            let mut word = 0u64;
            for bit in 0..take {
                if f(base + bit) {
                    word |= 1u64 << bit;
                }
            }
            words.push(word);
        }
        Ok(Self { dim, words })
    }

    /// The dimensionality d.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed 64-bit words (bit = 1 ⇔ component −1). Bits beyond
    /// `dim()` in the last word are zero.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The component at `index`, +1 or −1.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    #[must_use]
    pub fn component(&self, index: usize) -> i8 {
        assert!(
            index < self.dim,
            "component index {index} out of bounds for dimension {}",
            self.dim
        );
        if (self.words[index / 64] >> (index % 64)) & 1 == 1 {
            -1
        } else {
            1
        }
    }

    /// Sets the component at `index` to `value` (+1 or −1).
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()` or `value` is not ±1.
    pub fn set_component(&mut self, index: usize, value: i8) {
        assert!(
            index < self.dim,
            "component index {index} out of bounds for dimension {}",
            self.dim
        );
        assert!(value == 1 || value == -1, "component must be +1 or -1");
        let word = index / 64;
        let bit = 1u64 << (index % 64);
        if value == -1 {
            self.words[word] |= bit;
        } else {
            self.words[word] &= !bit;
        }
    }

    /// Returns the components as `i8` values (+1/−1).
    #[must_use]
    pub fn to_components(&self) -> Vec<i8> {
        let mut out = Vec::with_capacity(self.dim);
        for (word_idx, &word) in self.words.iter().enumerate() {
            let take = usize::min(64, self.dim - word_idx * 64);
            out.extend((0..take).map(|bit| 1 - 2 * ((word >> bit) & 1) as i8));
        }
        out
    }

    /// Iterates over components as +1/−1 values.
    pub fn iter(&self) -> impl Iterator<Item = i8> + '_ {
        let dim = self.dim;
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(word_idx, &word)| {
                let take = usize::min(64, dim - word_idx * 64);
                (0..take).map(move |bit| 1 - 2 * ((word >> bit) & 1) as i8)
            })
    }

    /// Binds two hypervectors (element-wise multiplication; XOR on the
    /// packed representation). Binding is commutative, associative and
    /// self-inverse, and the result is quasi-orthogonal to both operands.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn bind(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.bind_assign(other);
        out
    }

    /// In-place [`bind`](Self::bind).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn bind_assign(&mut self, other: &Self) {
        assert_eq!(
            self.dim, other.dim,
            "cannot bind hypervectors of dimensions {} and {}",
            self.dim, other.dim
        );
        Backend::active().xor_assign(&mut self.words, &other.words);
    }

    /// Returns the element-wise negation (every +1 ↔ −1).
    #[must_use]
    pub fn negated(&self) -> Self {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        if let Some(last) = words.last_mut() {
            *last &= Self::tail_mask(self.dim);
        }
        Self {
            dim: self.dim,
            words,
        }
    }

    /// Circularly shifts components by `shift` positions (Kanerva's
    /// permutation operation ρ): output dimension `(i + shift) mod d` takes
    /// the value of input dimension `i`. `permute(0)` is the identity.
    ///
    /// Runs word-at-a-time: the rotation of the d-bit ring decomposes into
    /// an upward shift by `shift` OR-ed with a downward shift by
    /// `d − shift`, each a funnel shift stitching adjacent words, so the
    /// cost is ~2 passes over the packed words regardless of `shift`.
    #[must_use]
    pub fn permute(&self, shift: usize) -> Self {
        let shift = shift % self.dim;
        if shift == 0 {
            return self.clone();
        }
        Self {
            dim: self.dim,
            words: self.rotated_words(shift),
        }
    }

    /// In-place [`permute`](Self::permute): replaces this vector's storage
    /// with the rotation. The rotation itself still builds one scratch
    /// word buffer (a true in-place bit-ring rotation would cost extra
    /// passes), so the win over `permute` is skipping the result-object
    /// construction — and `permute_assign(0)` is entirely free where
    /// `permute(0)` clones.
    pub fn permute_assign(&mut self, shift: usize) {
        let shift = shift % self.dim;
        if shift == 0 {
            return;
        }
        self.words = self.rotated_words(shift);
    }

    /// Rotates the d-bit ring upward by `shift` (`0 < shift < dim`),
    /// returning the new packed words.
    ///
    /// Output bit `j` is input bit `(j − shift) mod d`: bits `j ≥ shift`
    /// come from the upward funnel shift by `shift`, bits `j < shift` wrap
    /// around from the top of the ring, i.e. the downward funnel shift by
    /// `d − shift`. The two contributions cannot overlap because bits
    /// beyond `dim` in the last source word are zero (storage invariant);
    /// bits the upward shift pushes past `dim` are cut by the tail mask.
    fn rotated_words(&self, shift: usize) -> Vec<u64> {
        debug_assert!(shift > 0 && shift < self.dim);
        let src = &self.words;
        let n = src.len();
        let mut out = vec![0u64; n];

        // Upward part: out[w] takes src[w − off] stitched with the spill
        // of src[w − off − 1] (split the shift into whole words + bits).
        let off = shift / 64;
        let bits = shift % 64;
        if bits == 0 {
            out[off..n].copy_from_slice(&src[..n - off]);
        } else {
            for w in off..n {
                let lo = src[w - off] << bits;
                let hi = if w > off {
                    src[w - off - 1] >> (64 - bits)
                } else {
                    0
                };
                out[w] = lo | hi;
            }
        }

        // Wrap-around part: the top `shift` bits of the ring land at the
        // bottom — a downward shift by `back = d − shift`.
        let back = self.dim - shift;
        let off = back / 64;
        let bits = back % 64;
        if bits == 0 {
            for w in 0..n - off {
                out[w] |= src[w + off];
            }
        } else {
            for w in 0..n - off {
                let lo = src[w + off] >> bits;
                let hi = if w + off + 1 < n {
                    src[w + off + 1] << (64 - bits)
                } else {
                    0
                };
                out[w] |= lo | hi;
            }
        }

        if let Some(last) = out.last_mut() {
            *last &= Self::tail_mask(self.dim);
        }
        out
    }

    /// Number of −1 components (popcount of the packed words).
    #[must_use]
    pub fn count_negative(&self) -> usize {
        Backend::active().popcount(&self.words) as usize
    }

    /// Hamming distance: the number of dimensions where the two vectors
    /// disagree.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(
            self.dim, other.dim,
            "cannot compare hypervectors of dimensions {} and {}",
            self.dim, other.dim
        );
        // Fused XOR+popcount on the dispatched backend (Harley–Seal
        // scalar or AVX2); this is the single hottest kernel of GraphHD
        // inference.
        Backend::active().hamming(&self.words, &other.words) as usize
    }

    /// Dot product over the ±1 components: `d − 2·hamming`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn dot(&self, other: &Self) -> i64 {
        self.dim as i64 - 2 * self.hamming(other) as i64
    }

    /// Cosine similarity in [−1, 1]. For bipolar vectors every vector has
    /// norm √d, so this is exactly `dot / d`. This is the similarity metric
    /// δ used by GraphHD at inference time.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn cosine(&self, other: &Self) -> f64 {
        self.dot(other) as f64 / self.dim as f64
    }

    /// Normalized Hamming similarity in [0, 1]: `1 − hamming/d`, the
    /// "inverse Hamming distance" mentioned by the paper as an alternative
    /// similarity metric.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn hamming_similarity(&self, other: &Self) -> f64 {
        1.0 - self.hamming(other) as f64 / self.dim as f64
    }

    /// Returns a copy with each component independently flipped with
    /// probability `rate`, modelling bit-level faults in an HDC memory.
    ///
    /// Flip positions are drawn by geometric skip-sampling — the gap
    /// between consecutive flipped bits of an independent-Bernoulli
    /// process is geometric — so the cost is ~`d·rate` RNG draws instead
    /// of one draw per dimension. The flip-count distribution is exactly
    /// Binomial(d, rate); only the RNG consumption pattern differs from a
    /// per-bit implementation.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a finite value in `[0, 1]`.
    #[must_use]
    pub fn with_noise<R: WordRng>(&self, rate: f64, rng: &mut R) -> Self {
        let mut out = self.clone();
        out.add_noise(rate, rng);
        out
    }

    /// In-place [`with_noise`](Self::with_noise).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a finite value in `[0, 1]`.
    pub fn add_noise<R: WordRng>(&mut self, rate: f64, rng: &mut R) {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "noise rate must lie in [0, 1], got {rate}"
        );
        if rate == 0.0 {
            return;
        }
        if rate >= 1.0 {
            for w in self.words.iter_mut() {
                *w = !*w;
            }
            if let Some(last) = self.words.last_mut() {
                *last &= Self::tail_mask(self.dim);
            }
            return;
        }
        // Skip-sample: jump straight to the next flipped bit. Gaps can
        // exceed any index for tiny rates, hence the saturating walk.
        let dim = self.dim as u64;
        let mut index = rng.geometric(rate);
        while index < dim {
            self.words[(index / 64) as usize] ^= 1u64 << (index % 64);
            index = index.saturating_add(1).saturating_add(rng.geometric(rate));
        }
    }

    /// Flips the components at the given indices in place.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn flip_indices(&mut self, indices: &[usize]) {
        for &i in indices {
            assert!(
                i < self.dim,
                "flip index {i} out of bounds for dimension {}",
                self.dim
            );
            self.words[i / 64] ^= 1u64 << (i % 64);
        }
    }

    /// A deterministic "tie-break" hypervector derived from `seed`; used by
    /// [`Accumulator::to_hypervector`](crate::Accumulator::to_hypervector)
    /// to resolve majority ties pseudo-randomly but reproducibly.
    pub(crate) fn tie_pattern(dim: usize, seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut words: Vec<u64> = (0..Self::word_count(dim)).map(|_| sm.next_u64()).collect();
        if let Some(last) = words.last_mut() {
            *last &= Self::tail_mask(dim);
        }
        Self { dim, words }
    }
}

impl core::fmt::Debug for Hypervector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Hypervector")
            .field("dim", &self.dim)
            .field("negative_components", &self.count_negative())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prng::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(1234)
    }

    /// Exhaustive per-bit reference implementations of the word-level
    /// kernels. They exist only under `#[cfg(test)]`: equivalence with the
    /// fast paths is property-checked here and in `tests/word_kernels.rs`,
    /// never assumed.
    mod reference {
        use super::*;

        pub fn permute(v: &Hypervector, shift: usize) -> Hypervector {
            let dim = v.dim();
            let mut out = Hypervector::positive(dim).expect("non-zero dimension");
            for i in 0..dim {
                out.set_component((i + shift) % dim, v.component(i));
            }
            out
        }

        pub fn from_components(components: &[i8]) -> Result<Hypervector, HdvError> {
            Hypervector::check_dim(components.len())?;
            let mut out = Hypervector::positive(components.len())?;
            for (i, &c) in components.iter().enumerate() {
                match c {
                    1 => {}
                    -1 => out.set_component(i, -1),
                    other => {
                        return Err(HdvError::InvalidComponent {
                            index: i,
                            value: other,
                        })
                    }
                }
            }
            Ok(out)
        }

        pub fn to_components(v: &Hypervector) -> Vec<i8> {
            (0..v.dim()).map(|i| v.component(i)).collect()
        }
    }

    #[test]
    fn permute_matches_per_bit_reference() {
        let mut r = rng();
        for dim in [1usize, 5, 63, 64, 65, 127, 128, 200, 1000] {
            let v = Hypervector::random(dim, &mut r).unwrap();
            for shift in [0, 1, 13, 63, 64, 65, dim - 1, dim, dim + 7] {
                assert_eq!(
                    v.permute(shift).words(),
                    reference::permute(&v, shift % dim).words(),
                    "dim {dim} shift {shift}"
                );
            }
        }
    }

    #[test]
    fn permute_assign_matches_permute() {
        let mut r = rng();
        let v = Hypervector::random(300, &mut r).unwrap();
        for shift in [0usize, 1, 64, 77, 299, 300, 613] {
            let mut w = v.clone();
            w.permute_assign(shift);
            assert_eq!(w, v.permute(shift));
        }
    }

    #[test]
    fn component_ops_match_per_bit_reference() {
        let mut r = rng();
        for dim in [1usize, 63, 64, 65, 130, 500] {
            let v = Hypervector::random(dim, &mut r).unwrap();
            let comps = reference::to_components(&v);
            assert_eq!(v.to_components(), comps);
            assert_eq!(v.iter().collect::<Vec<_>>(), comps);
            assert_eq!(
                Hypervector::from_components(&comps).unwrap(),
                reference::from_components(&comps).unwrap()
            );
            let built = Hypervector::from_fn(dim, |i| comps[i] == -1).unwrap();
            assert_eq!(built, v);
        }
    }

    #[test]
    fn add_noise_matches_with_noise() {
        let mut r = rng();
        let v = Hypervector::random(777, &mut r).unwrap();
        for rate in [0.0, 0.05, 0.5, 1.0] {
            let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
            let mut b = Xoshiro256PlusPlus::seed_from_u64(9);
            let copied = v.with_noise(rate, &mut a);
            let mut in_place = v.clone();
            in_place.add_noise(rate, &mut b);
            assert_eq!(copied, in_place);
        }
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            Hypervector::positive(0),
            Err(HdvError::ZeroDimension)
        ));
        assert!(matches!(
            Hypervector::random(0, &mut rng()),
            Err(HdvError::ZeroDimension)
        ));
    }

    #[test]
    fn positive_and_negative_are_opposites() {
        for dim in [1, 63, 64, 65, 100, 10_000] {
            let p = Hypervector::positive(dim).unwrap();
            let n = Hypervector::negative(dim).unwrap();
            assert_eq!(p.count_negative(), 0);
            assert_eq!(n.count_negative(), dim);
            assert_eq!(p.negated(), n);
            assert_eq!(p.cosine(&n), -1.0);
        }
    }

    #[test]
    fn tail_bits_stay_clear() {
        // dim not a multiple of 64 exercises the tail mask.
        let dim = 70;
        let mut r = rng();
        let a = Hypervector::random(dim, &mut r).unwrap();
        let b = Hypervector::random(dim, &mut r).unwrap();
        for v in [
            a.bind(&b),
            a.negated(),
            a.permute(13),
            a.with_noise(0.5, &mut r),
        ] {
            let tail = v.words().last().copied().unwrap();
            assert_eq!(tail & !((1u64 << (dim % 64)) - 1), 0, "tail bits leaked");
        }
    }

    #[test]
    fn from_components_roundtrip() {
        let comps = [1i8, -1, -1, 1, -1];
        let v = Hypervector::from_components(&comps).unwrap();
        assert_eq!(v.to_components(), comps);
    }

    #[test]
    fn from_components_rejects_invalid() {
        let out = Hypervector::from_components(&[1, 0, -1]);
        assert!(matches!(
            out,
            Err(HdvError::InvalidComponent { index: 1, value: 0 })
        ));
    }

    #[test]
    fn bind_is_self_inverse_and_identity() {
        let mut r = rng();
        let a = Hypervector::random(1000, &mut r).unwrap();
        let ident = Hypervector::positive(1000).unwrap();
        assert_eq!(a.bind(&a), ident);
        assert_eq!(a.bind(&ident), a);
    }

    #[test]
    fn bind_preserves_distance() {
        let mut r = rng();
        let a = Hypervector::random(2048, &mut r).unwrap();
        let b = Hypervector::random(2048, &mut r).unwrap();
        let c = Hypervector::random(2048, &mut r).unwrap();
        assert_eq!(a.bind(&c).hamming(&b.bind(&c)), a.hamming(&b));
    }

    #[test]
    #[should_panic(expected = "cannot bind")]
    fn bind_dimension_mismatch_panics() {
        let a = Hypervector::positive(64).unwrap();
        let b = Hypervector::positive(128).unwrap();
        let _ = a.bind(&b);
    }

    #[test]
    fn random_vectors_are_quasi_orthogonal() {
        let mut r = rng();
        let a = Hypervector::random(10_000, &mut r).unwrap();
        let b = Hypervector::random(10_000, &mut r).unwrap();
        assert!(a.cosine(&b).abs() < 0.05);
        // And roughly balanced.
        let frac = a.count_negative() as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn permute_rotates_and_inverts() {
        let mut r = rng();
        let a = Hypervector::random(100, &mut r).unwrap();
        let p = a.permute(17);
        assert_eq!(p.component(17), a.component(0));
        assert_eq!(p.component(0), a.component(83));
        assert_eq!(p.permute(100 - 17), a);
        assert_eq!(a.permute(0), a);
        assert_eq!(a.permute(100), a);
    }

    #[test]
    fn permute_preserves_pairwise_distance() {
        let mut r = rng();
        let a = Hypervector::random(500, &mut r).unwrap();
        let b = Hypervector::random(500, &mut r).unwrap();
        assert_eq!(a.permute(7).hamming(&b.permute(7)), a.hamming(&b));
    }

    #[test]
    fn dot_matches_hamming_identity() {
        let mut r = rng();
        let a = Hypervector::random(300, &mut r).unwrap();
        let b = Hypervector::random(300, &mut r).unwrap();
        assert_eq!(a.dot(&b), 300 - 2 * a.hamming(&b) as i64);
        let naive: i64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| i64::from(x) * i64::from(y))
            .sum();
        assert_eq!(a.dot(&b), naive);
    }

    #[test]
    fn noise_zero_and_one_are_exact() {
        let mut r = rng();
        let a = Hypervector::random(256, &mut r).unwrap();
        assert_eq!(a.with_noise(0.0, &mut r), a);
        assert_eq!(a.with_noise(1.0, &mut r), a.negated());
    }

    #[test]
    fn noise_rate_is_respected() {
        let mut r = rng();
        let a = Hypervector::random(10_000, &mut r).unwrap();
        let noisy = a.with_noise(0.1, &mut r);
        let flipped = a.hamming(&noisy) as f64 / 10_000.0;
        assert!((flipped - 0.1).abs() < 0.02, "flip fraction {flipped}");
    }

    #[test]
    fn flip_indices_flips_exactly() {
        let mut v = Hypervector::positive(128).unwrap();
        v.flip_indices(&[0, 64, 127]);
        assert_eq!(v.count_negative(), 3);
        assert_eq!(v.component(64), -1);
        v.flip_indices(&[64]);
        assert_eq!(v.component(64), 1);
    }

    #[test]
    fn hamming_similarity_bounds() {
        let mut r = rng();
        let a = Hypervector::random(512, &mut r).unwrap();
        assert_eq!(a.hamming_similarity(&a), 1.0);
        assert_eq!(a.hamming_similarity(&a.negated()), 0.0);
    }

    #[test]
    fn debug_is_nonempty_and_compact() {
        let v = Hypervector::positive(64).unwrap();
        let s = format!("{v:?}");
        assert!(s.contains("Hypervector"));
        assert!(s.contains("dim"));
    }
}
