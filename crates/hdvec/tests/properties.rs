//! Property-based tests for the HDC algebra.

use hdvec::{bundle, Accumulator, BitSliceAccumulator, Hypervector, ItemMemory, TieBreak};
use proptest::prelude::*;

/// Strategy: a dimension that exercises word boundaries.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), 2usize..130, Just(256usize), Just(1000usize)]
}

/// Strategy: (dim, seed) pair for generating random vectors.
fn dim_and_seed() -> impl Strategy<Value = (usize, u64)> {
    (dims(), any::<u64>())
}

fn vector(dim: usize, seed: u64, index: u64) -> Hypervector {
    ItemMemory::new(dim, seed)
        .expect("non-zero dimension")
        .hypervector(index)
}

proptest! {
    #[test]
    fn bind_is_commutative((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        let b = vector(dim, seed, 1);
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn bind_is_associative((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        let b = vector(dim, seed, 1);
        let c = vector(dim, seed, 2);
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn bind_is_self_inverse((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        let b = vector(dim, seed, 1);
        prop_assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bind_preserves_hamming_distance((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        let b = vector(dim, seed, 1);
        let c = vector(dim, seed, 2);
        prop_assert_eq!(a.bind(&c).hamming(&b.bind(&c)), a.hamming(&b));
    }

    #[test]
    fn permute_is_invertible((dim, seed) in dim_and_seed(), shift in 0usize..4096) {
        let a = vector(dim, seed, 0);
        let s = shift % dim;
        let inverse = (dim - s) % dim;
        prop_assert_eq!(a.permute(s).permute(inverse), a);
    }

    #[test]
    fn permute_preserves_negative_count((dim, seed) in dim_and_seed(), shift in 0usize..4096) {
        let a = vector(dim, seed, 0);
        prop_assert_eq!(a.permute(shift).count_negative(), a.count_negative());
    }

    #[test]
    fn cosine_is_symmetric_and_bounded((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        let b = vector(dim, seed, 1);
        let ab = a.cosine(&b);
        prop_assert_eq!(ab, b.cosine(&a));
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert_eq!(a.cosine(&a), 1.0);
    }

    #[test]
    fn dot_equals_dim_minus_twice_hamming((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        let b = vector(dim, seed, 1);
        prop_assert_eq!(a.dot(&b), dim as i64 - 2 * a.hamming(&b) as i64);
    }

    #[test]
    fn components_roundtrip((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        let back = Hypervector::from_components(&a.to_components()).expect("valid components");
        prop_assert_eq!(back, a);
    }

    #[test]
    fn negation_flips_all((dim, seed) in dim_and_seed()) {
        let a = vector(dim, seed, 0);
        prop_assert_eq!(a.negated().count_negative(), dim - a.count_negative());
        prop_assert_eq!(a.negated().negated(), a);
    }

    #[test]
    fn bundle_of_odd_copies_is_identity((dim, seed) in dim_and_seed(), copies in 1usize..6) {
        let a = vector(dim, seed, 0);
        let odd = 2 * copies - 1;
        let refs: Vec<&Hypervector> = (0..odd).map(|_| &a).collect();
        prop_assert_eq!(bundle(refs, TieBreak::default()).expect("non-empty"), a);
    }

    #[test]
    fn accumulator_order_does_not_matter((dim, seed) in dim_and_seed()) {
        let vs: Vec<Hypervector> = (0..5).map(|i| vector(dim, seed, i)).collect();
        let mut forward = Accumulator::new(dim).expect("non-zero dimension");
        let mut backward = Accumulator::new(dim).expect("non-zero dimension");
        for v in &vs {
            forward.add(v);
        }
        for v in vs.iter().rev() {
            backward.add(v);
        }
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn accumulator_counts_stay_bounded((dim, seed) in dim_and_seed(), n in 1usize..10) {
        let mut acc = Accumulator::new(dim).expect("non-zero dimension");
        for i in 0..n {
            acc.add(&vector(dim, seed, i as u64));
        }
        // Each vote changes a counter by exactly ±1.
        prop_assert!(acc.counts().iter().all(|&c| c.unsigned_abs() as usize <= n));
        // Parity: counter parity matches vote-count parity.
        prop_assert!(acc
            .counts()
            .iter()
            .all(|&c| (c.unsigned_abs() as usize) % 2 == n % 2));
    }

    #[test]
    fn bitslice_equals_reference_accumulation((dim, seed) in dim_and_seed(), n in 0usize..40) {
        // The bit-sliced vertical-counter bundle must agree exactly with
        // the i32-counter reference for any bundle size, including the
        // plane-growth boundaries (powers of two).
        let mut fast = BitSliceAccumulator::new(dim).expect("non-zero dimension");
        let mut reference = Accumulator::new(dim).expect("non-zero dimension");
        for i in 0..n {
            let v = vector(dim, seed, i as u64);
            fast.add(&v);
            reference.add(&v);
        }
        prop_assert_eq!(fast.added(), n as u64);
        prop_assert_eq!(fast.to_accumulator(), reference);
    }

    #[test]
    fn noise_flips_at_most_everything((dim, seed) in dim_and_seed(), rate in 0.0f64..=1.0) {
        let a = vector(dim, seed, 0);
        let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(seed ^ 0xABCD);
        let noisy = a.with_noise(rate, &mut rng);
        prop_assert!(a.hamming(&noisy) <= dim);
    }
}
