//! Differential pinning of the SIMD backends against the scalar
//! reference.
//!
//! Every kernel ported to the runtime-dispatched backend — fused
//! XOR+popcount `hamming`, `bind`, the accumulator counter update and
//! threshold, component packing, and the blocked `ClassMemory` scoring —
//! is property-checked **bit-identical** between `Backend::scalar()` and
//! every backend in `Backend::available()` (AVX2 on capable hosts; on a
//! scalar-only host the comparisons degenerate to self-checks and the
//! suite still passes). The dimension grid covers both word-boundary
//! edges and the paper-scale sizes: {1, 63, 64, 65, 127, 128, 10_000,
//! 100_003}.

use hdvec::backend::{Backend, TieWords, BLOCK_LANES};
use hdvec::{Accumulator, ClassMemory, Hypervector, ItemMemory, TieBreak};
use proptest::prelude::*;

/// Word-boundary dimensions plus the paper's d=10k and a large prime.
const DIMS: [usize; 8] = [1, 63, 64, 65, 127, 128, 10_000, 100_003];

fn random_vector(dim: usize, seed: u64) -> Hypervector {
    ItemMemory::new(dim, seed)
        .expect("non-zero dimension")
        .hypervector(0)
}

/// Packed words of a random vector (tail bits clear by construction).
fn random_words(dim: usize, seed: u64) -> Vec<u64> {
    random_vector(dim, seed).words().to_vec()
}

fn simd_backends() -> Vec<Backend> {
    Backend::available()
        .into_iter()
        .filter(|b| b.is_simd())
        .collect()
}

proptest! {
    #[test]
    fn hamming_and_popcount_match_scalar(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let a = random_words(dim, seed);
        let b = random_words(dim, seed ^ 0xD1FF);
        let reference = Backend::scalar();
        for backend in simd_backends() {
            prop_assert_eq!(
                backend.hamming(&a, &b),
                reference.hamming(&a, &b),
                "{} hamming dim {}", backend.name(), dim
            );
            prop_assert_eq!(
                backend.popcount(&a),
                reference.popcount(&a),
                "{} popcount dim {}", backend.name(), dim
            );
        }
    }

    #[test]
    fn bind_matches_scalar(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let a = random_words(dim, seed);
        let b = random_words(dim, seed ^ 0xB1D);
        let mut expected = a.clone();
        Backend::scalar().xor_assign(&mut expected, &b);
        for backend in simd_backends() {
            let mut got = a.clone();
            backend.xor_assign(&mut got, &b);
            prop_assert_eq!(&got, &expected, "{} xor dim {}", backend.name(), dim);
        }
    }

    #[test]
    fn add_weighted_matches_scalar(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
        weight in -31i32..=31,
        start in -5i32..=5,
    ) {
        let dim = DIMS[dim_idx];
        let packed = random_words(dim, seed);
        let mut expected = vec![start; dim];
        Backend::scalar().add_weighted(&mut expected, &packed, weight);
        for backend in simd_backends() {
            let mut got = vec![start; dim];
            backend.add_weighted(&mut got, &packed, weight);
            prop_assert_eq!(&got, &expected, "{} add_weighted dim {}", backend.name(), dim);
        }
    }

    #[test]
    fn threshold_matches_scalar(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        // Small magnitudes so zero counters (the tie path) are frequent.
        let counts: Vec<i32> = {
            let v = random_words(dim, seed);
            (0..dim).map(|i| ((v[i / 64] >> (i % 64)) & 3) as i32 - 1).collect()
        };
        let pattern = random_words(dim, seed ^ 0x7AE);
        let reference = Backend::scalar();
        for backend in simd_backends() {
            for tie in [
                TieWords::Constant(0),
                TieWords::Constant(!0),
                TieWords::Pattern(&pattern),
            ] {
                prop_assert_eq!(
                    backend.threshold(&counts, tie),
                    reference.threshold(&counts, tie),
                    "{} threshold dim {}", backend.name(), dim
                );
            }
        }
    }

    #[test]
    fn pack_components_matches_scalar(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
        corrupt in any::<bool>(),
        pos in any::<u16>(),
        value in any::<i8>(),
    ) {
        let dim = DIMS[dim_idx];
        let mut comps = random_vector(dim, seed).to_components();
        if corrupt {
            comps[pos as usize % dim] = value;
        }
        let expected = Backend::scalar().pack_components(&comps);
        for backend in simd_backends() {
            prop_assert_eq!(
                backend.pack_components(&comps),
                expected.clone(),
                "{} pack dim {}", backend.name(), dim
            );
        }
    }

    #[test]
    fn hamming_block_matches_scalar(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let words = dim.div_ceil(64);
        let query = random_words(dim, seed);
        // An interleaved block built from BLOCK_LANES random vectors.
        let lanes: Vec<Vec<u64>> = (0..BLOCK_LANES)
            .map(|l| random_words(dim, seed ^ (l as u64 + 1)))
            .collect();
        let mut block = vec![0u64; words * BLOCK_LANES];
        for (l, lane) in lanes.iter().enumerate() {
            for (w, &word) in lane.iter().enumerate() {
                block[w * BLOCK_LANES + l] = word;
            }
        }
        let mut expected = [0u64; BLOCK_LANES];
        Backend::scalar().hamming_block(&query, &block, &mut expected);
        for backend in simd_backends() {
            let mut got = [0u64; BLOCK_LANES];
            backend.hamming_block(&query, &block, &mut got);
            prop_assert_eq!(got, expected, "{} block dim {}", backend.name(), dim);
        }
    }

    /// End-to-end: the public types (whose hot paths run on the *active*
    /// backend, whichever that is) agree with explicit scalar kernels.
    #[test]
    fn public_api_agrees_with_scalar_kernels(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
        weight in -7i32..=7,
    ) {
        let dim = DIMS[dim_idx];
        let a = random_vector(dim, seed);
        let b = random_vector(dim, seed ^ 0xAB);
        let scalar = Backend::scalar();
        prop_assert_eq!(
            a.hamming(&b) as u64,
            scalar.hamming(a.words(), b.words())
        );
        prop_assert_eq!(a.count_negative() as u64, scalar.popcount(a.words()));
        let mut acc = Accumulator::new(dim).expect("non-zero dimension");
        acc.add_weighted(&a, weight);
        let mut expected_counts = vec![0i32; dim];
        scalar.add_weighted(&mut expected_counts, a.words(), weight);
        prop_assert_eq!(acc.counts(), expected_counts.as_slice());
        let thresholded = acc.to_hypervector(TieBreak::Positive);
        prop_assert_eq!(
            thresholded.words(),
            scalar.threshold(acc.counts(), TieWords::Constant(0)).as_slice()
        );
    }
}

/// `ClassMemory` blocked scoring versus the naive per-vector loop, at the
/// class counts the equivalence must hold for (1 = degenerate, 2 = the
/// binary datasets, 23 = a multi-block odd count crossing lane
/// boundaries).
#[test]
fn class_memory_matches_naive_scoring_at_1_2_23_classes() {
    for &classes in &[1usize, 2, 23] {
        for &dim in &[1usize, 63, 64, 65, 127, 128, 10_000] {
            let items = ItemMemory::new(dim, 0xC1A55).expect("non-zero dimension");
            let vectors: Vec<Hypervector> =
                (0..classes as u64).map(|i| items.hypervector(i)).collect();
            let memory = ClassMemory::from_vectors(&vectors).expect("non-empty");
            let query = items.hypervector(1_000_000);
            let naive_hamming: Vec<usize> = vectors.iter().map(|v| v.hamming(&query)).collect();
            let naive_cosine: Vec<f64> = vectors.iter().map(|v| v.cosine(&query)).collect();
            assert_eq!(
                memory.hamming_many(&query),
                naive_hamming,
                "hamming classes {classes} dim {dim}"
            );
            assert_eq!(
                memory.cosine_many(&query),
                naive_cosine,
                "cosine classes {classes} dim {dim}"
            );
        }
    }
}
