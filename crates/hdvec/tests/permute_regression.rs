//! Word-level regression tests for the hot paths of
//! [`Hypervector::permute`] and [`Hypervector::with_noise`].
//!
//! `permute` runs as word-granular funnel shifts and `with_noise` as
//! geometric skip-sampling; the classic mistake in both is mishandling
//! the partially-filled last word (the tail mask). These tests pin the
//! exact packed-word output — not just component-level semantics — at
//! every dimension class a word-shift implementation must get right:
//! single-bit, one-under/at/one-over a word boundary, two-word
//! boundaries, and the paper's 10,000.

use hdvec::{Hypervector, ItemMemory};
use prng::{SplitMix64, WordRng};

/// The word-boundary dimension grid from the optimization plan.
const DIMS: [usize; 7] = [1, 63, 64, 65, 127, 128, 10_000];

/// Shifts that exercise identity, ±1, word-multiples and wrap-around.
fn shifts_for(dim: usize) -> Vec<usize> {
    vec![
        0,
        1,
        dim - 1,
        dim,
        dim + 1,
        63 % dim,
        64 % dim,
        65 % dim,
        (dim / 2).max(1),
        2 * dim + 7,
    ]
}

/// Reference permutation: rebuild the vector component by component.
/// Output dimension `(i + shift) % dim` takes input component `i`.
fn naive_permute(v: &Hypervector, shift: usize) -> Hypervector {
    let dim = v.dim();
    let components = v.to_components();
    let mut out = vec![1i8; dim];
    for (i, &c) in components.iter().enumerate() {
        out[(i + shift) % dim] = c;
    }
    Hypervector::from_components(&out).expect("non-empty")
}

fn tail_is_clear(v: &Hypervector) -> bool {
    let dim = v.dim();
    let last = *v.words().last().expect("non-empty");
    match dim % 64 {
        0 => true,
        r => last & !((1u64 << r) - 1) == 0,
    }
}

#[test]
fn permute_matches_naive_reference_word_for_word() {
    for dim in DIMS {
        let memory = ItemMemory::new(dim, 0xC0FFEE).expect("valid dimension");
        for index in 0..4u64 {
            let v = memory.hypervector(index);
            for shift in shifts_for(dim) {
                let fast = v.permute(shift);
                let reference = naive_permute(&v, shift);
                // Word-level equality: equal components AND a clear tail,
                // which `from_components` guarantees for the reference.
                assert_eq!(
                    fast.words(),
                    reference.words(),
                    "permute({shift}) diverged from reference at dim {dim}"
                );
                assert!(
                    tail_is_clear(&fast),
                    "permute({shift}) leaked tail bits at dim {dim}"
                );
            }
        }
    }
}

#[test]
fn permute_full_rotation_is_identity_on_words() {
    for dim in DIMS {
        let memory = ItemMemory::new(dim, 7).expect("valid dimension");
        let v = memory.hypervector(0);
        assert_eq!(v.permute(0).words(), v.words());
        assert_eq!(v.permute(dim).words(), v.words());
        for shift in shifts_for(dim) {
            let back = v.permute(shift).permute(dim - shift % dim);
            assert_eq!(back.words(), v.words(), "round trip failed at dim {dim}");
        }
    }
}

#[test]
fn permute_against_all_ones_pattern_keeps_popcount_and_tail() {
    // The all-(−1) vector makes tail-mask leaks maximally visible: every
    // stored bit is set, so any word-shift that drags tail garbage in
    // changes the popcount.
    for dim in DIMS {
        let v = Hypervector::negative(dim).expect("valid dimension");
        for shift in shifts_for(dim) {
            let rotated = v.permute(shift);
            assert_eq!(rotated.count_negative(), dim, "popcount changed");
            assert!(tail_is_clear(&rotated), "tail bits leaked at dim {dim}");
            assert_eq!(rotated.words(), v.words(), "rotation of constant vector");
        }
    }
}

#[test]
fn with_noise_preserves_tail_invariant_and_determinism() {
    for dim in DIMS {
        let memory = ItemMemory::new(dim, 99).expect("valid dimension");
        let v = memory.hypervector(0);
        for rate in [0.0, 0.1, 0.5, 1.0] {
            let mut rng_a = SplitMix64::new(0xAB);
            let mut rng_b = SplitMix64::new(0xAB);
            let noisy_a = v.with_noise(rate, &mut rng_a);
            let noisy_b = v.with_noise(rate, &mut rng_b);
            assert_eq!(
                noisy_a.words(),
                noisy_b.words(),
                "noise must be a pure function of (vector, rate, rng state)"
            );
            assert!(
                tail_is_clear(&noisy_a),
                "noise leaked tail bits at dim {dim}"
            );
        }
        // Geometric skip-sampling draws once per *flipped* bit (plus the
        // final draw that walks off the end), so the budget is the flip
        // count + 1 — ~d·rate in expectation, never the d of the old
        // per-bit Bernoulli loop.
        let mut counting = CountingRng(SplitMix64::new(1), 0);
        let noisy = v.with_noise(0.3, &mut counting);
        let flips = v.hamming(&noisy);
        assert_eq!(
            counting.1,
            flips + 1,
            "with_noise draws once per flip plus one terminal draw (dim {dim})"
        );
        assert!(counting.1 <= dim + 1, "draw budget regressed past d");
    }
    // At the paper's d = 10,000 the budget must track d·rate, not d.
    let memory = ItemMemory::new(10_000, 99).expect("valid dimension");
    let v = memory.hypervector(0);
    let mut counting = CountingRng(SplitMix64::new(2), 0);
    let _ = v.with_noise(0.01, &mut counting);
    assert!(
        counting.1 < 400,
        "expected ~100 draws at rate 0.01, got {}",
        counting.1
    );
}

struct CountingRng(SplitMix64, usize);

impl WordRng for CountingRng {
    fn next_u64(&mut self) -> u64 {
        self.1 += 1;
        self.0.next_u64()
    }
}
