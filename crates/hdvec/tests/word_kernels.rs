//! Property-based equivalence of the word-level hypervector kernels
//! against exhaustive per-bit references.
//!
//! The fast paths — funnel-shift `permute`, skip-sampling `with_noise`,
//! and the word-at-a-time component constructors — are checked against
//! implementations that go through the public per-bit accessors
//! (`component` / `set_component`), across the dimension grid
//! {1, 63, 64, 65, 127, 128, 100003} and the shift grid
//! {0, 1, 63, 64, 65, dim−1, dim, dim+7}. Every case also asserts the
//! storage invariant: bits beyond `dim` in the last word stay clear.

use hdvec::{Hypervector, ItemMemory};
use proptest::prelude::*;

/// Word-boundary dimensions plus a large prime (157 words + 35-bit tail).
const DIMS: [usize; 7] = [1, 63, 64, 65, 127, 128, 100_003];

/// The shift grid from the optimization plan, parameterized by `dim`.
fn shift_grid(dim: usize) -> [usize; 8] {
    [0, 1, 63, 64, 65, dim - 1, dim, dim + 7]
}

fn random_vector(dim: usize, seed: u64) -> Hypervector {
    ItemMemory::new(dim, seed)
        .expect("non-zero dimension")
        .hypervector(0)
}

fn tail_is_clear(v: &Hypervector) -> bool {
    let last = *v.words().last().expect("non-empty");
    match v.dim() % 64 {
        0 => true,
        r => last & !((1u64 << r) - 1) == 0,
    }
}

/// Per-bit reference permutation through the public component accessors.
fn per_bit_permute(v: &Hypervector, shift: usize) -> Hypervector {
    let dim = v.dim();
    let mut out = Hypervector::positive(dim).expect("non-zero dimension");
    for i in 0..dim {
        out.set_component((i + shift) % dim, v.component(i));
    }
    out
}

proptest! {
    #[test]
    fn permute_equals_per_bit_reference(
        dim_idx in 0usize..DIMS.len(),
        shift_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let shift = shift_grid(dim)[shift_idx];
        let v = random_vector(dim, seed);
        let fast = v.permute(shift);
        let reference = per_bit_permute(&v, shift);
        prop_assert_eq!(fast.words(), reference.words(), "dim {} shift {}", dim, shift);
        prop_assert!(tail_is_clear(&fast), "tail leaked at dim {} shift {}", dim, shift);
    }

    #[test]
    fn permute_assign_equals_permute(
        dim_idx in 0usize..DIMS.len(),
        shift_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let shift = shift_grid(dim)[shift_idx];
        let v = random_vector(dim, seed);
        let mut in_place = v.clone();
        in_place.permute_assign(shift);
        prop_assert_eq!(in_place.words(), v.permute(shift).words());
        prop_assert!(tail_is_clear(&in_place));
    }

    #[test]
    fn with_noise_flip_count_tracks_binomial(
        dim_idx in 0usize..DIMS.len(),
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let v = random_vector(dim, seed);
        let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(seed ^ 0x5EED);
        let noisy = v.with_noise(rate, &mut rng);
        prop_assert!(tail_is_clear(&noisy), "tail leaked at dim {}", dim);
        let flips = v.hamming(&noisy);
        prop_assert!(flips <= dim);
        // Distributional check, not a stream check: the flip count of
        // independent Bernoulli(rate) bits is Binomial(dim, rate); stay
        // within 6 standard deviations (plus slack for tiny dims).
        let sigma = (dim as f64 * rate * (1.0 - rate)).sqrt();
        let deviation = (flips as f64 - dim as f64 * rate).abs();
        prop_assert!(
            deviation <= 6.0 * sigma + 3.0,
            "flips {} vs expectation {} at dim {} rate {}",
            flips,
            dim as f64 * rate,
            dim,
            rate
        );
    }

    #[test]
    fn from_components_roundtrips_word_for_word(
        dim_idx in 0usize..DIMS.len(),
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let v = random_vector(dim, seed);
        let components = v.to_components();
        // Per-bit reference read-back.
        for (i, &c) in components.iter().enumerate() {
            prop_assert_eq!(c, v.component(i));
        }
        let rebuilt = Hypervector::from_components(&components).expect("valid components");
        prop_assert_eq!(rebuilt.words(), v.words());
        prop_assert!(tail_is_clear(&rebuilt));
        let from_fn = Hypervector::from_fn(dim, |i| components[i] == -1).expect("non-zero dim");
        prop_assert_eq!(from_fn.words(), v.words());
    }
}
