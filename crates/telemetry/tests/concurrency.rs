//! Concurrency checks of the metric shards: the `parallel::model`
//! checker explores every interleaving (within the preemption bound) of
//! the histogram's record/snapshot protocol re-implemented on model
//! primitives, and plain multi-thread stress tests hammer the real
//! atomics.
//!
//! What the protocol promises — and what the model pins down — is
//! **no torn and no lost updates**: a snapshot taken concurrently with
//! writers may lag, but only by the writes in flight at the read (at
//! most one per recording thread), and once writers join, totals are
//! exact.

use parallel::model::{self, AtomicUsize, Config};
use std::sync::Arc;
use telemetry::{Counter, Gauge, Histogram};

fn exhaustive() -> Config {
    Config {
        max_schedules: 2_000_000,
        max_steps: 20_000,
        preemption_bound: 3,
    }
}

/// The histogram's recording protocol reduced to model primitives: one
/// atomic per bucket plus an atomic total, updated bucket-first exactly
/// like `Histogram::record`, snapshotted total-first exactly like
/// `Histogram::snapshot`.
struct ModelHistogram {
    buckets: Vec<AtomicUsize>,
    count: AtomicUsize,
}

impl ModelHistogram {
    fn new(buckets: usize) -> Self {
        Self {
            buckets: (0..buckets).map(|_| AtomicUsize::new(0)).collect(),
            count: AtomicUsize::new(0),
        }
    }

    /// Mirrors `Histogram::record`: bucket increment, then count.
    fn record(&self, bucket: usize) {
        self.buckets[bucket].fetch_add(1);
        self.count.fetch_add(1);
    }

    /// Mirrors `Histogram::snapshot`'s read order: count first, then
    /// the buckets.
    fn snapshot(&self) -> (usize, usize) {
        let count = self.count.load();
        let bucket_total = self.buckets.iter().map(AtomicUsize::load).sum();
        (count, bucket_total)
    }
}

/// Two writers and a concurrent snapshot, every interleaving: the
/// snapshot's bucket total must never fall below its count (buckets are
/// written first and read last), the shortfall of the count is bounded
/// by the number of in-flight writers, and after joining both totals
/// are exact — nothing torn, nothing lost.
#[test]
fn model_concurrent_record_and_snapshot_within_bound() {
    const WRITERS: usize = 2;
    let report = model::check(exhaustive(), || {
        let hist = Arc::new(ModelHistogram::new(2));
        let writers: Vec<_> = (0..WRITERS)
            .map(|i| {
                let hist = Arc::clone(&hist);
                model::spawn(move || hist.record(i % 2))
            })
            .collect();
        let (count, bucket_total) = hist.snapshot();
        assert!(
            bucket_total >= count,
            "snapshot lost a bucket update: count {count}, buckets {bucket_total}"
        );
        assert!(
            bucket_total - count <= WRITERS,
            "snapshot skew beyond in-flight bound: count {count}, buckets {bucket_total}"
        );
        for writer in writers {
            writer.join();
        }
        let (count, bucket_total) = hist.snapshot();
        assert_eq!(count, WRITERS, "a recorded value was lost");
        assert_eq!(bucket_total, WRITERS, "a bucket update was lost");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "space not exhausted in {} runs",
        report.schedules
    );
}

/// Counter shards under the model: increments from two threads merge
/// without loss under every interleaving.
#[test]
fn model_counter_increments_are_never_lost() {
    let report = model::check(exhaustive(), || {
        let total = Arc::new(AtomicUsize::new(0));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let total = Arc::clone(&total);
                model::spawn(move || {
                    total.fetch_add(1);
                    total.fetch_add(1);
                })
            })
            .collect();
        for writer in writers {
            writer.join();
        }
        assert_eq!(total.load(), 4, "an increment was lost");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "space not exhausted");
}

/// The real histogram under real threads: heavy concurrent recording
/// with interleaved snapshots. Snapshots must be monotone in count and
/// never show more count than bucket mass permits; the final totals are
/// exact.
#[test]
fn stress_concurrent_histogram_recording() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 25_000;
    let hist = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record((t * PER_THREAD + i) as u64);
                }
            });
        }
        let reader = hist.clone();
        scope.spawn(move || {
            let mut last = 0u64;
            for _ in 0..1000 {
                let snap = reader.snapshot();
                assert!(snap.count >= last, "count went backwards");
                let mass: u64 = snap.buckets.iter().sum();
                assert!(
                    mass + THREADS as u64 >= snap.count,
                    "bucket mass {mass} behind count {} beyond bound",
                    snap.count
                );
                last = snap.count;
            }
        });
    });
    let snap = hist.snapshot();
    let expected = (THREADS * PER_THREAD) as u64;
    assert_eq!(snap.count, expected);
    assert_eq!(snap.buckets.iter().sum::<u64>(), expected);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, expected - 1);
    let ramp_sum: u64 = (0..expected).sum();
    assert_eq!(snap.sum, ramp_sum);
}

/// Counters and gauges under thread churn: every update lands.
#[test]
fn stress_counter_and_gauge_updates() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50_000;
    let counter = Counter::new();
    let gauge = Gauge::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            let gauge = gauge.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                    gauge.inc();
                    gauge.dec();
                }
            });
        }
    });
    assert_eq!(counter.get(), (THREADS * PER_THREAD) as u64);
    assert_eq!(gauge.get(), 0, "balanced inc/dec must cancel exactly");
}
