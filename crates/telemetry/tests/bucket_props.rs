//! Property tests of the histogram's bucket layout and shard merging.
//!
//! The log-linear layout is checked through its public contract: a
//! recorded value lands in exactly one bucket whose upper bound is at
//! least the value and within 12.5 % of it (+1 for the integer floor),
//! with the extremes (0, bucket edges at powers of two, `u64::MAX`)
//! pinned exactly. Merging per-shard snapshots must be *bit-identical*
//! to having recorded every value into one histogram — that equality is
//! what lets the engine publish per-component shards and aggregate them
//! at render time without a correctness caveat.

use proptest::prelude::*;
use telemetry::{Histogram, HistogramSnapshot};

/// Upper bound of the single non-empty bucket after recording `v`.
fn bucket_upper_of(v: u64) -> u64 {
    let h = Histogram::new();
    h.record(v);
    let nonzero = h.snapshot().nonzero_buckets();
    assert_eq!(nonzero.len(), 1, "one value -> one bucket (v={v})");
    assert_eq!(nonzero[0].1, 1);
    nonzero[0].0
}

#[test]
fn zero_is_exact() {
    let h = Histogram::new();
    h.record(0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, 0);
    assert_eq!(snap.percentile(1.0), 0);
    assert_eq!(bucket_upper_of(0), 0);
}

#[test]
fn u64_max_is_representable() {
    let h = Histogram::new();
    h.record(u64::MAX);
    let snap = h.snapshot();
    assert_eq!(snap.max, u64::MAX);
    assert_eq!(snap.percentile(1.0), u64::MAX);
    assert_eq!(bucket_upper_of(u64::MAX), u64::MAX);
}

#[test]
fn small_values_are_exact_and_edges_separate_buckets() {
    // Values below 8 get a bucket each; at every power of two above,
    // the edge value starts a fresh bucket (the value just below it
    // lands in the previous one).
    for v in 0u64..8 {
        assert_eq!(bucket_upper_of(v), v, "sub-octave values are exact");
    }
    for exp in 3..64u32 {
        let edge = 1u64 << exp;
        assert!(
            bucket_upper_of(edge - 1) < edge,
            "edge {edge} not separated from its predecessor"
        );
    }
}

proptest! {
    #[test]
    fn bucket_bound_is_tight(v in any::<u64>()) {
        let upper = bucket_upper_of(v);
        prop_assert!(upper >= v, "upper {upper} below value {v}");
        // <= 12.5 % relative width (+1 for the integer floor).
        let width = upper - v;
        prop_assert!(
            width <= v / 8 + 1,
            "bucket too wide for {v}: upper {upper}"
        );
    }

    #[test]
    fn percentile_brackets_the_order_statistic(
        mut values in prop::collection::vec(any::<u64>(), 1..200),
        q_millis in 1u64..=1000,
    ) {
        let q = q_millis as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let got = h.snapshot().percentile(q);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
        let exact = values[rank];
        prop_assert!(got >= exact, "p{q_millis} {got} below exact {exact}");
        prop_assert!(
            got <= exact.saturating_add(exact / 8 + 1),
            "p{q_millis} {got} above bucket of exact {exact}"
        );
    }

    #[test]
    fn merge_of_shards_equals_single_shard(
        values in prop::collection::vec(any::<u64>(), 0..300),
        shards in 1usize..6,
    ) {
        let single = Histogram::new();
        let sharded: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.record(v);
            sharded[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for shard in &sharded {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged, single.snapshot());
    }

    #[test]
    fn since_recovers_the_interval(
        before in prop::collection::vec(any::<u64>(), 0..100),
        after in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let live = Histogram::new();
        let interval_only = Histogram::new();
        for &v in &before {
            live.record(v);
        }
        let mark = live.snapshot();
        for &v in &after {
            live.record(v);
            interval_only.record(v);
        }
        let delta = live.snapshot().since(&mark);
        let expected = interval_only.snapshot();
        prop_assert_eq!(delta.count, expected.count);
        prop_assert_eq!(delta.sum, expected.sum);
        prop_assert_eq!(&delta.buckets, &expected.buckets);
    }
}
